//! Small helpers shared by the examples and integration tests.

use std::cell::RefCell;
use std::rc::Rc;

use simnet::{Ctx, LocalMessage, ProcId, Process};
use umiddle_core::{DirectoryEvent, PortRef, QosPolicy, Query, RuntimeClient, RuntimeEvent};

/// A declarative wiring rule: connect `src` to `dst` (matched by
/// translator-name substring and port name) as soon as both appear in
/// the directory.
#[derive(Debug, Clone)]
pub struct WireRule {
    /// Source translator name substring.
    pub src_name: String,
    /// Source port.
    pub src_port: String,
    /// Destination translator name substring.
    pub dst_name: String,
    /// Destination port.
    pub dst_port: String,
    /// QoS policy for the path.
    pub qos: QosPolicy,
}

impl WireRule {
    /// Creates a rule with unbounded QoS.
    pub fn new(src_name: &str, src_port: &str, dst_name: &str, dst_port: &str) -> WireRule {
        WireRule {
            src_name: src_name.to_owned(),
            src_port: src_port.to_owned(),
            dst_name: dst_name.to_owned(),
            dst_port: dst_port.to_owned(),
            qos: QosPolicy::unbounded(),
        }
    }

    /// Overrides the QoS policy (builder style).
    pub fn with_qos(mut self, qos: QosPolicy) -> WireRule {
        self.qos = qos;
        self
    }
}

/// An application process that watches the directory and wires
/// translators together according to [`WireRule`]s — the programmatic
/// equivalent of drawing lines in uMiddle Pads.
pub struct Wirer {
    runtime: ProcId,
    client: Option<RuntimeClient>,
    rules: Vec<WireRule>,
    srcs: Vec<Option<PortRef>>,
    dsts: Vec<Option<PortRef>>,
    wired: Vec<bool>,
    /// Number of connections successfully established (shared).
    pub connected: Rc<RefCell<u32>>,
    /// Failures observed as `(reason)` strings (shared).
    pub failures: Rc<RefCell<Vec<String>>>,
}

impl std::fmt::Debug for Wirer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wirer")
            .field("rules", &self.rules.len())
            .finish_non_exhaustive()
    }
}

impl Wirer {
    /// Creates a wirer for the given rules.
    pub fn new(runtime: ProcId, rules: Vec<WireRule>) -> Wirer {
        let n = rules.len();
        Wirer {
            runtime,
            client: None,
            rules,
            srcs: vec![None; n],
            dsts: vec![None; n],
            wired: vec![false; n],
            connected: Rc::new(RefCell::new(0)),
            failures: Rc::new(RefCell::new(Vec::new())),
        }
    }

    fn try_wire(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.rules.len() {
            if self.wired[i] {
                continue;
            }
            if let (Some(src), Some(dst)) = (self.srcs[i], self.dsts[i]) {
                self.wired[i] = true;
                self.client.as_mut().expect("client set").connect_ports(
                    ctx,
                    src,
                    dst,
                    self.rules[i].qos.clone(),
                );
            }
        }
    }
}

impl Process for Wirer {
    fn name(&self) -> &str {
        "wirer"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let client = RuntimeClient::new(self.runtime);
        client.add_listener(ctx, Query::All);
        self.client = Some(client);
    }

    fn on_local(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
        let Ok(event) = msg.downcast::<RuntimeEvent>() else {
            return;
        };
        match *event {
            RuntimeEvent::Directory(DirectoryEvent::Appeared(profile)) => {
                for (i, rule) in self.rules.iter().enumerate() {
                    if profile.name().contains(&rule.src_name) {
                        self.srcs[i] = Some(PortRef::new(profile.id(), rule.src_port.clone()));
                    }
                    if profile.name().contains(&rule.dst_name) {
                        self.dsts[i] = Some(PortRef::new(profile.id(), rule.dst_port.clone()));
                    }
                }
                self.try_wire(ctx);
            }
            RuntimeEvent::Connected { .. } => {
                *self.connected.borrow_mut() += 1;
            }
            RuntimeEvent::ConnectFailed { reason, .. } => {
                self.failures.borrow_mut().push(reason);
            }
            _ => {}
        }
    }
}
