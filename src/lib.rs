//! # umiddle — facade crate for the uMiddle reproduction
//!
//! uMiddle is "a bridging framework for universal interoperability in
//! pervasive systems" (ICDCS 2006): devices from mutually incompatible
//! communication platforms (UPnP, Bluetooth, Java RMI, MediaBroker,
//! Berkeley motes, web services) interoperate through a platform-neutral
//! intermediary semantic space built on Service Shaping (typed ports),
//! USDL-parameterized generic translators, a federated directory, and
//! dynamic device binding.
//!
//! This crate re-exports the whole workspace under one roof and adds
//! [`util`] helpers used by the examples. Start with the `quickstart`
//! example, then read [`umiddle_core`] for the model and
//! [`umiddle_bridges`] for the platform mappers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use platform_bluetooth;
pub use platform_mediabroker;
pub use platform_motes;
pub use platform_rmi;
pub use platform_upnp;
pub use platform_webservices;
pub use simnet;
pub use umiddle_apps;
pub use umiddle_bridges;
pub use umiddle_core;
pub use umiddle_usdl;

pub mod util;
