//! Quickstart: control a UPnP light through uMiddle.
//!
//! Builds a tiny simulated smart space — one UPnP light on a 10 Mbps
//! hub, one uMiddle runtime with a UPnP mapper, and a native "wall
//! switch" service — wires the switch to the light through the
//! intermediary semantic space, and watches the light's state events
//! come back.
//!
//! Run with: `cargo run --example quickstart`

use std::rc::Rc;

use umiddle::platform_upnp::{LightLogic, UpnpDevice};
use umiddle::simnet::{SegmentConfig, SimDuration, SimTime, World};
use umiddle::umiddle_bridges::{behaviors, NativeService, UpnpMapper};
use umiddle::umiddle_core::{
    Direction, QosPolicy, RuntimeConfig, RuntimeId, Shape, UMessage, UmiddleRuntime,
};
use umiddle::umiddle_usdl::UsdlLibrary;
use umiddle::util::Wirer;

fn main() {
    // 1. A simulated network: one Ethernet hub.
    let mut world = World::new(42);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());

    // 2. The uMiddle host: runtime + UPnP mapper.
    let host = world.add_node("umiddle-host");
    world.attach(host, hub).unwrap();
    let runtime = world.add_process(
        host,
        Box::new(UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(0)))),
    );
    world.add_process(
        host,
        Box::new(UpnpMapper::with_defaults(runtime, UsdlLibrary::bundled())),
    );

    // 3. A native UPnP light somewhere on the network.
    let light_node = world.add_node("light");
    world.attach(light_node, hub).unwrap();
    world.add_process(
        light_node,
        Box::new(UpnpDevice::new(
            Box::new(LightLogic::new("Hallway Light", "uuid:hallway")),
            5000,
        )),
    );

    // 4. A native uMiddle wall switch that pulses "1" every 10 seconds.
    let switch_shape = Shape::builder()
        .digital("toggle", Direction::Output, "text/plain".parse().unwrap())
        .build()
        .unwrap();
    world.add_process(
        host,
        Box::new(NativeService::new(
            "Wall Switch",
            switch_shape,
            runtime,
            Box::new(behaviors::PeriodicSource::new(
                "toggle",
                SimDuration::from_secs(10),
                3,
                |_| UMessage::text("1"),
            )),
        )),
    );

    // 5. A recorder watching the light's power-state output.
    let recorder = behaviors::Recorder::new();
    let received = Rc::clone(&recorder.received);
    let recorder_shape = Shape::builder()
        .digital("in", Direction::Input, "text/plain".parse().unwrap())
        .build()
        .unwrap();
    world.add_process(
        host,
        Box::new(NativeService::new(
            "State Recorder",
            recorder_shape,
            runtime,
            Box::new(recorder),
        )),
    );

    // 6. Wire switch → light and light → recorder once both appear.
    world.add_process(
        host,
        Box::new(Wirer::new(
            runtime,
            vec![
                umiddle::util::WireRule::new("Wall Switch", "toggle", "Hallway Light", "switch-on")
                    .with_qos(QosPolicy::unbounded()),
                umiddle::util::WireRule::new(
                    "Hallway Light",
                    "power-state",
                    "State Recorder",
                    "in",
                ),
            ],
        )),
    );

    // 7. Run one simulated minute.
    world.run_until(SimTime::from_secs(60));

    println!("quickstart: controlling a UPnP light through uMiddle");
    println!("-----------------------------------------------------");
    println!(
        "SetPower actions executed on the native light : {}",
        world.trace().counter("upnp.actions")
    );
    println!(
        "GENA events translated back into uMiddle      : {}",
        world.trace().counter("upnp.notifies")
    );
    for (port, msg) in received.borrow().iter() {
        println!("recorder <- {port}: {:?}", msg.body_text().unwrap_or("?"));
    }

    // The observability layer watched the whole run: the runtime's own
    // metric scope, and a span trail for every message path.
    println!();
    println!("runtime rt0 metrics:");
    for (name, v) in world.trace().metrics().scoped("rt0").counters() {
        println!("  {name:22} {v}");
    }
    if let Some(corr) = world.trace().spans().iter().map(|s| s.corr).next() {
        println!("one path, reconstructed by correlation id {corr:#x}:");
        for span in world.trace().spans_for(corr).take(6) {
            println!(
                "  {:>12}  {:<16} {}",
                span.start.to_string(),
                span.stage,
                span.detail
            );
        }
    }
    assert!(
        received
            .borrow()
            .iter()
            .any(|(_, m)| m.body_text() == Some("1")),
        "the light reported power-state=1"
    );
    println!("ok: the switch controls the light across the UPnP bridge");
}
