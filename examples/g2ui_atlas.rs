//! G2 UI: the geographical user interface (paper §4.2, Figure 9),
//! headless.
//!
//! Gadgets are placed at coordinates; co-location triggers cross-platform
//! compositions. Here a Bluetooth camera is carried next to a UPnP TV
//! (geoplay), then across the room to a native photo album (geostore).
//!
//! Run with: `cargo run --example g2ui_atlas`

use std::rc::Rc;

use umiddle::platform_bluetooth::BipCamera;
use umiddle::platform_upnp::{MediaRendererLogic, UpnpDevice};
use umiddle::simnet::{Ctx, ProcId, Process, SegmentConfig, SimDuration, SimTime, World};
use umiddle::umiddle_apps::{G2Command, G2Ui, Position};
use umiddle::umiddle_bridges::{behaviors, BluetoothMapper, NativeService, UpnpMapper};
use umiddle::umiddle_core::{Direction, RuntimeConfig, RuntimeId, Shape, UmiddleRuntime};
use umiddle::umiddle_usdl::UsdlLibrary;

struct At<T: Clone + 'static> {
    when: SimDuration,
    to: ProcId,
    what: T,
}

impl<T: Clone + 'static> Process for At<T> {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let when = self.when;
        ctx.set_timer(when, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        ctx.send_local(self.to, self.what.clone());
    }
}

fn main() {
    let mut world = World::new(13);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let pico = world.add_segment(SegmentConfig::bluetooth_piconet());
    let h1 = world.add_node("h1");
    world.attach(h1, hub).unwrap();
    world.attach(h1, pico).unwrap();
    let rt = world.add_process(
        h1,
        Box::new(UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(0)))),
    );
    world.add_process(
        h1,
        Box::new(BluetoothMapper::with_defaults(rt, UsdlLibrary::bundled())),
    );
    world.add_process(
        h1,
        Box::new(UpnpMapper::with_defaults(rt, UsdlLibrary::bundled())),
    );

    // Gadgets: camera (Bluetooth), TV (UPnP), album (native storage).
    let cam_node = world.add_node("camera");
    world.attach(cam_node, pico).unwrap();
    world.add_process(
        cam_node,
        Box::new(BipCamera::new("Pocket Camera", 2, 12_000)),
    );
    let tv_node = world.add_node("tv");
    world.attach(tv_node, hub).unwrap();
    world.add_process(
        tv_node,
        Box::new(UpnpDevice::new(
            Box::new(MediaRendererLogic::new("Living Room TV", "uuid:tv")),
            5000,
        )),
    );
    let album_shape = Shape::builder()
        .digital("store-in", Direction::Input, "image/*".parse().unwrap())
        .build()
        .unwrap();
    let album = behaviors::Recorder::new();
    let album_received = Rc::clone(&album.received);
    world.add_process(
        h1,
        Box::new(
            NativeService::new("Photo Album", album_shape, rt, Box::new(album))
                .with_attr("category", "storage"),
        ),
    );

    // G2 UI with a 5-meter co-location radius.
    let g2 = G2Ui::new(rt, 5.0);
    let atlas = g2.atlas_handle();
    let g2_proc = world.add_process(h1, Box::new(g2));

    // Scripted movements.
    let script = [
        (20, "Living Room TV", 0.0, 0.0),
        (25, "Pocket Camera", 2.0, 1.0),   // next to the TV: geoplay
        (55, "Pocket Camera", 80.0, 40.0), // carried away: teardown
        (60, "Photo Album", 81.0, 40.0),   // next to the camera: geostore
    ];
    for (when, name, x, y) in script {
        world.add_process(
            h1,
            Box::new(At {
                when: SimDuration::from_secs(when),
                to: g2_proc,
                what: G2Command::Place {
                    name: name.to_owned(),
                    position: Position::new(x, y),
                },
            }),
        );
    }

    world.run_until(SimTime::from_secs(90));

    println!("G2 UI atlas: co-location driven composition");
    println!("--------------------------------------------");
    let atlas = atlas.borrow();
    for line in &atlas.log {
        println!("  {line}");
    }
    println!("\nactive compositions at the end:");
    for c in &atlas.compositions {
        println!("  {:?}: {} -> {}", c.kind, c.src, c.dst);
    }
    println!(
        "album stored {} images so far",
        album_received.borrow().len()
    );
    assert!(
        atlas.log.iter().any(|l| l.contains("Geoplay")),
        "geoplay happened"
    );
    assert!(
        atlas.log.iter().any(|l| l.contains("Geostore")),
        "geostore happened"
    );
    println!("ok: geoplay and geostore across three platforms");
}
