//! Sensor dashboard: Berkeley motes logged to a web service through
//! uMiddle — two more platforms the paper bridges, composed without any
//! platform-specific application code.
//!
//! Readings flow `mote.temperature → log-service.log-in`; the example
//! then reconfigures the motes' sampling rate through the same
//! translator (`sampling` input) and reads the log back over plain
//! XML-RPC to prove the entries arrived at the native service.
//!
//! Run with: `cargo run --example sensor_dashboard`

use umiddle::platform_motes::{BaseStation, Mote};
use umiddle::platform_webservices::WsServer;
use umiddle::simnet::{Addr, Ctx, ProcId, Process, SegmentConfig, SimDuration, SimTime, World};
use umiddle::umiddle_bridges::{behaviors, MotesMapper, NativeService, WsMapper};
use umiddle::umiddle_core::{Direction, RuntimeConfig, RuntimeId, Shape, UmiddleRuntime};
use umiddle::umiddle_usdl::UsdlLibrary;
use umiddle::util::{WireRule, Wirer};

fn main() {
    let mut world = World::new(17);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let radio = world.add_segment(SegmentConfig::mote_radio());

    // The uMiddle host straddles the radio and the LAN.
    let h1 = world.add_node("h1");
    world.attach(h1, hub).unwrap();
    world.attach(h1, radio).unwrap();
    let rt = world.add_process(
        h1,
        Box::new(UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(0)))),
    );

    // Three motes on the radio.
    for i in 0..3u16 {
        let m_node = world.add_node(format!("mote{i}"));
        world.attach(m_node, radio).unwrap();
        world.add_process(
            m_node,
            Box::new(Mote::new(i + 1, SimDuration::from_secs(4))),
        );
    }
    // Base station + motes mapper.
    let mapper = MotesMapper::new(rt, UsdlLibrary::bundled(), None);
    let motes_stats = mapper.stats_handle();
    let mapper_proc = world.add_process(h1, Box::new(mapper));
    world.add_process(h1, Box::new(BaseStation::new(Some(mapper_proc))));

    // The log web service on the LAN.
    let ws_node = world.add_node("logserver");
    world.attach(ws_node, hub).unwrap();
    world.add_process(ws_node, Box::new(WsServer::logger("Field Log", 8080)));
    world.add_process(
        h1,
        Box::new(WsMapper::new(
            rt,
            UsdlLibrary::bundled(),
            vec![Addr::new(ws_node, 8080)],
        )),
    );

    // Also watch readings natively.
    let meter = behaviors::Recorder::new();
    let seen = std::rc::Rc::clone(&meter.received);
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "Dashboard",
            Shape::builder()
                .digital("in", Direction::Input, "text/plain".parse().unwrap())
                .build()
                .unwrap(),
            rt,
            Box::new(meter),
        )),
    );

    // Wire every mote's temperature into the log service and dashboard.
    let mut rules = Vec::new();
    for i in 1..=3 {
        rules.push(WireRule::new(
            &format!("Mote {i}"),
            "temperature",
            "Field Log",
            "log-in",
        ));
        rules.push(WireRule::new(
            &format!("Mote {i}"),
            "temperature",
            "Dashboard",
            "in",
        ));
    }
    world.add_process(h1, Box::new(Wirer::new(rt, rules)));

    // Speed the motes up mid-run through the sampling port.
    struct Retune {
        runtime: ProcId,
        client: Option<umiddle::umiddle_core::RuntimeClient>,
        mote_port: Option<umiddle::umiddle_core::PortRef>,
        own: Option<umiddle::umiddle_core::TranslatorId>,
    }
    impl Process for Retune {
        fn name(&self) -> &str {
            "retune"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let mut client = umiddle::umiddle_core::RuntimeClient::new(self.runtime);
            // Register a tiny control service with one output port.
            let shape = Shape::builder()
                .digital("rate", Direction::Output, "text/plain".parse().unwrap())
                .build()
                .unwrap();
            let profile = umiddle::umiddle_core::TranslatorProfile::builder(
                umiddle::umiddle_core::TranslatorId::new(RuntimeId(u32::MAX), 0),
                "Rate Knob",
            )
            .shape(shape)
            .build();
            let me = ctx.me();
            client.register(ctx, profile, me);
            client.add_listener(
                ctx,
                umiddle::umiddle_core::Query::NameContains("Mote".into()),
            );
            self.client = Some(client);
            ctx.set_timer(SimDuration::from_secs(45), 1);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            match token {
                1 => {
                    // Wire knob -> mote sampling, then emit the new rate.
                    if let (Some(own), Some(port)) = (self.own, self.mote_port) {
                        let client = self.client.as_mut().expect("set");
                        client.connect_ports(
                            ctx,
                            umiddle::umiddle_core::PortRef::new(own, "rate"),
                            port,
                            umiddle::umiddle_core::QosPolicy::unbounded(),
                        );
                        ctx.set_timer(SimDuration::from_secs(2), 2);
                    }
                }
                2 => {
                    // Faster sampling: 1500 ms per reading.
                    if let Some(own) = self.own {
                        let client = self.client.as_ref().expect("set");
                        client.output(
                            ctx,
                            own,
                            "rate",
                            umiddle::umiddle_core::UMessage::text("1500"),
                        );
                    }
                }
                _ => {}
            }
        }
        fn on_local(
            &mut self,
            _ctx: &mut Ctx<'_>,
            _from: ProcId,
            msg: umiddle::simnet::LocalMessage,
        ) {
            let Ok(event) = msg.downcast::<umiddle::umiddle_core::RuntimeEvent>() else {
                return;
            };
            match *event {
                umiddle::umiddle_core::RuntimeEvent::Registered { translator, .. } => {
                    self.own = Some(translator);
                }
                umiddle::umiddle_core::RuntimeEvent::Directory(
                    umiddle::umiddle_core::DirectoryEvent::Appeared(profile),
                ) if self.mote_port.is_none() && profile.name().contains("Mote") => {
                    self.mote_port = Some(umiddle::umiddle_core::PortRef::new(
                        profile.id(),
                        "sampling",
                    ));
                }
                umiddle::umiddle_core::RuntimeEvent::Connected { .. } => {}
                _ => {}
            }
        }
    }
    let retune = Retune {
        runtime: rt,
        client: None,
        mote_port: None,
        own: None,
    };
    world.add_process(h1, Box::new(retune));

    world.run_until(SimTime::from_secs(120));

    println!("sensor dashboard: motes -> uMiddle -> web-service log");
    println!("-------------------------------------------------------");
    println!(
        "motes mapped            : {}",
        motes_stats.borrow().mappings.len()
    );
    println!(
        "readings heard by base  : {}",
        world.trace().counter("motes.readings_received")
    );
    println!(
        "log-service RPC calls   : {}",
        world.trace().counter("ws.calls")
    );
    println!("dashboard readings      : {}", seen.borrow().len());
    let recent: Vec<String> = seen
        .borrow()
        .iter()
        .rev()
        .take(5)
        .map(|(_, m)| m.body_text().unwrap_or("?").to_owned())
        .collect();
    println!("latest temperatures (C) : {recent:?}");
    assert!(motes_stats.borrow().mappings.len() >= 3);
    assert!(world.trace().counter("ws.calls") >= 3);
    assert!(!seen.borrow().is_empty());
    println!("ok: sensor readings bridged to the web-service log");
}
