//! uMiddle Pads: the virtual-cabling application generator (paper §4.1,
//! Figure 8), headless.
//!
//! Recreates the paper's screenshot configuration — twenty-two devices:
//! one Bluetooth camera, three UPnP devices (clock, light, air
//! conditioner) and eighteen native uMiddle services — then hot-wires a
//! few of them and prints the canvas.
//!
//! Run with: `cargo run --example pads_demo`

use std::cell::RefCell;
use std::rc::Rc;

use umiddle::platform_bluetooth::BipCamera;
use umiddle::platform_upnp::{AirconLogic, ClockLogic, LightLogic, UpnpDevice};
use umiddle::simnet::{Ctx, ProcId, Process, SegmentConfig, SimDuration, SimTime, World};
use umiddle::umiddle_apps::{Canvas, Pads, PadsCommand};
use umiddle::umiddle_bridges::{behaviors, BluetoothMapper, NativeService, UpnpMapper};
use umiddle::umiddle_core::{Direction, RuntimeConfig, RuntimeId, Shape, UMessage, UmiddleRuntime};
use umiddle::umiddle_usdl::UsdlLibrary;

/// Sends a command to a process at a fixed virtual time.
struct At<T: Clone + 'static> {
    when: SimDuration,
    to: ProcId,
    what: T,
}

impl<T: Clone + 'static> Process for At<T> {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let when = self.when;
        ctx.set_timer(when, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        ctx.send_local(self.to, self.what.clone());
    }
}

fn out_shape(mime: &str) -> Shape {
    Shape::builder()
        .digital("out", Direction::Output, mime.parse().unwrap())
        .build()
        .unwrap()
}

fn in_shape(mime: &str) -> Shape {
    Shape::builder()
        .digital("in", Direction::Input, mime.parse().unwrap())
        .build()
        .unwrap()
}

fn main() {
    let mut world = World::new(11);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let pico = world.add_segment(SegmentConfig::bluetooth_piconet());
    let h1 = world.add_node("h1");
    world.attach(h1, hub).unwrap();
    world.attach(h1, pico).unwrap();
    let rt = world.add_process(
        h1,
        Box::new(UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(0)))),
    );

    // One Bluetooth device.
    let cam_node = world.add_node("camera");
    world.attach(cam_node, pico).unwrap();
    world.add_process(
        cam_node,
        Box::new(BipCamera::new("Pocket Camera", 1, 8_000)),
    );
    world.add_process(
        h1,
        Box::new(BluetoothMapper::with_defaults(rt, UsdlLibrary::bundled())),
    );

    // Three UPnP devices.
    let upnp_node = world.add_node("upnp");
    world.attach(upnp_node, hub).unwrap();
    world.add_process(
        upnp_node,
        Box::new(UpnpDevice::new(
            Box::new(ClockLogic::new("Wall Clock", "uuid:c")),
            5000,
        )),
    );
    world.add_process(
        upnp_node,
        Box::new(UpnpDevice::new(
            Box::new(LightLogic::new("Desk Light", "uuid:l")),
            5001,
        )),
    );
    world.add_process(
        upnp_node,
        Box::new(UpnpDevice::new(
            Box::new(AirconLogic::new("Window AC", "uuid:a")),
            5002,
        )),
    );
    world.add_process(
        h1,
        Box::new(UpnpMapper::with_defaults(rt, UsdlLibrary::bundled())),
    );

    // Eighteen native uMiddle services: a ticker, a recorder, and
    // sixteen assorted echoes/sinks.
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "ticker",
            out_shape("text/plain"),
            rt,
            Box::new(behaviors::PeriodicSource::new(
                "out",
                SimDuration::from_secs(5),
                0,
                |i| UMessage::text(format!("tick {i}")),
            )),
        )),
    );
    let recorder = behaviors::Recorder::new();
    let received = Rc::clone(&recorder.received);
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "tape-deck",
            in_shape("text/plain"),
            rt,
            Box::new(recorder),
        )),
    );
    for i in 0..8 {
        world.add_process(
            h1,
            Box::new(NativeService::new(
                &format!("echo-{i}"),
                out_shape("text/plain"),
                rt,
                Box::new(behaviors::Echo::new("out")),
            )),
        );
        world.add_process(
            h1,
            Box::new(NativeService::new(
                &format!("sink-{i}"),
                in_shape("text/plain"),
                rt,
                Box::new(behaviors::Recorder::new()),
            )),
        );
    }

    // Pads.
    let pads = Pads::new(rt);
    let canvas: Rc<RefCell<Canvas>> = pads.canvas_handle();
    let pads_proc = world.add_process(h1, Box::new(pads));

    // "Draw" wires (deferred by Pads until the icons exist).
    world.add_process(
        h1,
        Box::new(At {
            when: SimDuration::from_secs(2),
            to: pads_proc,
            what: PadsCommand::DrawWire {
                src_name: "ticker".to_owned(),
                src_port: "out".to_owned(),
                dst_name: "tape-deck".to_owned(),
                dst_port: "in".to_owned(),
            },
        }),
    );
    // An invalid wire, to show the GUI-level validation.
    world.add_process(
        h1,
        Box::new(At {
            when: SimDuration::from_secs(20),
            to: pads_proc,
            what: PadsCommand::DrawWire {
                src_name: "tape-deck".to_owned(),
                src_port: "in".to_owned(),
                dst_name: "ticker".to_owned(),
                dst_port: "out".to_owned(),
            },
        }),
    );

    world.run_until(SimTime::from_secs(60));

    let canvas = canvas.borrow();
    println!("{}", canvas.render_ascii());
    println!("rejected wiring attempts:");
    for (src, dst, why) in &canvas.rejected {
        println!("  {src} -> {dst}: {why}");
    }
    println!(
        "\nmessages delivered over the drawn wire: {}",
        received.borrow().len()
    );
    assert_eq!(canvas.icons.len(), 22, "the paper's twenty-two devices");
    assert!(!received.borrow().is_empty());
    println!(
        "ok: cross-platform virtual cabling with {} icons",
        canvas.icons.len()
    );
}
