//! The paper's flagship scenario: a Bluetooth BIP camera whose images
//! are rendered on a UPnP MediaRenderer TV, bridged through two uMiddle
//! runtimes on different hosts.
//!
//! Topology (paper Figure 5):
//!
//! ```text
//!   piconet:  [BIP camera] --- [H1: runtime rt0 + Bluetooth mapper]
//!   ethernet: [H1] --- [H2: runtime rt1 + UPnP mapper] --- [MediaRenderer TV]
//! ```
//!
//! A native "shutter button" service presses every 15 simulated seconds;
//! each press travels `button.press → camera.capture`, makes the camera
//! capture + pull a JPEG over OBEX, and the image travels
//! `camera.image-out → tv.media-in`, ending in a SOAP `RenderMedia` call
//! on the native TV.
//!
//! Run with: `cargo run --example camera_to_tv`

use umiddle::platform_bluetooth::BipCamera;
use umiddle::platform_upnp::{MediaRendererLogic, UpnpDevice};
use umiddle::simnet::{SegmentConfig, SimDuration, SimTime, World};
use umiddle::umiddle_bridges::{behaviors, BluetoothMapper, NativeService, UpnpMapper};
use umiddle::umiddle_core::{Direction, RuntimeConfig, RuntimeId, Shape, UMessage, UmiddleRuntime};
use umiddle::umiddle_usdl::UsdlLibrary;
use umiddle::util::{WireRule, Wirer};

fn main() {
    let mut world = World::new(7);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let pico = world.add_segment(SegmentConfig::bluetooth_piconet());

    // H1: intermediary node with the Bluetooth mapper.
    let h1 = world.add_node("h1");
    world.attach(h1, hub).unwrap();
    world.attach(h1, pico).unwrap();
    let rt1 = world.add_process(
        h1,
        Box::new(UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(0)))),
    );
    let bt_mapper = BluetoothMapper::with_defaults(rt1, UsdlLibrary::bundled());
    let bt_stats = bt_mapper.stats_handle();
    world.add_process(h1, Box::new(bt_mapper));

    // H2: intermediary node with the UPnP mapper.
    let h2 = world.add_node("h2");
    world.attach(h2, hub).unwrap();
    let rt2 = world.add_process(
        h2,
        Box::new(UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(1)))),
    );
    let upnp_mapper = UpnpMapper::with_defaults(rt2, UsdlLibrary::bundled());
    let upnp_stats = upnp_mapper.stats_handle();
    world.add_process(h2, Box::new(upnp_mapper));

    // The native devices on their own platforms.
    let cam_node = world.add_node("camera");
    world.attach(cam_node, pico).unwrap();
    world.add_process(
        cam_node,
        Box::new(BipCamera::new("Pocket Camera", 3, 24_000)),
    );

    let tv_node = world.add_node("tv");
    world.attach(tv_node, hub).unwrap();
    world.add_process(
        tv_node,
        Box::new(UpnpDevice::new(
            Box::new(MediaRendererLogic::new("Living Room TV", "uuid:tv")),
            5000,
        )),
    );

    // The shutter button (a native uMiddle service on H1).
    let button_shape = Shape::builder()
        .digital("press", Direction::Output, "text/plain".parse().unwrap())
        .build()
        .unwrap();
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "Shutter Button",
            button_shape,
            rt1,
            Box::new(behaviors::PeriodicSource::new(
                "press",
                SimDuration::from_secs(15),
                4,
                |_| UMessage::text("snap"),
            )),
        )),
    );

    // Virtual cabling.
    world.add_process(
        h1,
        Box::new(Wirer::new(
            rt1,
            vec![
                WireRule::new("Shutter Button", "press", "Pocket Camera", "capture"),
                WireRule::new("Pocket Camera", "image-out", "Living Room TV", "media-in"),
            ],
        )),
    );

    world.run_until(SimTime::from_secs(90));

    println!("camera-to-tv: the paper's flagship cross-platform scenario");
    println!("------------------------------------------------------------");
    for (ty, name, took) in &bt_stats.borrow().mappings {
        println!("bluetooth mapper: mapped {name} ({ty}) in {took}");
    }
    for (ty, name, took) in &upnp_stats.borrow().mappings {
        println!("upnp mapper     : mapped {name} ({ty}) in {took}");
    }
    println!(
        "camera captures triggered        : {}",
        world.trace().counter("bt.bip_captures")
    );
    println!(
        "images pulled over OBEX          : {}",
        world.trace().counter("bt.bip_pulls")
    );
    println!(
        "RenderMedia actions on the TV    : {}",
        world.trace().counter("upnp.actions")
    );
    println!(
        "path messages across runtimes    : {}",
        world.trace().counter("stream.frames")
    );
    assert!(world.trace().counter("upnp.actions") >= 1);
    println!("ok: Bluetooth images rendered on the UPnP TV through uMiddle");
}
