#!/usr/bin/env bash
# The full CI gate, runnable locally: `./ci.sh`.
#
# Every cargo invocation is --offline: the build is hermetic by policy
# (no registry access; see README.md "Offline, hermetic builds"). If a
# step fails here, it fails in CI, and vice versa.

set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --offline --workspace --all-targets -- -D warnings
run cargo build --offline --release
run cargo test --offline -q
# Data-path micro-bench smoke: exercises the bench kernels once and the
# deterministic decode-linearity regression, without timing anything.
run cargo run --offline --release -p bench --bin perf_payload -- --check

# Trace determinism gate: the E8 observability run must export
# byte-identical artifacts — metrics snapshot, Perfetto trace, folded
# flamegraph stacks — across two fresh runs of the same seed.
mkdir -p target/trace-gate
run cargo run --offline --release -p bench --bin trace_export -- \
    --json target/trace-gate/a.metrics.json \
    --perfetto target/trace-gate/a.perfetto.json \
    --folded target/trace-gate/a.folded
run cargo run --offline --release -p bench --bin trace_export -- \
    --json target/trace-gate/b.metrics.json \
    --perfetto target/trace-gate/b.perfetto.json \
    --folded target/trace-gate/b.folded
run diff target/trace-gate/a.metrics.json target/trace-gate/b.metrics.json
run diff target/trace-gate/a.perfetto.json target/trace-gate/b.perfetto.json
run diff target/trace-gate/a.folded target/trace-gate/b.folded

# Telemetry determinism gate: the E10 fault-injection run must export a
# byte-identical doctor health report (JSON) and OpenMetrics exposition
# across two fresh runs of the same seed — the windowed sampler, the SLO
# burn-rate engine and the doctor are all on the deterministic path.
mkdir -p target/doctor-gate
run cargo run --offline --release -p bench --bin doctor_export -- \
    --doctor target/doctor-gate/a.doctor.json \
    --openmetrics target/doctor-gate/a.metrics.om
run cargo run --offline --release -p bench --bin doctor_export -- \
    --doctor target/doctor-gate/b.doctor.json \
    --openmetrics target/doctor-gate/b.metrics.om
run diff target/doctor-gate/a.doctor.json target/doctor-gate/b.doctor.json
run diff target/doctor-gate/a.metrics.om target/doctor-gate/b.metrics.om

# Scheduler scaling gate: the timer-wheel kernel must stay competitive
# with the reference heap, the E9 federation must clear an events/sec
# floor at N=1000, per-event cost must stay near-linear from 100 to
# 1000 devices, and the telemetry sampler must stay under its overhead
# budget. Catches scheduler and dispatch-path regressions that unit
# tests cannot see.
run cargo run --offline --release -p bench --bin perf_sched -- --check

echo
echo "ci.sh: all green"
