#!/usr/bin/env bash
# The CI gate, runnable locally: `./ci.sh [stage]`.
#
# Stages (each is one named job in .github/workflows/ci.yml, so a red
# X pinpoints the broken gate without re-running the others):
#
#   lint          rustfmt, clippy -D warnings, BENCH_*.json record lint
#   build-test    release build + full workspace test suite
#   determinism   double-run byte-diff gates (E8 trace, E10 doctor,
#                 E11 incident bundle, E13 attribution)
#   perf          perf_payload + perf_sched regression checks
#   all           every stage in order (the default; what `./ci.sh` runs)
#
# Every cargo invocation is --offline: the build is hermetic by policy
# (no registry access; see README.md "Offline, hermetic builds"). If a
# step fails here, it fails in CI, and vice versa.
#
# Perf-gate knobs, forwarded to `perf_sched --check` (see the flag docs
# in crates/bench/src/bin/perf_sched.rs):
#
#   PERF_FLOOR_EVPS      events/sec floor at N=1000   (default 50000)
#   PERF_P99_BUDGET_US   p99 dispatch budget in µs    (default 200)
#   PERF_RECORDER_OVERHEAD  ceiling on the always-on flight recorder's
#                        wall-clock ratio at N=1000 (default 1.03 —
#                        the <=3% budget for keeping it on everywhere)
#   PERF_ATTRIB_OVERHEAD ceiling on the attribution plane's wall-clock
#                        ratio at N=1000 (default 1.03 — same always-on
#                        budget as the recorder). perf_sched --check
#                        also runs the differential perf doctor: the
#                        E13 attribution run diffed against the
#                        checked-in artifacts/E13_attrib_baseline.json,
#                        so a regression is reported by component.
#   PERF_SHARD_SPEEDUP   E9c 4-shard over 1-shard events/sec floor at
#                        N=10000 (default 1.5; auto-skipped on hosts
#                        with fewer than 4 cores, where a 4-way shard
#                        run physically cannot beat single-threaded)
#
# Directory-federation knobs, forwarded to `perf_dir --check` (see the
# flag docs in crates/bench/src/bin/perf_dir.rs):
#
#   PERF_DIR_RATIO       E12 full-refresh/delta steady-state bytes
#                        ratio floor (default 10; simulator-
#                        deterministic, so no noise headroom needed)
#   PERF_DIR_P99_US      federation lookup p99 budget in µs at 100k
#                        advertised ports (default 200)
#
# e.g. `PERF_P99_BUDGET_US=500 ./ci.sh perf` on a heavily shared box.

set -euo pipefail
cd "$(dirname "$0")"

STAGE="${1:-all}"

: "${PERF_FLOOR_EVPS:=50000}"
: "${PERF_P99_BUDGET_US:=200}"
: "${PERF_RECORDER_OVERHEAD:=1.03}"
: "${PERF_ATTRIB_OVERHEAD:=1.03}"
: "${PERF_SHARD_SPEEDUP:=1.5}"
: "${PERF_DIR_RATIO:=10}"
: "${PERF_DIR_P99_US:=200}"

# --- gate bookkeeping -------------------------------------------------
# Every gate records its wall time; the summary table prints on exit,
# also after a failure, so slow gates are visible either way.

GATE_NAMES=()
GATE_SECS=()

print_timing_summary() {
    local n=${#GATE_NAMES[@]}
    if ((n == 0)); then
        return
    fi
    echo
    echo "gate wall-time summary"
    local i
    for ((i = 0; i < n; i++)); do
        printf '  %-28s %4ss\n' "${GATE_NAMES[$i]}" "${GATE_SECS[$i]}"
    done
}
trap print_timing_summary EXIT

# gate <name> <command...> — run one named gate, recording wall time.
gate() {
    local name="$1"
    shift
    echo
    echo "==> [$name] $*"
    local t0=$SECONDS
    "$@"
    GATE_NAMES+=("$name")
    GATE_SECS+=($((SECONDS - t0)))
}

# run_determinism_gate <name> <bin> <args...> — run a bench export
# binary twice with identical arguments and byte-diff every artifact.
# Occurrences of @OUT in the args are substituted with the per-run
# output prefix (target/<name>-gate/a, then .../b); each substituted
# path is an artifact that must come out byte-identical.
run_determinism_gate() {
    local name="$1" bin="$2"
    shift 2
    local dir="target/${name}-gate"
    mkdir -p "$dir"
    local a_args=() b_args=() a_files=() b_files=() arg
    for arg in "$@"; do
        if [[ "$arg" == *@OUT* ]]; then
            a_args+=("${arg//@OUT/$dir/a}")
            b_args+=("${arg//@OUT/$dir/b}")
            a_files+=("${arg//@OUT/$dir/a}")
            b_files+=("${arg//@OUT/$dir/b}")
        else
            a_args+=("$arg")
            b_args+=("$arg")
        fi
    done
    cargo run --offline --release -p bench --bin "$bin" -- "${a_args[@]}"
    cargo run --offline --release -p bench --bin "$bin" -- "${b_args[@]}"
    local i
    for i in "${!a_files[@]}"; do
        diff "${a_files[$i]}" "${b_files[$i]}"
        echo "    byte-identical: ${a_files[$i]}"
    done
}

# --- stages -----------------------------------------------------------

stage_lint() {
    gate fmt cargo fmt --all --check
    gate clippy cargo clippy --offline --workspace --all-targets -- -D warnings
    # Committed BENCH_*.json records must parse and carry the
    # name/before/after/units convention.
    gate bench-lint cargo run --offline --release -p bench --bin bench_lint -- .
}

stage_build_test() {
    gate build cargo build --offline --release
    gate test cargo test --offline --workspace -q
}

stage_determinism() {
    # E8 trace gate: the observability run must export byte-identical
    # artifacts — metrics snapshot, Perfetto trace, folded flamegraph
    # stacks — across two fresh runs of the same seed. With the batch
    # plane on by default, this doubles as the proof that batched
    # dispatch changes no observable ordering or timing.
    gate trace-determinism run_determinism_gate trace trace_export \
        --json @OUT.metrics.json \
        --perfetto @OUT.perfetto.json \
        --folded @OUT.folded
    # E10 doctor gate: the fault-injection run must export a
    # byte-identical doctor health report (JSON) and OpenMetrics
    # exposition — the windowed sampler, the SLO burn-rate engine and
    # the doctor are all on the deterministic path.
    gate doctor-determinism run_determinism_gate doctor doctor_export \
        --doctor @OUT.doctor.json \
        --openmetrics @OUT.metrics.om
    # E11 incident gate: the sharded fault run must snapshot a
    # byte-identical incident bundle (and doctor report) across two
    # runs — the trigger plane, the flight-recorder ring and the
    # cross-shard trace hand-off all sit on the deterministic path,
    # even with shards on real threads.
    gate incident-determinism run_determinism_gate incident incident_export \
        --bundle @OUT.incident.json \
        --doctor @OUT.doctor.json
    # E13 attribution gate: the continuous profiler's snapshot, the
    # differential doctor's diff and the checked-in baseline must all
    # come out byte-identical across two runs — the incremental span
    # fold, the exemplar capture and the diff ranking are pure
    # functions of the deterministic span journal.
    gate attrib-determinism run_determinism_gate attrib attrib_export \
        --attrib @OUT.attrib.json \
        --diff @OUT.attrib_diff.json \
        --baseline @OUT.attrib_baseline.json
}

stage_perf() {
    # Data-path micro-bench smoke: exercises the bench kernels once and
    # the deterministic decode-linearity regression, without timing
    # anything.
    gate perf-payload cargo run --offline --release -p bench --bin perf_payload -- --check
    # Scheduler gates: timer-wheel kernel vs reference heap, E9
    # events/sec floor and near-linearity, p99 dispatch budget, E9b
    # batched-vs-unbatched speedup floor, telemetry sampler overhead
    # ceiling, flight-recorder and attribution overhead ceilings, the
    # differential perf doctor against the checked-in attribution
    # baseline, E9c shard-scaling floor (enforced only on >=4-core
    # hosts). Knobs come from PERF_FLOOR_EVPS / PERF_P99_BUDGET_US /
    # PERF_RECORDER_OVERHEAD / PERF_ATTRIB_OVERHEAD /
    # PERF_SHARD_SPEEDUP.
    gate perf-sched cargo run --offline --release -p bench --bin perf_sched -- \
        --check --floor-evps "$PERF_FLOOR_EVPS" --p99-budget-us "$PERF_P99_BUDGET_US" \
        --recorder-overhead "$PERF_RECORDER_OVERHEAD" \
        --attrib-overhead "$PERF_ATTRIB_OVERHEAD" \
        --shard-speedup "$PERF_SHARD_SPEEDUP"
    # Directory-federation gates: the E12 full-refresh vs delta-gossip
    # A/B must keep its steady-state bytes ratio above the floor with
    # post-churn convergence inside the anti-entropy bound, and the
    # indexed federation lookup must hold its p99 budget with zero
    # full-scan fallbacks at 100k advertised ports. Knobs come from
    # PERF_DIR_RATIO / PERF_DIR_P99_US.
    gate perf-dir cargo run --offline --release -p bench --bin perf_dir -- \
        --check --ratio "$PERF_DIR_RATIO" --p99-budget-us "$PERF_DIR_P99_US"
}

case "$STAGE" in
lint) stage_lint ;;
build-test) stage_build_test ;;
determinism) stage_determinism ;;
perf) stage_perf ;;
all)
    stage_lint
    stage_build_test
    stage_determinism
    stage_perf
    ;;
*)
    echo "usage: ./ci.sh [lint|build-test|determinism|perf|all]" >&2
    exit 2
    ;;
esac

echo
echo "ci.sh: stage '$STAGE' green"
