//! Workspace-level integration tests: full-stack scenarios spanning every
//! crate, including failure injection (device churn, lossy media, dead
//! runtimes).

use std::rc::Rc;

use umiddle::platform_bluetooth::{BipCamera, BipPrinter};
use umiddle::platform_upnp::{LightLogic, MediaRendererLogic, UpnpDevice};
use umiddle::simnet::{SegmentConfig, SimDuration, SimTime, TraceAssert, World};
use umiddle::umiddle_bridges::{behaviors, BluetoothMapper, NativeService, UpnpMapper};
use umiddle::umiddle_core::{
    Direction, QosPolicy, RuntimeConfig, RuntimeId, Shape, UMessage, UmiddleRuntime,
};
use umiddle::umiddle_usdl::UsdlLibrary;
use umiddle::util::{WireRule, Wirer};

fn recorder_shape(mime: &str) -> Shape {
    Shape::builder()
        .digital("in", Direction::Input, mime.parse().unwrap())
        .build()
        .unwrap()
}

/// The same camera drives a UPnP TV *and* a Bluetooth photo printer —
/// the paper's fine-grained device polymorphism: "the BIP Translator can
/// be connected to a player device, a storage device, and others if
/// their MIME-types match".
#[test]
fn one_camera_many_sinks_polymorphism() {
    let mut world = World::new(301);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let pico = world.add_segment(SegmentConfig::bluetooth_piconet());
    let h1 = world.add_node("h1");
    world.attach(h1, hub).unwrap();
    world.attach(h1, pico).unwrap();
    let rt = world.add_process(
        h1,
        Box::new(UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(0)))),
    );
    world.add_process(
        h1,
        Box::new(BluetoothMapper::with_defaults(rt, UsdlLibrary::bundled())),
    );
    world.add_process(
        h1,
        Box::new(UpnpMapper::with_defaults(rt, UsdlLibrary::bundled())),
    );

    let cam_node = world.add_node("camera");
    world.attach(cam_node, pico).unwrap();
    world.add_process(
        cam_node,
        Box::new(BipCamera::new("Pocket Camera", 1, 10_000)),
    );
    let printer_node = world.add_node("printer");
    world.attach(printer_node, pico).unwrap();
    world.add_process(printer_node, Box::new(BipPrinter::new("Photo Printer")));
    let tv_node = world.add_node("tv");
    world.attach(tv_node, hub).unwrap();
    world.add_process(
        tv_node,
        Box::new(UpnpDevice::new(
            Box::new(MediaRendererLogic::new("Living Room TV", "uuid:tv")),
            5000,
        )),
    );

    // Trigger a capture periodically.
    let button = Shape::builder()
        .digital("press", Direction::Output, "text/plain".parse().unwrap())
        .build()
        .unwrap();
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "Trigger",
            button,
            rt,
            Box::new(behaviors::PeriodicSource::new(
                "press",
                SimDuration::from_secs(25),
                2,
                |_| UMessage::text("snap"),
            )),
        )),
    );
    world.add_process(
        h1,
        Box::new(Wirer::new(
            rt,
            vec![
                WireRule::new("Trigger", "press", "Pocket Camera", "capture"),
                // One output, two sinks on two different platforms.
                WireRule::new("Pocket Camera", "image-out", "Living Room TV", "media-in"),
                WireRule::new("Pocket Camera", "image-out", "Photo Printer", "image-in"),
            ],
        )),
    );

    world.run_until(SimTime::from_secs(120));
    assert!(
        world.trace().counter("upnp.actions") >= 1,
        "TV rendered at least one frame"
    );
    assert!(
        world.trace().counter("bt.bip_printed") >= 1,
        "printer printed at least one frame"
    );

    // The TV-bound frame's journey is causally complete: queued, locally
    // delivered (single runtime, no wire hop) and handed to the UPnP
    // bridge, all within the virtual minute after the trigger fires.
    let trace = world.trace();
    let corr = trace
        .spans()
        .iter()
        .find(|s| s.stage == "bridge.upnp.input")
        .expect("a frame reached the UPnP bridge")
        .corr;
    TraceAssert::new(trace)
        .expect_path(corr)
        .through(&[
            "output.enqueue",
            "queue.wait",
            "deliver.local",
            "bridge.upnp.input",
        ])
        .within(SimDuration::from_secs(60));
}

/// Device churn: a light that disappears and returns is re-mapped, and a
/// *query* connection re-binds to the replacement automatically.
#[test]
fn device_churn_rebinds_query_connections() {
    use umiddle::umiddle_core::{PortKind, Query};

    let mut world = World::new(302);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let h1 = world.add_node("h1");
    world.attach(h1, hub).unwrap();
    let rt = world.add_process(
        h1,
        Box::new(UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(0)))),
    );
    world.add_process(
        h1,
        Box::new(UpnpMapper::with_defaults(rt, UsdlLibrary::bundled())),
    );
    let light_node = world.add_node("light");
    world.attach(light_node, hub).unwrap();
    let light1 = world.add_process(
        light_node,
        Box::new(UpnpDevice::new(
            Box::new(LightLogic::new("Lamp One", "uuid:l1")),
            5000,
        )),
    );

    // A switch emitting every 5 s indefinitely, wired by *query* to any
    // text/plain input (dynamic device binding).
    let switch_shape = Shape::builder()
        .digital("toggle", Direction::Output, "text/plain".parse().unwrap())
        .build()
        .unwrap();
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "Switch",
            switch_shape,
            rt,
            Box::new(behaviors::PeriodicSource::new(
                "toggle",
                SimDuration::from_secs(5),
                0,
                |_| UMessage::text("1"),
            )),
        )),
    );

    struct QueryWirer {
        runtime: simnet_proc::ProcId,
        client: Option<umiddle::umiddle_core::RuntimeClient>,
        src: Option<umiddle::umiddle_core::PortRef>,
        wired: bool,
    }
    mod simnet_proc {
        pub use umiddle::simnet::ProcId;
    }
    impl umiddle::simnet::Process for QueryWirer {
        fn on_start(&mut self, ctx: &mut umiddle::simnet::Ctx<'_>) {
            let client = umiddle::umiddle_core::RuntimeClient::new(self.runtime);
            client.add_listener(ctx, Query::All);
            self.client = Some(client);
        }
        fn on_local(
            &mut self,
            ctx: &mut umiddle::simnet::Ctx<'_>,
            _from: simnet_proc::ProcId,
            msg: umiddle::simnet::LocalMessage,
        ) {
            let Ok(event) = msg.downcast::<umiddle::umiddle_core::RuntimeEvent>() else {
                return;
            };
            if let umiddle::umiddle_core::RuntimeEvent::Directory(
                umiddle::umiddle_core::DirectoryEvent::Appeared(profile),
            ) = *event
            {
                if profile.name() == "Switch" {
                    self.src = Some(umiddle::umiddle_core::PortRef::new(profile.id(), "toggle"));
                }
                if let (Some(src), false) = (self.src, self.wired) {
                    self.wired = true;
                    self.client.as_mut().expect("set").connect_query(
                        ctx,
                        src,
                        Query::has_port(
                            Direction::Input,
                            PortKind::Digital("text/plain".parse().unwrap()),
                        )
                        .and(Query::Platform("upnp".to_owned())),
                        QosPolicy::bounded_drop_newest(8192),
                    );
                }
            }
        }
    }
    world.add_process(
        h1,
        Box::new(QueryWirer {
            runtime: rt,
            client: None,
            src: None,
            wired: false,
        }),
    );

    // Phase 1: lamp one receives actions.
    world.run_until(SimTime::from_secs(30));
    let actions_before = world.trace().counter("upnp.actions");
    assert!(actions_before >= 1, "lamp one driven: {actions_before}");

    // Phase 2: lamp one dies (with byebye), replacement appears later.
    world.remove_process(light1).unwrap();
    world.run_until(SimTime::from_secs(45));
    world.add_process(
        light_node,
        Box::new(UpnpDevice::new(
            Box::new(LightLogic::new("Lamp Two", "uuid:l2")),
            5001,
        )),
    );
    world.run_until(SimTime::from_secs(90));
    let actions_after = world.trace().counter("upnp.actions");
    assert!(
        actions_after > actions_before,
        "the query connection re-bound to lamp two: {actions_before} -> {actions_after}"
    );
}

/// A lossy piconet still delivers images (stream retransmission), just
/// more slowly.
#[test]
fn lossy_piconet_still_delivers() {
    let mut world = World::new(303);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let pico = world.add_segment(SegmentConfig::bluetooth_piconet().with_loss(0.05));
    let h1 = world.add_node("h1");
    world.attach(h1, hub).unwrap();
    world.attach(h1, pico).unwrap();
    let rt = world.add_process(
        h1,
        Box::new(UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(0)))),
    );
    world.add_process(
        h1,
        Box::new(BluetoothMapper::with_defaults(rt, UsdlLibrary::bundled())),
    );
    let cam_node = world.add_node("camera");
    world.attach(cam_node, pico).unwrap();
    world.add_process(
        cam_node,
        Box::new(BipCamera::new("Pocket Camera", 1, 30_000)),
    );

    let recorder = behaviors::Recorder::new();
    let received = Rc::clone(&recorder.received);
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "Viewer",
            recorder_shape("image/jpeg"),
            rt,
            Box::new(recorder),
        )),
    );
    let button = Shape::builder()
        .digital("press", Direction::Output, "text/plain".parse().unwrap())
        .build()
        .unwrap();
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "Trigger",
            button,
            rt,
            Box::new(behaviors::PeriodicSource::new(
                "press",
                SimDuration::from_secs(30),
                1,
                |_| UMessage::text("snap"),
            )),
        )),
    );
    world.add_process(
        h1,
        Box::new(Wirer::new(
            rt,
            vec![
                WireRule::new("Trigger", "press", "Pocket Camera", "capture"),
                WireRule::new("Pocket Camera", "image-out", "Viewer", "in"),
            ],
        )),
    );

    world.run_until(SimTime::from_secs(180));
    let received = received.borrow();
    assert!(!received.is_empty(), "image survived 5% frame loss");
    // The 30 kB image arrived intact (stream layer reassembled it).
    assert!(
        received.iter().any(|(_, m)| m.body().len() == 30_000),
        "sizes: {:?}",
        received
            .iter()
            .map(|(_, m)| m.body().len())
            .collect::<Vec<_>>()
    );
    assert!(
        world.trace().counter("stream.rto") > 0,
        "retransmissions happened"
    );
}

/// Two federated runtimes: killing the remote one expires its
/// translators; local devices keep working.
#[test]
fn runtime_failure_is_contained() {
    let mut world = World::new(304);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let h1 = world.add_node("h1");
    let h2 = world.add_node("h2");
    world.attach(h1, hub).unwrap();
    world.attach(h2, hub).unwrap();
    let rt1 = world.add_process(
        h1,
        Box::new(UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(0)))),
    );
    let rt2 = world.add_process(
        h2,
        Box::new(UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(1)))),
    );

    // A source+sink pair on runtime 1 (local), a sink on runtime 2
    // (remote).
    let src_shape = Shape::builder()
        .digital("out", Direction::Output, "text/plain".parse().unwrap())
        .build()
        .unwrap();
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "Source",
            src_shape,
            rt1,
            Box::new(behaviors::PeriodicSource::new(
                "out",
                SimDuration::from_secs(2),
                0,
                |i| UMessage::text(format!("m{i}")),
            )),
        )),
    );
    let local_rec = behaviors::Recorder::new();
    let local_received = Rc::clone(&local_rec.received);
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "Local Sink",
            recorder_shape("text/plain"),
            rt1,
            Box::new(local_rec),
        )),
    );
    let remote_rec = behaviors::Recorder::new();
    let remote_received = Rc::clone(&remote_rec.received);
    world.add_process(
        h2,
        Box::new(NativeService::new(
            "Remote Sink",
            recorder_shape("text/plain"),
            rt2,
            Box::new(remote_rec),
        )),
    );
    world.add_process(
        h1,
        Box::new(Wirer::new(
            rt1,
            vec![
                WireRule::new("Source", "out", "Local Sink", "in"),
                WireRule::new("Source", "out", "Remote Sink", "in")
                    .with_qos(QosPolicy::bounded_drop_oldest(8192)),
            ],
        )),
    );

    world.run_until(SimTime::from_secs(20));
    let remote_before = remote_received.borrow().len();
    assert!(remote_before > 0, "remote sink received messages first");

    // Kill runtime 2 (and its node's sink is orphaned with it).
    world.remove_process(rt2).unwrap();
    world.run_until(SimTime::from_secs(60));

    // Local delivery never stops.
    let local_count = local_received.borrow().len();
    assert!(
        local_count >= 25,
        "local path unaffected by the remote crash: {local_count}"
    );
    // Remote deliveries stopped, and the system did not wedge.
    let remote_after = remote_received.borrow().len();
    assert!(remote_after >= remote_before);
}

/// The full evaluation harness is runnable end to end with tiny
/// parameters (smoke test for `cargo bench`).
#[test]
fn experiment_harness_smoke() {
    let rows = bench_smoke::run();
    assert!(rows > 0);
}

mod bench_smoke {
    /// Runs E1 with one repetition and checks the shape: the clock is the
    /// slowest to map.
    pub fn run() -> usize {
        let rows = bench::experiments::e1_service_level(1);
        let clock = rows
            .iter()
            .find(|r| r.device.contains("clock"))
            .expect("clock row");
        for r in &rows {
            if !r.device.contains("clock") {
                assert!(
                    clock.mean_time > r.mean_time,
                    "clock ({}) slower than {} ({})",
                    clock.mean_time,
                    r.device,
                    r.mean_time
                );
            }
        }
        rows.len()
    }
}
