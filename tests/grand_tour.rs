//! The grand tour: every platform the paper bridges, in one world, one
//! federation, one directory.

use std::rc::Rc;

use umiddle::platform_bluetooth::{BipCamera, HidpMouse, MouseConfig};
use umiddle::platform_mediabroker::{MbFrame, MediaBroker, BROKER_PORT};
use umiddle::platform_motes::{BaseStation, Mote};
use umiddle::platform_rmi::{RmiObjectServer, RmiRegistry, REGISTRY_PORT};
use umiddle::platform_upnp::{ClockLogic, LightLogic, MediaRendererLogic, UpnpDevice};
use umiddle::platform_webservices::WsServer;
use umiddle::simnet::{Addr, Ctx, Process, SegmentConfig, SimDuration, SimTime, World};
use umiddle::umiddle_apps::Pads;
use umiddle::umiddle_bridges::{
    behaviors, BluetoothMapper, MediaBrokerMapper, MotesMapper, NativeService, RmiMapper,
    UpnpMapper, WsMapper,
};
use umiddle::umiddle_core::{Direction, RuntimeConfig, RuntimeId, Shape, UmiddleRuntime};
use umiddle::umiddle_usdl::UsdlLibrary;
use umiddle::util::{WireRule, Wirer};

/// Builds one smart space containing all six platforms plus native
/// services, lets it converge, and verifies the unified view.
#[test]
fn all_six_platforms_one_directory() {
    let mut world = World::new(777);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let pico = world.add_segment(SegmentConfig::bluetooth_piconet());
    let radio = world.add_segment(SegmentConfig::mote_radio());

    // Two intermediary nodes sharing the federation.
    let h1 = world.add_node("h1");
    world.attach(h1, hub).unwrap();
    world.attach(h1, pico).unwrap();
    world.attach(h1, radio).unwrap();
    let rt1 = world.add_process(
        h1,
        Box::new(UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(0)))),
    );
    let h2 = world.add_node("h2");
    world.attach(h2, hub).unwrap();
    let rt2 = world.add_process(
        h2,
        Box::new(UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(1)))),
    );

    // --- UPnP: three devices, mapped on h2 ---
    let upnp_node = world.add_node("upnp");
    world.attach(upnp_node, hub).unwrap();
    world.add_process(
        upnp_node,
        Box::new(UpnpDevice::new(
            Box::new(ClockLogic::new("Clock", "uuid:c")),
            5000,
        )),
    );
    world.add_process(
        upnp_node,
        Box::new(UpnpDevice::new(
            Box::new(LightLogic::new("Light", "uuid:l")),
            5001,
        )),
    );
    world.add_process(
        upnp_node,
        Box::new(UpnpDevice::new(
            Box::new(MediaRendererLogic::new("TV", "uuid:tv")),
            5002,
        )),
    );
    world.add_process(
        h2,
        Box::new(UpnpMapper::with_defaults(rt2, UsdlLibrary::bundled())),
    );

    // --- Bluetooth: camera + mouse, mapped on h1 ---
    let cam_node = world.add_node("camera");
    world.attach(cam_node, pico).unwrap();
    world.add_process(cam_node, Box::new(BipCamera::new("Camera", 1, 6_000)));
    let mouse_node = world.add_node("mouse");
    world.attach(mouse_node, pico).unwrap();
    world.add_process(
        mouse_node,
        Box::new(HidpMouse::new(MouseConfig {
            name: "Mouse".to_owned(),
            click_interval: Some(SimDuration::from_millis(700)),
            motion_interval: None,
            click_limit: 0,
        })),
    );
    world.add_process(
        h1,
        Box::new(BluetoothMapper::with_defaults(rt1, UsdlLibrary::bundled())),
    );

    // --- RMI: registry + echo, mapped on h2 ---
    let rmi_node = world.add_node("rmi");
    world.attach(rmi_node, hub).unwrap();
    world.add_process(rmi_node, Box::new(RmiRegistry::new()));
    let registry = Addr::new(rmi_node, REGISTRY_PORT);
    world.add_process(rmi_node, Box::new(RmiObjectServer::echo(2099, registry)));
    world.add_process(
        h2,
        Box::new(RmiMapper::new(
            rt2,
            UsdlLibrary::bundled(),
            registry,
            vec!["EchoService".to_owned()],
        )),
    );

    // --- MediaBroker: broker + one raw producer channel, mapped on h2 ---
    let mb_node = world.add_node("mb");
    world.attach(mb_node, hub).unwrap();
    world.add_process(mb_node, Box::new(MediaBroker::new()));
    struct RawProducer {
        broker: Addr,
    }
    impl Process for RawProducer {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.connect(self.broker).unwrap();
        }
        fn on_stream(
            &mut self,
            ctx: &mut Ctx<'_>,
            stream: umiddle::simnet::StreamId,
            event: umiddle::simnet::StreamEvent,
        ) {
            if matches!(event, umiddle::simnet::StreamEvent::Connected) {
                let _ = ctx.stream_send(
                    stream,
                    MbFrame::Produce {
                        channel: "feed".to_owned(),
                        media_type: "application/octet-stream".to_owned(),
                    }
                    .encode_framed(),
                );
            }
        }
    }
    let broker = Addr::new(mb_node, BROKER_PORT);
    world.add_process(mb_node, Box::new(RawProducer { broker }));
    world.add_process(
        h2,
        Box::new(MediaBrokerMapper::new(
            rt2,
            UsdlLibrary::bundled(),
            broker,
            vec![],
        )),
    );

    // --- Motes: two sensors + base station, mapped on h1 ---
    for i in 0..2u16 {
        let m_node = world.add_node(format!("mote{i}"));
        world.attach(m_node, radio).unwrap();
        world.add_process(
            m_node,
            Box::new(Mote::new(i + 1, SimDuration::from_secs(3))),
        );
    }
    let motes_mapper = MotesMapper::new(rt1, UsdlLibrary::bundled(), None);
    let motes_proc = world.add_process(h1, Box::new(motes_mapper));
    world.add_process(h1, Box::new(BaseStation::new(Some(motes_proc))));

    // --- Web services: a logger, mapped on h1 ---
    let ws_node = world.add_node("ws");
    world.attach(ws_node, hub).unwrap();
    world.add_process(ws_node, Box::new(WsServer::logger("Journal", 8080)));
    world.add_process(
        h1,
        Box::new(WsMapper::new(
            rt1,
            UsdlLibrary::bundled(),
            vec![Addr::new(ws_node, 8080)],
        )),
    );

    // --- Native: a click counter fed by the mouse ---
    let recorder = behaviors::Recorder::new();
    let clicks = Rc::clone(&recorder.received);
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "Click Counter",
            Shape::builder()
                .digital("in", Direction::Input, "text/plain".parse().unwrap())
                .build()
                .unwrap(),
            rt1,
            Box::new(recorder),
        )),
    );
    world.add_process(
        h1,
        Box::new(Wirer::new(
            rt1,
            vec![
                // Cross-platform wiring sampled from the directory:
                WireRule::new("Mouse", "clicks", "Click Counter", "in"),
                WireRule::new("Mote 1", "temperature", "Journal", "log-in"),
            ],
        )),
    );

    // Pads watches the whole federation from h2.
    let pads = Pads::new(rt2);
    let canvas = pads.canvas_handle();
    world.add_process(h2, Box::new(pads));

    world.run_until(SimTime::from_secs(120));

    // Every platform contributed at least one icon to the unified view.
    let canvas = canvas.borrow();
    let platforms: std::collections::BTreeSet<String> = canvas
        .icons
        .iter()
        .map(|i| i.profile.platform().to_owned())
        .collect();
    assert!(
        [
            "bluetooth",
            "mediabroker",
            "motes",
            "rmi",
            "upnp",
            "umiddle",
            "webservices"
        ]
        .iter()
        .all(|p| platforms.contains(*p)),
        "platforms in the directory: {platforms:?}\n{}",
        canvas.render_ascii()
    );
    // 3 UPnP + 2 BT + 1 RMI + 1 MB + 2 motes + 1 WS + 1 native = 11+.
    assert!(
        canvas.icons.len() >= 11,
        "icon count {}:\n{}",
        canvas.icons.len(),
        canvas.render_ascii()
    );
    // Cross-platform flows ran.
    assert!(
        !clicks.borrow().is_empty(),
        "mouse clicks crossed the bridge"
    );
    assert!(
        world.trace().counter("ws.calls") >= 1,
        "mote readings reached the web service"
    );

    // Print the unified canvas for posterity when running with
    // `--nocapture`.
    println!("{}", canvas.render_ascii());
}
