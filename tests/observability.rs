//! Federation-wide observability: path spans keyed by correlation id,
//! per-runtime metric scopes, and deterministic snapshots.

use umiddle::platform_bluetooth::{HidpMouse, MouseConfig};
use umiddle::platform_upnp::{LightLogic, UpnpDevice};
use umiddle::simnet::{
    Ctx, LocalMessage, ProcId, Process, SegmentConfig, SimDuration, SimTime, TraceAssert, World,
};
use umiddle::umiddle_bridges::{behaviors, BluetoothMapper, NativeService, UpnpMapper};
use umiddle::umiddle_core::{
    Direction, RuntimeClient, RuntimeConfig, RuntimeEvent, RuntimeId, Shape, UMessage,
    UmiddleRuntime,
};
use umiddle::umiddle_usdl::UsdlLibrary;
use umiddle::util::{WireRule, Wirer};

use std::cell::RefCell;
use std::rc::Rc;

/// Builds the canonical two-hop world: a Bluetooth mouse mapped on
/// h1/rt0, a UPnP light mapped on h2/rt1, clicks wired across the
/// federation. Returns the world, run to completion.
fn two_hop_world(seed: u64) -> World {
    let mut world = World::new(seed);
    world.trace_mut().set_log_enabled(false);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let pico = world.add_segment(SegmentConfig::bluetooth_piconet());

    let h1 = world.add_node("h1");
    world.attach(h1, hub).unwrap();
    world.attach(h1, pico).unwrap();
    let rt1 = world.add_process(
        h1,
        Box::new(UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(0)))),
    );
    let mouse_node = world.add_node("mouse");
    world.attach(mouse_node, pico).unwrap();
    world.add_process(
        mouse_node,
        Box::new(HidpMouse::new(MouseConfig {
            name: "Obs Mouse".to_owned(),
            click_interval: Some(SimDuration::from_millis(500)),
            motion_interval: None,
            click_limit: 10,
        })),
    );
    world.add_process(
        h1,
        Box::new(BluetoothMapper::with_defaults(rt1, UsdlLibrary::bundled())),
    );

    let h2 = world.add_node("h2");
    world.attach(h2, hub).unwrap();
    let rt2 = world.add_process(
        h2,
        Box::new(UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(1)))),
    );
    let light_node = world.add_node("light");
    world.attach(light_node, hub).unwrap();
    world.add_process(
        light_node,
        Box::new(UpnpDevice::new(
            Box::new(LightLogic::new("Obs Light", "uuid:obs-l")),
            5000,
        )),
    );
    world.add_process(
        h2,
        Box::new(UpnpMapper::with_defaults(rt2, UsdlLibrary::bundled())),
    );

    world.add_process(
        h1,
        Box::new(Wirer::new(
            rt1,
            vec![WireRule::new(
                "Obs Mouse",
                "clicks",
                "Obs Light",
                "switch-on",
            )],
        )),
    );

    world.run_until(SimTime::from_secs(30));
    world
}

/// A message crossing a two-platform bridge (Bluetooth → UPnP) is fully
/// reconstructable from its trace spans by correlation id.
#[test]
fn correlation_id_reconstructs_two_hop_path() {
    let world = two_hop_world(4242);
    let trace = world.trace();

    // Find the cross-platform path by its terminal bridge hop.
    let corr = trace
        .spans()
        .iter()
        .find(|s| s.stage == "bridge.upnp.input")
        .expect("a click reached the UPnP bridge")
        .corr;
    // The connection was opened by rt0 (the mouse's runtime).
    assert_eq!(corr >> 32, 0, "correlation id encodes the owning runtime");

    // Every hop of the journey is present, in causal order; the whole
    // matched window (connection setup through first delivery into the
    // UPnP bridge) fits a generous budget, and no span leaked open.
    TraceAssert::new(trace)
        .expect_path(corr)
        .through(&[
            "connect",
            "path.bound",
            "output.enqueue",
            "queue.wait",
            "transport.send",
            "transport.receive",
            "deliver.local",
            "bridge.upnp.input",
        ])
        .within(SimDuration::from_secs(5))
        .all_closed();
    assert!(trace.spans_dropped() == 0, "span log overflowed");
}

/// Counters land in the owning runtime's scope and nowhere else, and the
/// expected per-runtime metrics exist after a cross-runtime exchange.
#[test]
fn metric_scopes_separate_runtimes() {
    let world = two_hop_world(4242);
    let metrics = world.trace().metrics();

    // rt0 owns the mouse: it registers the translator, opens the
    // connection and sends the outputs.
    let rt0 = metrics.scoped("rt0");
    assert!(rt0.counter("registrations") >= 1);
    assert_eq!(rt0.counter("connections_opened"), 1);
    assert!(rt0.counter("outputs") >= 10, "10 press/release signals");

    // rt1 owns the light: it decodes the path frames but never opened a
    // connection of its own.
    let rt1 = metrics.scoped("rt1");
    assert!(rt1.counter("frames_decoded") >= 10);
    assert_eq!(rt1.counter("connections_opened"), 0);

    // Scoped iteration strips the prefix and never leaks neighbours.
    for (name, _) in rt0.counters() {
        assert!(!name.starts_with("rt"), "prefix not stripped: {name}");
    }

    // The federation-wide histograms exist alongside the scopes.
    for h in [
        "umiddle.discovery_latency",
        "umiddle.translation_latency",
        "umiddle.path_latency",
        "bridge.bluetooth.translation",
        "bridge.upnp.translation",
    ] {
        let hist = metrics
            .histogram(h)
            .unwrap_or_else(|| panic!("missing {h}"));
        assert!(hist.count() > 0, "{h} is empty");
    }
}

/// The critical-path analyzer accounts for (essentially all of) the
/// end-to-end latency of a bridged journey by named stage, and the
/// trace's own drop counters are folded into the metrics snapshot.
#[test]
fn critical_path_attributes_bridged_latency() {
    let world = two_hop_world(4242);
    let trace = world.trace();
    let corr = trace
        .spans()
        .iter()
        .find(|s| s.stage == "bridge.upnp.input")
        .expect("a click reached the UPnP bridge")
        .corr;

    let cp = umiddle::simnet::CriticalPath::analyze(trace.spans(), corr)
        .expect("journeys on the bridged path");
    assert!(cp.journeys >= 1);
    assert!(
        cp.coverage() >= 0.95,
        "only {:.3} of end-to-end latency attributed to stages",
        cp.coverage()
    );
    assert_eq!(cp.dominant.is_some(), cp.total > SimDuration::ZERO);
    assert!(
        cp.stages.iter().any(|s| s.name == "transport.send"),
        "wire time missing from breakdown: {:?}",
        cp.stages.iter().map(|s| &s.name).collect::<Vec<_>>()
    );

    // Lossless run: the drop counters exist in the snapshot and are 0.
    let snap = trace.metrics().snapshot();
    assert_eq!(snap.counters.get("trace.events_dropped"), Some(&0));
    assert_eq!(snap.counters.get("trace.spans_dropped"), Some(&0));
}

/// Two identical runs produce byte-identical metric snapshots.
#[test]
fn snapshot_is_deterministic_across_runs() {
    let a = two_hop_world(7).trace().metrics().snapshot().to_json();
    let b = two_hop_world(7).trace().metrics().snapshot().to_json();
    assert_eq!(a, b);
    assert!(a.contains("\"umiddle.path_latency\""));

    // A different seed still produces the same schema (and typically
    // different timings — not asserted, jitter may collide).
    let c = two_hop_world(8).trace().metrics().snapshot().to_json();
    assert!(c.contains("\"umiddle.path_latency\""));
}

/// An application can pull its runtime's scoped metrics through the
/// local API: `RuntimeRequest::MetricsSnapshot` → `RuntimeEvent::Metrics`.
#[test]
fn runtime_serves_scoped_snapshot_over_local_api() {
    struct Prober {
        runtime: ProcId,
        client: Option<RuntimeClient>,
        token: u64,
        got: Rc<RefCell<Option<umiddle::simnet::MetricsSnapshot>>>,
    }
    impl Process for Prober {
        fn name(&self) -> &str {
            "prober"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.client = Some(RuntimeClient::new(self.runtime));
            // Ask late enough that the runtime has advertised a few times.
            ctx.set_timer(SimDuration::from_secs(20), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            self.token = self.client.as_mut().expect("client").metrics_snapshot(ctx);
        }
        fn on_local(&mut self, _ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
            let Ok(event) = msg.downcast::<RuntimeEvent>() else {
                return;
            };
            if let RuntimeEvent::Metrics { token, snapshot } = *event {
                assert_eq!(token, self.token);
                *self.got.borrow_mut() = Some(snapshot);
            }
        }
    }

    let mut world = World::new(99);
    world.trace_mut().set_log_enabled(false);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let h1 = world.add_node("h1");
    world.attach(h1, hub).unwrap();
    let rt = world.add_process(
        h1,
        Box::new(UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(3)))),
    );
    // Give the runtime something to meter: one registered native source.
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "Probe Source",
            Shape::builder()
                .digital("out", Direction::Output, "text/plain".parse().unwrap())
                .build()
                .unwrap(),
            rt,
            Box::new(behaviors::PeriodicSource::new(
                "out",
                SimDuration::from_secs(1),
                5,
                |_| UMessage::text("tick"),
            )),
        )),
    );
    let got = Rc::new(RefCell::new(None));
    world.add_process(
        h1,
        Box::new(Prober {
            runtime: rt,
            client: None,
            token: 0,
            got: Rc::clone(&got),
        }),
    );
    world.run_until(SimTime::from_secs(30));

    let snapshot = got.borrow().clone().expect("Metrics reply arrived");
    // Prefixes are stripped: the scope's own counters appear bare.
    assert!(
        snapshot.counters.contains_key("advertisements_sent"),
        "scoped counters: {:?}",
        snapshot.counters
    );
    assert!(snapshot.counters.keys().all(|k| !k.starts_with("rt3.")));
}

/// Pulls the runtime's live telemetry window at fixed virtual times and
/// records every reply, keyed by request token.
struct WindowProber {
    runtime: ProcId,
    client: Option<RuntimeClient>,
    pulls: Vec<SimDuration>,
    pending: Rc<RefCell<Vec<u64>>>,
    got: Rc<RefCell<Vec<(u64, umiddle::simnet::TelemetryWindow)>>>,
}

impl Process for WindowProber {
    fn name(&self) -> &str {
        "window-prober"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.client = Some(RuntimeClient::new(self.runtime));
        for (i, &at) in self.pulls.iter().enumerate() {
            ctx.set_timer(at, i as u64);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let token = self.client.as_mut().expect("client").telemetry_window(ctx);
        self.pending.borrow_mut().push(token);
    }
    fn on_local(&mut self, _ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
        let Ok(event) = msg.downcast::<RuntimeEvent>() else {
            return;
        };
        if let RuntimeEvent::Telemetry { token, window } = *event {
            assert!(
                self.pending.borrow().contains(&token),
                "reply for a token never requested"
            );
            let window = window.expect("telemetry plane enabled");
            self.got.borrow_mut().push((token, window));
        }
    }
}

type PulledWindows = Rc<RefCell<Vec<(u64, umiddle::simnet::TelemetryWindow)>>>;

/// Two concurrent runtimes each serve their own scoped, live telemetry
/// windows over the local API (`RuntimeRequest::TelemetryWindow` →
/// `RuntimeEvent::Telemetry`), with interleaved pulls: windows stay
/// scoped to the owning runtime, advance monotonically between pulls,
/// and the whole interleaving is byte-deterministic across runs.
#[test]
fn runtimes_serve_interleaved_live_telemetry_windows() {
    fn run(seed: u64) -> (PulledWindows, PulledWindows) {
        let mut world = World::new(seed);
        world.trace_mut().set_log_enabled(false);
        let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
        let pico = world.add_segment(SegmentConfig::bluetooth_piconet());

        let h1 = world.add_node("h1");
        world.attach(h1, hub).unwrap();
        world.attach(h1, pico).unwrap();
        let rt1 = world.add_process(
            h1,
            Box::new(UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(0)))),
        );
        let mouse_node = world.add_node("mouse");
        world.attach(mouse_node, pico).unwrap();
        world.add_process(
            mouse_node,
            Box::new(HidpMouse::new(MouseConfig {
                name: "Obs Mouse".to_owned(),
                click_interval: Some(SimDuration::from_millis(500)),
                motion_interval: None,
                click_limit: 0, // keep clicking so every window sees traffic
            })),
        );
        world.add_process(
            h1,
            Box::new(BluetoothMapper::with_defaults(rt1, UsdlLibrary::bundled())),
        );

        let h2 = world.add_node("h2");
        world.attach(h2, hub).unwrap();
        let rt2 = world.add_process(
            h2,
            Box::new(UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(1)))),
        );
        let light_node = world.add_node("light");
        world.attach(light_node, hub).unwrap();
        world.add_process(
            light_node,
            Box::new(UpnpDevice::new(
                Box::new(LightLogic::new("Obs Light", "uuid:obs-l")),
                5000,
            )),
        );
        world.add_process(
            h2,
            Box::new(UpnpMapper::with_defaults(rt2, UsdlLibrary::bundled())),
        );
        world.add_process(
            h1,
            Box::new(Wirer::new(
                rt1,
                vec![WireRule::new(
                    "Obs Mouse",
                    "clicks",
                    "Obs Light",
                    "switch-on",
                )],
            )),
        );

        world.enable_telemetry(umiddle::simnet::TelemetryConfig {
            sampler: umiddle::simnet::SamplerConfig {
                interval: SimDuration::from_millis(500),
                window: 64,
            },
            objectives: vec![],
            liveness_timeout: SimDuration::from_secs(5),
        });

        // Interleaved pulls: rt0 at 10 s and 20 s, rt1 at 15 s and 25 s.
        let make = |runtime, pulls: &[u64]| {
            let got: PulledWindows = Rc::new(RefCell::new(Vec::new()));
            let prober = WindowProber {
                runtime,
                client: None,
                pulls: pulls.iter().map(|&s| SimDuration::from_secs(s)).collect(),
                pending: Rc::new(RefCell::new(Vec::new())),
                got: Rc::clone(&got),
            };
            (prober, got)
        };
        let (p0, got0) = make(rt1, &[10, 20]);
        let (p1, got1) = make(rt2, &[15, 25]);
        world.add_process(h1, Box::new(p0));
        world.add_process(h2, Box::new(p1));

        world.run_until(SimTime::from_secs(30));
        (got0, got1)
    }

    let (got0, got1) = run(4242);
    let w0 = got0.borrow();
    let w1 = got1.borrow();
    assert_eq!(w0.len(), 2, "rt0 prober missed a pull");
    assert_eq!(w1.len(), 2, "rt1 prober missed a pull");

    // Scoping: each runtime sees its own bare counters and nothing of
    // its neighbour (or of the unscoped federation metrics).
    let (_, rt0_window) = &w0[1];
    let (_, rt1_window) = &w1[1];
    assert!(
        rt0_window.counters.contains_key("outputs"),
        "rt0 window lacks its own traffic: {:?}",
        rt0_window.counters.keys().collect::<Vec<_>>()
    );
    assert!(rt1_window.counters.contains_key("frames_decoded"));
    for w in [rt0_window, rt1_window] {
        assert!(w.counters.keys().all(|k| !k.contains("rt0.")));
        assert!(w.counters.keys().all(|k| !k.contains("rt1.")));
        assert!(!w.counters.contains_key("events_processed"));
    }

    // Liveness: the second pull sees a later sampler position and more
    // accumulated traffic than the first — the windows are live views,
    // not one frozen snapshot.
    assert!(w0[1].1.last_sample_ns > w0[0].1.last_sample_ns);
    assert!(w0[1].1.samples > w0[0].1.samples);
    let outputs =
        |w: &umiddle::simnet::TelemetryWindow| w.counters.get("outputs").map_or(0, |c| c.total);
    assert!(
        outputs(&w0[1].1) > outputs(&w0[0].1),
        "second window saw no new outputs"
    );

    // Determinism: the full interleaving replays byte-identically.
    let (again0, again1) = run(4242);
    let json = |ws: &[(u64, umiddle::simnet::TelemetryWindow)]| {
        ws.iter()
            .map(|(t, w)| format!("{t}:{}", w.to_json()))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(json(&w0), json(&again0.borrow()));
    assert_eq!(json(&w1), json(&again1.borrow()));
}
