/root/repo/target/release/examples/camera_to_tv-437f75a95cfe844c.d: examples/camera_to_tv.rs

/root/repo/target/release/examples/camera_to_tv-437f75a95cfe844c: examples/camera_to_tv.rs

examples/camera_to_tv.rs:
