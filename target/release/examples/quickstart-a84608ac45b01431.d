/root/repo/target/release/examples/quickstart-a84608ac45b01431.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-a84608ac45b01431: examples/quickstart.rs

examples/quickstart.rs:
