/root/repo/target/release/deps/umiddle_apps-43643af7dae00bb4.d: crates/umiddle-apps/src/lib.rs crates/umiddle-apps/src/g2ui.rs crates/umiddle-apps/src/pads.rs

/root/repo/target/release/deps/libumiddle_apps-43643af7dae00bb4.rlib: crates/umiddle-apps/src/lib.rs crates/umiddle-apps/src/g2ui.rs crates/umiddle-apps/src/pads.rs

/root/repo/target/release/deps/libumiddle_apps-43643af7dae00bb4.rmeta: crates/umiddle-apps/src/lib.rs crates/umiddle-apps/src/g2ui.rs crates/umiddle-apps/src/pads.rs

crates/umiddle-apps/src/lib.rs:
crates/umiddle-apps/src/g2ui.rs:
crates/umiddle-apps/src/pads.rs:
