/root/repo/target/release/deps/umiddle-93b68ee55a184ee1.d: src/lib.rs src/util.rs

/root/repo/target/release/deps/libumiddle-93b68ee55a184ee1.rlib: src/lib.rs src/util.rs

/root/repo/target/release/deps/libumiddle-93b68ee55a184ee1.rmeta: src/lib.rs src/util.rs

src/lib.rs:
src/util.rs:
