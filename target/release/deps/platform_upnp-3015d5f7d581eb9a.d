/root/repo/target/release/deps/platform_upnp-3015d5f7d581eb9a.d: crates/platform-upnp/src/lib.rs crates/platform-upnp/src/calib.rs crates/platform-upnp/src/client.rs crates/platform-upnp/src/description.rs crates/platform-upnp/src/device.rs crates/platform-upnp/src/devices.rs crates/platform-upnp/src/gena.rs crates/platform-upnp/src/http.rs crates/platform-upnp/src/soap.rs crates/platform-upnp/src/ssdp.rs

/root/repo/target/release/deps/libplatform_upnp-3015d5f7d581eb9a.rlib: crates/platform-upnp/src/lib.rs crates/platform-upnp/src/calib.rs crates/platform-upnp/src/client.rs crates/platform-upnp/src/description.rs crates/platform-upnp/src/device.rs crates/platform-upnp/src/devices.rs crates/platform-upnp/src/gena.rs crates/platform-upnp/src/http.rs crates/platform-upnp/src/soap.rs crates/platform-upnp/src/ssdp.rs

/root/repo/target/release/deps/libplatform_upnp-3015d5f7d581eb9a.rmeta: crates/platform-upnp/src/lib.rs crates/platform-upnp/src/calib.rs crates/platform-upnp/src/client.rs crates/platform-upnp/src/description.rs crates/platform-upnp/src/device.rs crates/platform-upnp/src/devices.rs crates/platform-upnp/src/gena.rs crates/platform-upnp/src/http.rs crates/platform-upnp/src/soap.rs crates/platform-upnp/src/ssdp.rs

crates/platform-upnp/src/lib.rs:
crates/platform-upnp/src/calib.rs:
crates/platform-upnp/src/client.rs:
crates/platform-upnp/src/description.rs:
crates/platform-upnp/src/device.rs:
crates/platform-upnp/src/devices.rs:
crates/platform-upnp/src/gena.rs:
crates/platform-upnp/src/http.rs:
crates/platform-upnp/src/soap.rs:
crates/platform-upnp/src/ssdp.rs:
