/root/repo/target/release/deps/platform_webservices-078b545ecea111bb.d: crates/platform-webservices/src/lib.rs

/root/repo/target/release/deps/libplatform_webservices-078b545ecea111bb.rlib: crates/platform-webservices/src/lib.rs

/root/repo/target/release/deps/libplatform_webservices-078b545ecea111bb.rmeta: crates/platform-webservices/src/lib.rs

crates/platform-webservices/src/lib.rs:
