/root/repo/target/release/deps/platform_motes-881cde0aaf050f12.d: crates/platform-motes/src/lib.rs

/root/repo/target/release/deps/libplatform_motes-881cde0aaf050f12.rlib: crates/platform-motes/src/lib.rs

/root/repo/target/release/deps/libplatform_motes-881cde0aaf050f12.rmeta: crates/platform-motes/src/lib.rs

crates/platform-motes/src/lib.rs:
