/root/repo/target/release/deps/platform_mediabroker-534307e29a1157f3.d: crates/platform-mediabroker/src/lib.rs crates/platform-mediabroker/src/broker.rs crates/platform-mediabroker/src/types.rs

/root/repo/target/release/deps/libplatform_mediabroker-534307e29a1157f3.rlib: crates/platform-mediabroker/src/lib.rs crates/platform-mediabroker/src/broker.rs crates/platform-mediabroker/src/types.rs

/root/repo/target/release/deps/libplatform_mediabroker-534307e29a1157f3.rmeta: crates/platform-mediabroker/src/lib.rs crates/platform-mediabroker/src/broker.rs crates/platform-mediabroker/src/types.rs

crates/platform-mediabroker/src/lib.rs:
crates/platform-mediabroker/src/broker.rs:
crates/platform-mediabroker/src/types.rs:
