/root/repo/target/release/deps/trace_export-4c01a1f3c822db89.d: crates/bench/src/bin/trace_export.rs

/root/repo/target/release/deps/trace_export-4c01a1f3c822db89: crates/bench/src/bin/trace_export.rs

crates/bench/src/bin/trace_export.rs:
