/root/repo/target/release/deps/bench-81d0c43fd7f40a1d.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fixtures.rs crates/bench/src/report.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libbench-81d0c43fd7f40a1d.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fixtures.rs crates/bench/src/report.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libbench-81d0c43fd7f40a1d.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fixtures.rs crates/bench/src/report.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fixtures.rs:
crates/bench/src/report.rs:
crates/bench/src/timing.rs:
