/root/repo/target/release/deps/platform_bluetooth-6c7c3cdf9c49aaee.d: crates/platform-bluetooth/src/lib.rs crates/platform-bluetooth/src/bip.rs crates/platform-bluetooth/src/calib.rs crates/platform-bluetooth/src/device.rs crates/platform-bluetooth/src/hidp.rs crates/platform-bluetooth/src/obex.rs crates/platform-bluetooth/src/sdp.rs

/root/repo/target/release/deps/libplatform_bluetooth-6c7c3cdf9c49aaee.rlib: crates/platform-bluetooth/src/lib.rs crates/platform-bluetooth/src/bip.rs crates/platform-bluetooth/src/calib.rs crates/platform-bluetooth/src/device.rs crates/platform-bluetooth/src/hidp.rs crates/platform-bluetooth/src/obex.rs crates/platform-bluetooth/src/sdp.rs

/root/repo/target/release/deps/libplatform_bluetooth-6c7c3cdf9c49aaee.rmeta: crates/platform-bluetooth/src/lib.rs crates/platform-bluetooth/src/bip.rs crates/platform-bluetooth/src/calib.rs crates/platform-bluetooth/src/device.rs crates/platform-bluetooth/src/hidp.rs crates/platform-bluetooth/src/obex.rs crates/platform-bluetooth/src/sdp.rs

crates/platform-bluetooth/src/lib.rs:
crates/platform-bluetooth/src/bip.rs:
crates/platform-bluetooth/src/calib.rs:
crates/platform-bluetooth/src/device.rs:
crates/platform-bluetooth/src/hidp.rs:
crates/platform-bluetooth/src/obex.rs:
crates/platform-bluetooth/src/sdp.rs:
