/root/repo/target/release/deps/umiddle_usdl-e1dd9580163a59d6.d: crates/umiddle-usdl/src/lib.rs crates/umiddle-usdl/src/builtin.rs crates/umiddle-usdl/src/library.rs crates/umiddle-usdl/src/schema.rs crates/umiddle-usdl/src/xml.rs

/root/repo/target/release/deps/libumiddle_usdl-e1dd9580163a59d6.rlib: crates/umiddle-usdl/src/lib.rs crates/umiddle-usdl/src/builtin.rs crates/umiddle-usdl/src/library.rs crates/umiddle-usdl/src/schema.rs crates/umiddle-usdl/src/xml.rs

/root/repo/target/release/deps/libumiddle_usdl-e1dd9580163a59d6.rmeta: crates/umiddle-usdl/src/lib.rs crates/umiddle-usdl/src/builtin.rs crates/umiddle-usdl/src/library.rs crates/umiddle-usdl/src/schema.rs crates/umiddle-usdl/src/xml.rs

crates/umiddle-usdl/src/lib.rs:
crates/umiddle-usdl/src/builtin.rs:
crates/umiddle-usdl/src/library.rs:
crates/umiddle-usdl/src/schema.rs:
crates/umiddle-usdl/src/xml.rs:
