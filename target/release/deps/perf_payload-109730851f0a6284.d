/root/repo/target/release/deps/perf_payload-109730851f0a6284.d: crates/bench/src/bin/perf_payload.rs

/root/repo/target/release/deps/perf_payload-109730851f0a6284: crates/bench/src/bin/perf_payload.rs

crates/bench/src/bin/perf_payload.rs:
