/root/repo/target/release/deps/experiments-a1c5bcffd68edee9.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-a1c5bcffd68edee9: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
