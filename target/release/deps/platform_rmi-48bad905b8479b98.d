/root/repo/target/release/deps/platform_rmi-48bad905b8479b98.d: crates/platform-rmi/src/lib.rs crates/platform-rmi/src/calib.rs crates/platform-rmi/src/marshal.rs crates/platform-rmi/src/protocol.rs crates/platform-rmi/src/service.rs

/root/repo/target/release/deps/libplatform_rmi-48bad905b8479b98.rlib: crates/platform-rmi/src/lib.rs crates/platform-rmi/src/calib.rs crates/platform-rmi/src/marshal.rs crates/platform-rmi/src/protocol.rs crates/platform-rmi/src/service.rs

/root/repo/target/release/deps/libplatform_rmi-48bad905b8479b98.rmeta: crates/platform-rmi/src/lib.rs crates/platform-rmi/src/calib.rs crates/platform-rmi/src/marshal.rs crates/platform-rmi/src/protocol.rs crates/platform-rmi/src/service.rs

crates/platform-rmi/src/lib.rs:
crates/platform-rmi/src/calib.rs:
crates/platform-rmi/src/marshal.rs:
crates/platform-rmi/src/protocol.rs:
crates/platform-rmi/src/service.rs:
