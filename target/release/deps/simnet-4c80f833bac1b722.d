/root/repo/target/release/deps/simnet-4c80f833bac1b722.d: crates/simnet/src/lib.rs crates/simnet/src/ctx.rs crates/simnet/src/error.rs crates/simnet/src/export.rs crates/simnet/src/medium.rs crates/simnet/src/payload.rs crates/simnet/src/process.rs crates/simnet/src/rng.rs crates/simnet/src/span.rs crates/simnet/src/stream.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs crates/simnet/src/world.rs

/root/repo/target/release/deps/libsimnet-4c80f833bac1b722.rlib: crates/simnet/src/lib.rs crates/simnet/src/ctx.rs crates/simnet/src/error.rs crates/simnet/src/export.rs crates/simnet/src/medium.rs crates/simnet/src/payload.rs crates/simnet/src/process.rs crates/simnet/src/rng.rs crates/simnet/src/span.rs crates/simnet/src/stream.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs crates/simnet/src/world.rs

/root/repo/target/release/deps/libsimnet-4c80f833bac1b722.rmeta: crates/simnet/src/lib.rs crates/simnet/src/ctx.rs crates/simnet/src/error.rs crates/simnet/src/export.rs crates/simnet/src/medium.rs crates/simnet/src/payload.rs crates/simnet/src/process.rs crates/simnet/src/rng.rs crates/simnet/src/span.rs crates/simnet/src/stream.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs crates/simnet/src/world.rs

crates/simnet/src/lib.rs:
crates/simnet/src/ctx.rs:
crates/simnet/src/error.rs:
crates/simnet/src/export.rs:
crates/simnet/src/medium.rs:
crates/simnet/src/payload.rs:
crates/simnet/src/process.rs:
crates/simnet/src/rng.rs:
crates/simnet/src/span.rs:
crates/simnet/src/stream.rs:
crates/simnet/src/time.rs:
crates/simnet/src/trace.rs:
crates/simnet/src/world.rs:
