/root/repo/target/debug/examples/pads_demo-5960e2607beaa8af.d: examples/pads_demo.rs

/root/repo/target/debug/examples/pads_demo-5960e2607beaa8af: examples/pads_demo.rs

examples/pads_demo.rs:
