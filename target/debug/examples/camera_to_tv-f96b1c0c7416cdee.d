/root/repo/target/debug/examples/camera_to_tv-f96b1c0c7416cdee.d: examples/camera_to_tv.rs

/root/repo/target/debug/examples/camera_to_tv-f96b1c0c7416cdee: examples/camera_to_tv.rs

examples/camera_to_tv.rs:
