/root/repo/target/debug/examples/sensor_dashboard-796eb0cb4bc45330.d: examples/sensor_dashboard.rs Cargo.toml

/root/repo/target/debug/examples/libsensor_dashboard-796eb0cb4bc45330.rmeta: examples/sensor_dashboard.rs Cargo.toml

examples/sensor_dashboard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
