/root/repo/target/debug/examples/camera_to_tv-e64468158f1bbe5c.d: examples/camera_to_tv.rs Cargo.toml

/root/repo/target/debug/examples/libcamera_to_tv-e64468158f1bbe5c.rmeta: examples/camera_to_tv.rs Cargo.toml

examples/camera_to_tv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
