/root/repo/target/debug/examples/g2ui_atlas-02da5ac801b98d5d.d: examples/g2ui_atlas.rs

/root/repo/target/debug/examples/g2ui_atlas-02da5ac801b98d5d: examples/g2ui_atlas.rs

examples/g2ui_atlas.rs:
