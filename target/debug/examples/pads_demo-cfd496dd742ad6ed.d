/root/repo/target/debug/examples/pads_demo-cfd496dd742ad6ed.d: examples/pads_demo.rs Cargo.toml

/root/repo/target/debug/examples/libpads_demo-cfd496dd742ad6ed.rmeta: examples/pads_demo.rs Cargo.toml

examples/pads_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
