/root/repo/target/debug/examples/g2ui_atlas-65f627d88eca220e.d: examples/g2ui_atlas.rs Cargo.toml

/root/repo/target/debug/examples/libg2ui_atlas-65f627d88eca220e.rmeta: examples/g2ui_atlas.rs Cargo.toml

examples/g2ui_atlas.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
