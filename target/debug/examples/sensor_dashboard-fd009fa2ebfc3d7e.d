/root/repo/target/debug/examples/sensor_dashboard-fd009fa2ebfc3d7e.d: examples/sensor_dashboard.rs

/root/repo/target/debug/examples/sensor_dashboard-fd009fa2ebfc3d7e: examples/sensor_dashboard.rs

examples/sensor_dashboard.rs:
