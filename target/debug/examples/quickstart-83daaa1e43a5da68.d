/root/repo/target/debug/examples/quickstart-83daaa1e43a5da68.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-83daaa1e43a5da68: examples/quickstart.rs

examples/quickstart.rs:
