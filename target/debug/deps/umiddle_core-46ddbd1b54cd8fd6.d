/root/repo/target/debug/deps/umiddle_core-46ddbd1b54cd8fd6.d: crates/umiddle-core/src/lib.rs crates/umiddle-core/src/api.rs crates/umiddle-core/src/design_space.rs crates/umiddle-core/src/directory.rs crates/umiddle-core/src/error.rs crates/umiddle-core/src/id.rs crates/umiddle-core/src/message.rs crates/umiddle-core/src/mime.rs crates/umiddle-core/src/profile.rs crates/umiddle-core/src/qos.rs crates/umiddle-core/src/query.rs crates/umiddle-core/src/runtime.rs crates/umiddle-core/src/shape.rs crates/umiddle-core/src/wire.rs

/root/repo/target/debug/deps/libumiddle_core-46ddbd1b54cd8fd6.rlib: crates/umiddle-core/src/lib.rs crates/umiddle-core/src/api.rs crates/umiddle-core/src/design_space.rs crates/umiddle-core/src/directory.rs crates/umiddle-core/src/error.rs crates/umiddle-core/src/id.rs crates/umiddle-core/src/message.rs crates/umiddle-core/src/mime.rs crates/umiddle-core/src/profile.rs crates/umiddle-core/src/qos.rs crates/umiddle-core/src/query.rs crates/umiddle-core/src/runtime.rs crates/umiddle-core/src/shape.rs crates/umiddle-core/src/wire.rs

/root/repo/target/debug/deps/libumiddle_core-46ddbd1b54cd8fd6.rmeta: crates/umiddle-core/src/lib.rs crates/umiddle-core/src/api.rs crates/umiddle-core/src/design_space.rs crates/umiddle-core/src/directory.rs crates/umiddle-core/src/error.rs crates/umiddle-core/src/id.rs crates/umiddle-core/src/message.rs crates/umiddle-core/src/mime.rs crates/umiddle-core/src/profile.rs crates/umiddle-core/src/qos.rs crates/umiddle-core/src/query.rs crates/umiddle-core/src/runtime.rs crates/umiddle-core/src/shape.rs crates/umiddle-core/src/wire.rs

crates/umiddle-core/src/lib.rs:
crates/umiddle-core/src/api.rs:
crates/umiddle-core/src/design_space.rs:
crates/umiddle-core/src/directory.rs:
crates/umiddle-core/src/error.rs:
crates/umiddle-core/src/id.rs:
crates/umiddle-core/src/message.rs:
crates/umiddle-core/src/mime.rs:
crates/umiddle-core/src/profile.rs:
crates/umiddle-core/src/qos.rs:
crates/umiddle-core/src/query.rs:
crates/umiddle-core/src/runtime.rs:
crates/umiddle-core/src/shape.rs:
crates/umiddle-core/src/wire.rs:
