/root/repo/target/debug/deps/trace_export-09f93195a304cf53.d: crates/bench/src/bin/trace_export.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_export-09f93195a304cf53.rmeta: crates/bench/src/bin/trace_export.rs Cargo.toml

crates/bench/src/bin/trace_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
