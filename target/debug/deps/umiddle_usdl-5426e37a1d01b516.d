/root/repo/target/debug/deps/umiddle_usdl-5426e37a1d01b516.d: crates/umiddle-usdl/src/lib.rs crates/umiddle-usdl/src/builtin.rs crates/umiddle-usdl/src/library.rs crates/umiddle-usdl/src/schema.rs crates/umiddle-usdl/src/xml.rs

/root/repo/target/debug/deps/libumiddle_usdl-5426e37a1d01b516.rlib: crates/umiddle-usdl/src/lib.rs crates/umiddle-usdl/src/builtin.rs crates/umiddle-usdl/src/library.rs crates/umiddle-usdl/src/schema.rs crates/umiddle-usdl/src/xml.rs

/root/repo/target/debug/deps/libumiddle_usdl-5426e37a1d01b516.rmeta: crates/umiddle-usdl/src/lib.rs crates/umiddle-usdl/src/builtin.rs crates/umiddle-usdl/src/library.rs crates/umiddle-usdl/src/schema.rs crates/umiddle-usdl/src/xml.rs

crates/umiddle-usdl/src/lib.rs:
crates/umiddle-usdl/src/builtin.rs:
crates/umiddle-usdl/src/library.rs:
crates/umiddle-usdl/src/schema.rs:
crates/umiddle-usdl/src/xml.rs:
