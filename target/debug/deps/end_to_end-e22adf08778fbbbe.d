/root/repo/target/debug/deps/end_to_end-e22adf08778fbbbe.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-e22adf08778fbbbe: tests/end_to_end.rs

tests/end_to_end.rs:
