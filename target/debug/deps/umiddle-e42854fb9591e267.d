/root/repo/target/debug/deps/umiddle-e42854fb9591e267.d: src/lib.rs src/util.rs

/root/repo/target/debug/deps/libumiddle-e42854fb9591e267.rlib: src/lib.rs src/util.rs

/root/repo/target/debug/deps/libumiddle-e42854fb9591e267.rmeta: src/lib.rs src/util.rs

src/lib.rs:
src/util.rs:
