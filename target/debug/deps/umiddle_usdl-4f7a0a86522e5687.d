/root/repo/target/debug/deps/umiddle_usdl-4f7a0a86522e5687.d: crates/umiddle-usdl/src/lib.rs crates/umiddle-usdl/src/builtin.rs crates/umiddle-usdl/src/library.rs crates/umiddle-usdl/src/schema.rs crates/umiddle-usdl/src/xml.rs Cargo.toml

/root/repo/target/debug/deps/libumiddle_usdl-4f7a0a86522e5687.rmeta: crates/umiddle-usdl/src/lib.rs crates/umiddle-usdl/src/builtin.rs crates/umiddle-usdl/src/library.rs crates/umiddle-usdl/src/schema.rs crates/umiddle-usdl/src/xml.rs Cargo.toml

crates/umiddle-usdl/src/lib.rs:
crates/umiddle-usdl/src/builtin.rs:
crates/umiddle-usdl/src/library.rs:
crates/umiddle-usdl/src/schema.rs:
crates/umiddle-usdl/src/xml.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
