/root/repo/target/debug/deps/platform_motes-dcdfcac1999796c6.d: crates/platform-motes/src/lib.rs

/root/repo/target/debug/deps/platform_motes-dcdfcac1999796c6: crates/platform-motes/src/lib.rs

crates/platform-motes/src/lib.rs:
