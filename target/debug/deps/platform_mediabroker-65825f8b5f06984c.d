/root/repo/target/debug/deps/platform_mediabroker-65825f8b5f06984c.d: crates/platform-mediabroker/src/lib.rs crates/platform-mediabroker/src/broker.rs crates/platform-mediabroker/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libplatform_mediabroker-65825f8b5f06984c.rmeta: crates/platform-mediabroker/src/lib.rs crates/platform-mediabroker/src/broker.rs crates/platform-mediabroker/src/types.rs Cargo.toml

crates/platform-mediabroker/src/lib.rs:
crates/platform-mediabroker/src/broker.rs:
crates/platform-mediabroker/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
