/root/repo/target/debug/deps/platform_rmi-c81b217084f5fc41.d: crates/platform-rmi/src/lib.rs crates/platform-rmi/src/calib.rs crates/platform-rmi/src/marshal.rs crates/platform-rmi/src/protocol.rs crates/platform-rmi/src/service.rs

/root/repo/target/debug/deps/platform_rmi-c81b217084f5fc41: crates/platform-rmi/src/lib.rs crates/platform-rmi/src/calib.rs crates/platform-rmi/src/marshal.rs crates/platform-rmi/src/protocol.rs crates/platform-rmi/src/service.rs

crates/platform-rmi/src/lib.rs:
crates/platform-rmi/src/calib.rs:
crates/platform-rmi/src/marshal.rs:
crates/platform-rmi/src/protocol.rs:
crates/platform-rmi/src/service.rs:
