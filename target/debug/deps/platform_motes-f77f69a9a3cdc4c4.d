/root/repo/target/debug/deps/platform_motes-f77f69a9a3cdc4c4.d: crates/platform-motes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libplatform_motes-f77f69a9a3cdc4c4.rmeta: crates/platform-motes/src/lib.rs Cargo.toml

crates/platform-motes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
