/root/repo/target/debug/deps/platform_upnp-cd636d6335eba2d9.d: crates/platform-upnp/src/lib.rs crates/platform-upnp/src/calib.rs crates/platform-upnp/src/client.rs crates/platform-upnp/src/description.rs crates/platform-upnp/src/device.rs crates/platform-upnp/src/devices.rs crates/platform-upnp/src/gena.rs crates/platform-upnp/src/http.rs crates/platform-upnp/src/soap.rs crates/platform-upnp/src/ssdp.rs Cargo.toml

/root/repo/target/debug/deps/libplatform_upnp-cd636d6335eba2d9.rmeta: crates/platform-upnp/src/lib.rs crates/platform-upnp/src/calib.rs crates/platform-upnp/src/client.rs crates/platform-upnp/src/description.rs crates/platform-upnp/src/device.rs crates/platform-upnp/src/devices.rs crates/platform-upnp/src/gena.rs crates/platform-upnp/src/http.rs crates/platform-upnp/src/soap.rs crates/platform-upnp/src/ssdp.rs Cargo.toml

crates/platform-upnp/src/lib.rs:
crates/platform-upnp/src/calib.rs:
crates/platform-upnp/src/client.rs:
crates/platform-upnp/src/description.rs:
crates/platform-upnp/src/device.rs:
crates/platform-upnp/src/devices.rs:
crates/platform-upnp/src/gena.rs:
crates/platform-upnp/src/http.rs:
crates/platform-upnp/src/soap.rs:
crates/platform-upnp/src/ssdp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
