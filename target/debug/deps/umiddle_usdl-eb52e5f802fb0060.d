/root/repo/target/debug/deps/umiddle_usdl-eb52e5f802fb0060.d: crates/umiddle-usdl/src/lib.rs crates/umiddle-usdl/src/builtin.rs crates/umiddle-usdl/src/library.rs crates/umiddle-usdl/src/schema.rs crates/umiddle-usdl/src/xml.rs Cargo.toml

/root/repo/target/debug/deps/libumiddle_usdl-eb52e5f802fb0060.rmeta: crates/umiddle-usdl/src/lib.rs crates/umiddle-usdl/src/builtin.rs crates/umiddle-usdl/src/library.rs crates/umiddle-usdl/src/schema.rs crates/umiddle-usdl/src/xml.rs Cargo.toml

crates/umiddle-usdl/src/lib.rs:
crates/umiddle-usdl/src/builtin.rs:
crates/umiddle-usdl/src/library.rs:
crates/umiddle-usdl/src/schema.rs:
crates/umiddle-usdl/src/xml.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
