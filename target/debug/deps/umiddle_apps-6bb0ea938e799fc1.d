/root/repo/target/debug/deps/umiddle_apps-6bb0ea938e799fc1.d: crates/umiddle-apps/src/lib.rs crates/umiddle-apps/src/g2ui.rs crates/umiddle-apps/src/pads.rs

/root/repo/target/debug/deps/umiddle_apps-6bb0ea938e799fc1: crates/umiddle-apps/src/lib.rs crates/umiddle-apps/src/g2ui.rs crates/umiddle-apps/src/pads.rs

crates/umiddle-apps/src/lib.rs:
crates/umiddle-apps/src/g2ui.rs:
crates/umiddle-apps/src/pads.rs:
