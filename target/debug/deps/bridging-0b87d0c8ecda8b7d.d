/root/repo/target/debug/deps/bridging-0b87d0c8ecda8b7d.d: crates/umiddle-bridges/tests/bridging.rs

/root/repo/target/debug/deps/bridging-0b87d0c8ecda8b7d: crates/umiddle-bridges/tests/bridging.rs

crates/umiddle-bridges/tests/bridging.rs:
