/root/repo/target/debug/deps/observability-7fdf6d6f0fff782e.d: tests/observability.rs

/root/repo/target/debug/deps/observability-7fdf6d6f0fff782e: tests/observability.rs

tests/observability.rs:
