/root/repo/target/debug/deps/umiddle-a700ed131bdd4845.d: src/lib.rs src/util.rs

/root/repo/target/debug/deps/umiddle-a700ed131bdd4845: src/lib.rs src/util.rs

src/lib.rs:
src/util.rs:
