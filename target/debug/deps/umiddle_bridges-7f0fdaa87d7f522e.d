/root/repo/target/debug/deps/umiddle_bridges-7f0fdaa87d7f522e.d: crates/umiddle-bridges/src/lib.rs crates/umiddle-bridges/src/bluetooth.rs crates/umiddle-bridges/src/calib.rs crates/umiddle-bridges/src/direct.rs crates/umiddle-bridges/src/mediabroker.rs crates/umiddle-bridges/src/motes.rs crates/umiddle-bridges/src/native.rs crates/umiddle-bridges/src/obs.rs crates/umiddle-bridges/src/rmi.rs crates/umiddle-bridges/src/scatter.rs crates/umiddle-bridges/src/upnp.rs crates/umiddle-bridges/src/webservices.rs

/root/repo/target/debug/deps/umiddle_bridges-7f0fdaa87d7f522e: crates/umiddle-bridges/src/lib.rs crates/umiddle-bridges/src/bluetooth.rs crates/umiddle-bridges/src/calib.rs crates/umiddle-bridges/src/direct.rs crates/umiddle-bridges/src/mediabroker.rs crates/umiddle-bridges/src/motes.rs crates/umiddle-bridges/src/native.rs crates/umiddle-bridges/src/obs.rs crates/umiddle-bridges/src/rmi.rs crates/umiddle-bridges/src/scatter.rs crates/umiddle-bridges/src/upnp.rs crates/umiddle-bridges/src/webservices.rs

crates/umiddle-bridges/src/lib.rs:
crates/umiddle-bridges/src/bluetooth.rs:
crates/umiddle-bridges/src/calib.rs:
crates/umiddle-bridges/src/direct.rs:
crates/umiddle-bridges/src/mediabroker.rs:
crates/umiddle-bridges/src/motes.rs:
crates/umiddle-bridges/src/native.rs:
crates/umiddle-bridges/src/obs.rs:
crates/umiddle-bridges/src/rmi.rs:
crates/umiddle-bridges/src/scatter.rs:
crates/umiddle-bridges/src/upnp.rs:
crates/umiddle-bridges/src/webservices.rs:
