/root/repo/target/debug/deps/properties-f0d38cdb00eb61c0.d: crates/simnet/tests/properties.rs

/root/repo/target/debug/deps/properties-f0d38cdb00eb61c0: crates/simnet/tests/properties.rs

crates/simnet/tests/properties.rs:
