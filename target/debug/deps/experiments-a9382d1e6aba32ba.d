/root/repo/target/debug/deps/experiments-a9382d1e6aba32ba.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-a9382d1e6aba32ba.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
