/root/repo/target/debug/deps/platform_rmi-6ebfe6a1c23dadab.d: crates/platform-rmi/src/lib.rs crates/platform-rmi/src/calib.rs crates/platform-rmi/src/marshal.rs crates/platform-rmi/src/protocol.rs crates/platform-rmi/src/service.rs Cargo.toml

/root/repo/target/debug/deps/libplatform_rmi-6ebfe6a1c23dadab.rmeta: crates/platform-rmi/src/lib.rs crates/platform-rmi/src/calib.rs crates/platform-rmi/src/marshal.rs crates/platform-rmi/src/protocol.rs crates/platform-rmi/src/service.rs Cargo.toml

crates/platform-rmi/src/lib.rs:
crates/platform-rmi/src/calib.rs:
crates/platform-rmi/src/marshal.rs:
crates/platform-rmi/src/protocol.rs:
crates/platform-rmi/src/service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
