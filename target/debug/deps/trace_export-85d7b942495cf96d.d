/root/repo/target/debug/deps/trace_export-85d7b942495cf96d.d: crates/bench/src/bin/trace_export.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_export-85d7b942495cf96d.rmeta: crates/bench/src/bin/trace_export.rs Cargo.toml

crates/bench/src/bin/trace_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
