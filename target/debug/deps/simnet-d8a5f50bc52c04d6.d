/root/repo/target/debug/deps/simnet-d8a5f50bc52c04d6.d: crates/simnet/src/lib.rs crates/simnet/src/ctx.rs crates/simnet/src/error.rs crates/simnet/src/export.rs crates/simnet/src/medium.rs crates/simnet/src/payload.rs crates/simnet/src/process.rs crates/simnet/src/rng.rs crates/simnet/src/span.rs crates/simnet/src/stream.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs crates/simnet/src/world.rs

/root/repo/target/debug/deps/libsimnet-d8a5f50bc52c04d6.rlib: crates/simnet/src/lib.rs crates/simnet/src/ctx.rs crates/simnet/src/error.rs crates/simnet/src/export.rs crates/simnet/src/medium.rs crates/simnet/src/payload.rs crates/simnet/src/process.rs crates/simnet/src/rng.rs crates/simnet/src/span.rs crates/simnet/src/stream.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs crates/simnet/src/world.rs

/root/repo/target/debug/deps/libsimnet-d8a5f50bc52c04d6.rmeta: crates/simnet/src/lib.rs crates/simnet/src/ctx.rs crates/simnet/src/error.rs crates/simnet/src/export.rs crates/simnet/src/medium.rs crates/simnet/src/payload.rs crates/simnet/src/process.rs crates/simnet/src/rng.rs crates/simnet/src/span.rs crates/simnet/src/stream.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs crates/simnet/src/world.rs

crates/simnet/src/lib.rs:
crates/simnet/src/ctx.rs:
crates/simnet/src/error.rs:
crates/simnet/src/export.rs:
crates/simnet/src/medium.rs:
crates/simnet/src/payload.rs:
crates/simnet/src/process.rs:
crates/simnet/src/rng.rs:
crates/simnet/src/span.rs:
crates/simnet/src/stream.rs:
crates/simnet/src/time.rs:
crates/simnet/src/trace.rs:
crates/simnet/src/world.rs:
