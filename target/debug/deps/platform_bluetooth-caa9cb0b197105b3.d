/root/repo/target/debug/deps/platform_bluetooth-caa9cb0b197105b3.d: crates/platform-bluetooth/src/lib.rs crates/platform-bluetooth/src/bip.rs crates/platform-bluetooth/src/calib.rs crates/platform-bluetooth/src/device.rs crates/platform-bluetooth/src/hidp.rs crates/platform-bluetooth/src/obex.rs crates/platform-bluetooth/src/sdp.rs Cargo.toml

/root/repo/target/debug/deps/libplatform_bluetooth-caa9cb0b197105b3.rmeta: crates/platform-bluetooth/src/lib.rs crates/platform-bluetooth/src/bip.rs crates/platform-bluetooth/src/calib.rs crates/platform-bluetooth/src/device.rs crates/platform-bluetooth/src/hidp.rs crates/platform-bluetooth/src/obex.rs crates/platform-bluetooth/src/sdp.rs Cargo.toml

crates/platform-bluetooth/src/lib.rs:
crates/platform-bluetooth/src/bip.rs:
crates/platform-bluetooth/src/calib.rs:
crates/platform-bluetooth/src/device.rs:
crates/platform-bluetooth/src/hidp.rs:
crates/platform-bluetooth/src/obex.rs:
crates/platform-bluetooth/src/sdp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
