/root/repo/target/debug/deps/simnet-cde98ede9fdd4eae.d: crates/simnet/src/lib.rs crates/simnet/src/ctx.rs crates/simnet/src/error.rs crates/simnet/src/export.rs crates/simnet/src/medium.rs crates/simnet/src/payload.rs crates/simnet/src/process.rs crates/simnet/src/rng.rs crates/simnet/src/span.rs crates/simnet/src/stream.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs crates/simnet/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libsimnet-cde98ede9fdd4eae.rmeta: crates/simnet/src/lib.rs crates/simnet/src/ctx.rs crates/simnet/src/error.rs crates/simnet/src/export.rs crates/simnet/src/medium.rs crates/simnet/src/payload.rs crates/simnet/src/process.rs crates/simnet/src/rng.rs crates/simnet/src/span.rs crates/simnet/src/stream.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs crates/simnet/src/world.rs Cargo.toml

crates/simnet/src/lib.rs:
crates/simnet/src/ctx.rs:
crates/simnet/src/error.rs:
crates/simnet/src/export.rs:
crates/simnet/src/medium.rs:
crates/simnet/src/payload.rs:
crates/simnet/src/process.rs:
crates/simnet/src/rng.rs:
crates/simnet/src/span.rs:
crates/simnet/src/stream.rs:
crates/simnet/src/time.rs:
crates/simnet/src/trace.rs:
crates/simnet/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
