/root/repo/target/debug/deps/umiddle-7db622b279bd980b.d: src/lib.rs src/util.rs Cargo.toml

/root/repo/target/debug/deps/libumiddle-7db622b279bd980b.rmeta: src/lib.rs src/util.rs Cargo.toml

src/lib.rs:
src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
