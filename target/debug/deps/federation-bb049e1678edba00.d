/root/repo/target/debug/deps/federation-bb049e1678edba00.d: crates/umiddle-core/tests/federation.rs Cargo.toml

/root/repo/target/debug/deps/libfederation-bb049e1678edba00.rmeta: crates/umiddle-core/tests/federation.rs Cargo.toml

crates/umiddle-core/tests/federation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
