/root/repo/target/debug/deps/properties-fed3c09fc00ddf9a.d: crates/umiddle-usdl/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-fed3c09fc00ddf9a.rmeta: crates/umiddle-usdl/tests/properties.rs Cargo.toml

crates/umiddle-usdl/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
