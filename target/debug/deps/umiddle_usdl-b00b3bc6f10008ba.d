/root/repo/target/debug/deps/umiddle_usdl-b00b3bc6f10008ba.d: crates/umiddle-usdl/src/lib.rs crates/umiddle-usdl/src/builtin.rs crates/umiddle-usdl/src/library.rs crates/umiddle-usdl/src/schema.rs crates/umiddle-usdl/src/xml.rs

/root/repo/target/debug/deps/umiddle_usdl-b00b3bc6f10008ba: crates/umiddle-usdl/src/lib.rs crates/umiddle-usdl/src/builtin.rs crates/umiddle-usdl/src/library.rs crates/umiddle-usdl/src/schema.rs crates/umiddle-usdl/src/xml.rs

crates/umiddle-usdl/src/lib.rs:
crates/umiddle-usdl/src/builtin.rs:
crates/umiddle-usdl/src/library.rs:
crates/umiddle-usdl/src/schema.rs:
crates/umiddle-usdl/src/xml.rs:
