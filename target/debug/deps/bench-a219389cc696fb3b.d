/root/repo/target/debug/deps/bench-a219389cc696fb3b.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fixtures.rs crates/bench/src/report.rs crates/bench/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libbench-a219389cc696fb3b.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fixtures.rs crates/bench/src/report.rs crates/bench/src/timing.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fixtures.rs:
crates/bench/src/report.rs:
crates/bench/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
