/root/repo/target/debug/deps/umiddle_core-94d56369a5a1c42f.d: crates/umiddle-core/src/lib.rs crates/umiddle-core/src/api.rs crates/umiddle-core/src/design_space.rs crates/umiddle-core/src/directory.rs crates/umiddle-core/src/error.rs crates/umiddle-core/src/id.rs crates/umiddle-core/src/message.rs crates/umiddle-core/src/mime.rs crates/umiddle-core/src/profile.rs crates/umiddle-core/src/qos.rs crates/umiddle-core/src/query.rs crates/umiddle-core/src/runtime.rs crates/umiddle-core/src/shape.rs crates/umiddle-core/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libumiddle_core-94d56369a5a1c42f.rmeta: crates/umiddle-core/src/lib.rs crates/umiddle-core/src/api.rs crates/umiddle-core/src/design_space.rs crates/umiddle-core/src/directory.rs crates/umiddle-core/src/error.rs crates/umiddle-core/src/id.rs crates/umiddle-core/src/message.rs crates/umiddle-core/src/mime.rs crates/umiddle-core/src/profile.rs crates/umiddle-core/src/qos.rs crates/umiddle-core/src/query.rs crates/umiddle-core/src/runtime.rs crates/umiddle-core/src/shape.rs crates/umiddle-core/src/wire.rs Cargo.toml

crates/umiddle-core/src/lib.rs:
crates/umiddle-core/src/api.rs:
crates/umiddle-core/src/design_space.rs:
crates/umiddle-core/src/directory.rs:
crates/umiddle-core/src/error.rs:
crates/umiddle-core/src/id.rs:
crates/umiddle-core/src/message.rs:
crates/umiddle-core/src/mime.rs:
crates/umiddle-core/src/profile.rs:
crates/umiddle-core/src/qos.rs:
crates/umiddle-core/src/query.rs:
crates/umiddle-core/src/runtime.rs:
crates/umiddle-core/src/shape.rs:
crates/umiddle-core/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
