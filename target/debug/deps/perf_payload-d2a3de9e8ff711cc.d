/root/repo/target/debug/deps/perf_payload-d2a3de9e8ff711cc.d: crates/bench/src/bin/perf_payload.rs Cargo.toml

/root/repo/target/debug/deps/libperf_payload-d2a3de9e8ff711cc.rmeta: crates/bench/src/bin/perf_payload.rs Cargo.toml

crates/bench/src/bin/perf_payload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
