/root/repo/target/debug/deps/platform_mediabroker-9138d1b56c291f71.d: crates/platform-mediabroker/src/lib.rs crates/platform-mediabroker/src/broker.rs crates/platform-mediabroker/src/types.rs

/root/repo/target/debug/deps/libplatform_mediabroker-9138d1b56c291f71.rlib: crates/platform-mediabroker/src/lib.rs crates/platform-mediabroker/src/broker.rs crates/platform-mediabroker/src/types.rs

/root/repo/target/debug/deps/libplatform_mediabroker-9138d1b56c291f71.rmeta: crates/platform-mediabroker/src/lib.rs crates/platform-mediabroker/src/broker.rs crates/platform-mediabroker/src/types.rs

crates/platform-mediabroker/src/lib.rs:
crates/platform-mediabroker/src/broker.rs:
crates/platform-mediabroker/src/types.rs:
