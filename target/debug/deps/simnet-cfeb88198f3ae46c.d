/root/repo/target/debug/deps/simnet-cfeb88198f3ae46c.d: crates/simnet/src/lib.rs crates/simnet/src/ctx.rs crates/simnet/src/error.rs crates/simnet/src/export.rs crates/simnet/src/medium.rs crates/simnet/src/payload.rs crates/simnet/src/process.rs crates/simnet/src/rng.rs crates/simnet/src/span.rs crates/simnet/src/stream.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs crates/simnet/src/world.rs

/root/repo/target/debug/deps/simnet-cfeb88198f3ae46c: crates/simnet/src/lib.rs crates/simnet/src/ctx.rs crates/simnet/src/error.rs crates/simnet/src/export.rs crates/simnet/src/medium.rs crates/simnet/src/payload.rs crates/simnet/src/process.rs crates/simnet/src/rng.rs crates/simnet/src/span.rs crates/simnet/src/stream.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs crates/simnet/src/world.rs

crates/simnet/src/lib.rs:
crates/simnet/src/ctx.rs:
crates/simnet/src/error.rs:
crates/simnet/src/export.rs:
crates/simnet/src/medium.rs:
crates/simnet/src/payload.rs:
crates/simnet/src/process.rs:
crates/simnet/src/rng.rs:
crates/simnet/src/span.rs:
crates/simnet/src/stream.rs:
crates/simnet/src/time.rs:
crates/simnet/src/trace.rs:
crates/simnet/src/world.rs:
