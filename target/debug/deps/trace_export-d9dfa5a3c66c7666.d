/root/repo/target/debug/deps/trace_export-d9dfa5a3c66c7666.d: crates/bench/src/bin/trace_export.rs

/root/repo/target/debug/deps/trace_export-d9dfa5a3c66c7666: crates/bench/src/bin/trace_export.rs

crates/bench/src/bin/trace_export.rs:
