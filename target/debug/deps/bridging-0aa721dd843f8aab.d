/root/repo/target/debug/deps/bridging-0aa721dd843f8aab.d: crates/umiddle-bridges/tests/bridging.rs Cargo.toml

/root/repo/target/debug/deps/libbridging-0aa721dd843f8aab.rmeta: crates/umiddle-bridges/tests/bridging.rs Cargo.toml

crates/umiddle-bridges/tests/bridging.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
