/root/repo/target/debug/deps/platform_webservices-466b008de4e8dc7b.d: crates/platform-webservices/src/lib.rs

/root/repo/target/debug/deps/platform_webservices-466b008de4e8dc7b: crates/platform-webservices/src/lib.rs

crates/platform-webservices/src/lib.rs:
