/root/repo/target/debug/deps/platform_motes-078ad47f1ad0080c.d: crates/platform-motes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libplatform_motes-078ad47f1ad0080c.rmeta: crates/platform-motes/src/lib.rs Cargo.toml

crates/platform-motes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
