/root/repo/target/debug/deps/properties-8899601dd9005016.d: crates/umiddle-usdl/tests/properties.rs

/root/repo/target/debug/deps/properties-8899601dd9005016: crates/umiddle-usdl/tests/properties.rs

crates/umiddle-usdl/tests/properties.rs:
