/root/repo/target/debug/deps/platform_bluetooth-ed5025ac57ca73f1.d: crates/platform-bluetooth/src/lib.rs crates/platform-bluetooth/src/bip.rs crates/platform-bluetooth/src/calib.rs crates/platform-bluetooth/src/device.rs crates/platform-bluetooth/src/hidp.rs crates/platform-bluetooth/src/obex.rs crates/platform-bluetooth/src/sdp.rs

/root/repo/target/debug/deps/platform_bluetooth-ed5025ac57ca73f1: crates/platform-bluetooth/src/lib.rs crates/platform-bluetooth/src/bip.rs crates/platform-bluetooth/src/calib.rs crates/platform-bluetooth/src/device.rs crates/platform-bluetooth/src/hidp.rs crates/platform-bluetooth/src/obex.rs crates/platform-bluetooth/src/sdp.rs

crates/platform-bluetooth/src/lib.rs:
crates/platform-bluetooth/src/bip.rs:
crates/platform-bluetooth/src/calib.rs:
crates/platform-bluetooth/src/device.rs:
crates/platform-bluetooth/src/hidp.rs:
crates/platform-bluetooth/src/obex.rs:
crates/platform-bluetooth/src/sdp.rs:
