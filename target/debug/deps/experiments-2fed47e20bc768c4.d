/root/repo/target/debug/deps/experiments-2fed47e20bc768c4.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-2fed47e20bc768c4: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
