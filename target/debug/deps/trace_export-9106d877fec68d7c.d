/root/repo/target/debug/deps/trace_export-9106d877fec68d7c.d: crates/bench/src/bin/trace_export.rs

/root/repo/target/debug/deps/trace_export-9106d877fec68d7c: crates/bench/src/bin/trace_export.rs

crates/bench/src/bin/trace_export.rs:
