/root/repo/target/debug/deps/simnet-406e8df52bc3466b.d: crates/simnet/src/lib.rs crates/simnet/src/ctx.rs crates/simnet/src/error.rs crates/simnet/src/export.rs crates/simnet/src/medium.rs crates/simnet/src/payload.rs crates/simnet/src/process.rs crates/simnet/src/rng.rs crates/simnet/src/span.rs crates/simnet/src/stream.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs crates/simnet/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libsimnet-406e8df52bc3466b.rmeta: crates/simnet/src/lib.rs crates/simnet/src/ctx.rs crates/simnet/src/error.rs crates/simnet/src/export.rs crates/simnet/src/medium.rs crates/simnet/src/payload.rs crates/simnet/src/process.rs crates/simnet/src/rng.rs crates/simnet/src/span.rs crates/simnet/src/stream.rs crates/simnet/src/time.rs crates/simnet/src/trace.rs crates/simnet/src/world.rs Cargo.toml

crates/simnet/src/lib.rs:
crates/simnet/src/ctx.rs:
crates/simnet/src/error.rs:
crates/simnet/src/export.rs:
crates/simnet/src/medium.rs:
crates/simnet/src/payload.rs:
crates/simnet/src/process.rs:
crates/simnet/src/rng.rs:
crates/simnet/src/span.rs:
crates/simnet/src/stream.rs:
crates/simnet/src/time.rs:
crates/simnet/src/trace.rs:
crates/simnet/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
