/root/repo/target/debug/deps/platform_upnp-ab741071e7ca5ac1.d: crates/platform-upnp/src/lib.rs crates/platform-upnp/src/calib.rs crates/platform-upnp/src/client.rs crates/platform-upnp/src/description.rs crates/platform-upnp/src/device.rs crates/platform-upnp/src/devices.rs crates/platform-upnp/src/gena.rs crates/platform-upnp/src/http.rs crates/platform-upnp/src/soap.rs crates/platform-upnp/src/ssdp.rs

/root/repo/target/debug/deps/platform_upnp-ab741071e7ca5ac1: crates/platform-upnp/src/lib.rs crates/platform-upnp/src/calib.rs crates/platform-upnp/src/client.rs crates/platform-upnp/src/description.rs crates/platform-upnp/src/device.rs crates/platform-upnp/src/devices.rs crates/platform-upnp/src/gena.rs crates/platform-upnp/src/http.rs crates/platform-upnp/src/soap.rs crates/platform-upnp/src/ssdp.rs

crates/platform-upnp/src/lib.rs:
crates/platform-upnp/src/calib.rs:
crates/platform-upnp/src/client.rs:
crates/platform-upnp/src/description.rs:
crates/platform-upnp/src/device.rs:
crates/platform-upnp/src/devices.rs:
crates/platform-upnp/src/gena.rs:
crates/platform-upnp/src/http.rs:
crates/platform-upnp/src/soap.rs:
crates/platform-upnp/src/ssdp.rs:
