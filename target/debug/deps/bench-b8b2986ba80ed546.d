/root/repo/target/debug/deps/bench-b8b2986ba80ed546.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fixtures.rs crates/bench/src/report.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libbench-b8b2986ba80ed546.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fixtures.rs crates/bench/src/report.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libbench-b8b2986ba80ed546.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fixtures.rs crates/bench/src/report.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fixtures.rs:
crates/bench/src/report.rs:
crates/bench/src/timing.rs:
