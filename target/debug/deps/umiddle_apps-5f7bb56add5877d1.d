/root/repo/target/debug/deps/umiddle_apps-5f7bb56add5877d1.d: crates/umiddle-apps/src/lib.rs crates/umiddle-apps/src/g2ui.rs crates/umiddle-apps/src/pads.rs Cargo.toml

/root/repo/target/debug/deps/libumiddle_apps-5f7bb56add5877d1.rmeta: crates/umiddle-apps/src/lib.rs crates/umiddle-apps/src/g2ui.rs crates/umiddle-apps/src/pads.rs Cargo.toml

crates/umiddle-apps/src/lib.rs:
crates/umiddle-apps/src/g2ui.rs:
crates/umiddle-apps/src/pads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
