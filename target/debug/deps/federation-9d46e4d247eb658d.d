/root/repo/target/debug/deps/federation-9d46e4d247eb658d.d: crates/umiddle-core/tests/federation.rs

/root/repo/target/debug/deps/federation-9d46e4d247eb658d: crates/umiddle-core/tests/federation.rs

crates/umiddle-core/tests/federation.rs:
