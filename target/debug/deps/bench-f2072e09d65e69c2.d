/root/repo/target/debug/deps/bench-f2072e09d65e69c2.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fixtures.rs crates/bench/src/report.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/bench-f2072e09d65e69c2: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fixtures.rs crates/bench/src/report.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fixtures.rs:
crates/bench/src/report.rs:
crates/bench/src/timing.rs:
