/root/repo/target/debug/deps/platform_upnp-5e9a7f348a073235.d: crates/platform-upnp/src/lib.rs crates/platform-upnp/src/calib.rs crates/platform-upnp/src/client.rs crates/platform-upnp/src/description.rs crates/platform-upnp/src/device.rs crates/platform-upnp/src/devices.rs crates/platform-upnp/src/gena.rs crates/platform-upnp/src/http.rs crates/platform-upnp/src/soap.rs crates/platform-upnp/src/ssdp.rs Cargo.toml

/root/repo/target/debug/deps/libplatform_upnp-5e9a7f348a073235.rmeta: crates/platform-upnp/src/lib.rs crates/platform-upnp/src/calib.rs crates/platform-upnp/src/client.rs crates/platform-upnp/src/description.rs crates/platform-upnp/src/device.rs crates/platform-upnp/src/devices.rs crates/platform-upnp/src/gena.rs crates/platform-upnp/src/http.rs crates/platform-upnp/src/soap.rs crates/platform-upnp/src/ssdp.rs Cargo.toml

crates/platform-upnp/src/lib.rs:
crates/platform-upnp/src/calib.rs:
crates/platform-upnp/src/client.rs:
crates/platform-upnp/src/description.rs:
crates/platform-upnp/src/device.rs:
crates/platform-upnp/src/devices.rs:
crates/platform-upnp/src/gena.rs:
crates/platform-upnp/src/http.rs:
crates/platform-upnp/src/soap.rs:
crates/platform-upnp/src/ssdp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
