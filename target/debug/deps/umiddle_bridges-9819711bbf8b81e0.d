/root/repo/target/debug/deps/umiddle_bridges-9819711bbf8b81e0.d: crates/umiddle-bridges/src/lib.rs crates/umiddle-bridges/src/bluetooth.rs crates/umiddle-bridges/src/calib.rs crates/umiddle-bridges/src/direct.rs crates/umiddle-bridges/src/mediabroker.rs crates/umiddle-bridges/src/motes.rs crates/umiddle-bridges/src/native.rs crates/umiddle-bridges/src/obs.rs crates/umiddle-bridges/src/rmi.rs crates/umiddle-bridges/src/scatter.rs crates/umiddle-bridges/src/upnp.rs crates/umiddle-bridges/src/webservices.rs Cargo.toml

/root/repo/target/debug/deps/libumiddle_bridges-9819711bbf8b81e0.rmeta: crates/umiddle-bridges/src/lib.rs crates/umiddle-bridges/src/bluetooth.rs crates/umiddle-bridges/src/calib.rs crates/umiddle-bridges/src/direct.rs crates/umiddle-bridges/src/mediabroker.rs crates/umiddle-bridges/src/motes.rs crates/umiddle-bridges/src/native.rs crates/umiddle-bridges/src/obs.rs crates/umiddle-bridges/src/rmi.rs crates/umiddle-bridges/src/scatter.rs crates/umiddle-bridges/src/upnp.rs crates/umiddle-bridges/src/webservices.rs Cargo.toml

crates/umiddle-bridges/src/lib.rs:
crates/umiddle-bridges/src/bluetooth.rs:
crates/umiddle-bridges/src/calib.rs:
crates/umiddle-bridges/src/direct.rs:
crates/umiddle-bridges/src/mediabroker.rs:
crates/umiddle-bridges/src/motes.rs:
crates/umiddle-bridges/src/native.rs:
crates/umiddle-bridges/src/obs.rs:
crates/umiddle-bridges/src/rmi.rs:
crates/umiddle-bridges/src/scatter.rs:
crates/umiddle-bridges/src/upnp.rs:
crates/umiddle-bridges/src/webservices.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
