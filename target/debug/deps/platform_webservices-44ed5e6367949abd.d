/root/repo/target/debug/deps/platform_webservices-44ed5e6367949abd.d: crates/platform-webservices/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libplatform_webservices-44ed5e6367949abd.rmeta: crates/platform-webservices/src/lib.rs Cargo.toml

crates/platform-webservices/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
