/root/repo/target/debug/deps/bench-0c12da9d34b3580d.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fixtures.rs crates/bench/src/report.rs crates/bench/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libbench-0c12da9d34b3580d.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fixtures.rs crates/bench/src/report.rs crates/bench/src/timing.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fixtures.rs:
crates/bench/src/report.rs:
crates/bench/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
