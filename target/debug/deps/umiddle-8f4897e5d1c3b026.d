/root/repo/target/debug/deps/umiddle-8f4897e5d1c3b026.d: src/lib.rs src/util.rs Cargo.toml

/root/repo/target/debug/deps/libumiddle-8f4897e5d1c3b026.rmeta: src/lib.rs src/util.rs Cargo.toml

src/lib.rs:
src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
