/root/repo/target/debug/deps/perf_payload-b9aed400716aa836.d: crates/bench/src/bin/perf_payload.rs

/root/repo/target/debug/deps/perf_payload-b9aed400716aa836: crates/bench/src/bin/perf_payload.rs

crates/bench/src/bin/perf_payload.rs:
