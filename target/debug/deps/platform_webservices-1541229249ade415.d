/root/repo/target/debug/deps/platform_webservices-1541229249ade415.d: crates/platform-webservices/src/lib.rs

/root/repo/target/debug/deps/libplatform_webservices-1541229249ade415.rlib: crates/platform-webservices/src/lib.rs

/root/repo/target/debug/deps/libplatform_webservices-1541229249ade415.rmeta: crates/platform-webservices/src/lib.rs

crates/platform-webservices/src/lib.rs:
