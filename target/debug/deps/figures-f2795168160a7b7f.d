/root/repo/target/debug/deps/figures-f2795168160a7b7f.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/figures-f2795168160a7b7f: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
