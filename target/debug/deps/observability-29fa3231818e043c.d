/root/repo/target/debug/deps/observability-29fa3231818e043c.d: tests/observability.rs Cargo.toml

/root/repo/target/debug/deps/libobservability-29fa3231818e043c.rmeta: tests/observability.rs Cargo.toml

tests/observability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
