/root/repo/target/debug/deps/experiments-7aaeec7851f26cdc.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-7aaeec7851f26cdc: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
