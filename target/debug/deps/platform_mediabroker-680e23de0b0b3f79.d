/root/repo/target/debug/deps/platform_mediabroker-680e23de0b0b3f79.d: crates/platform-mediabroker/src/lib.rs crates/platform-mediabroker/src/broker.rs crates/platform-mediabroker/src/types.rs

/root/repo/target/debug/deps/platform_mediabroker-680e23de0b0b3f79: crates/platform-mediabroker/src/lib.rs crates/platform-mediabroker/src/broker.rs crates/platform-mediabroker/src/types.rs

crates/platform-mediabroker/src/lib.rs:
crates/platform-mediabroker/src/broker.rs:
crates/platform-mediabroker/src/types.rs:
