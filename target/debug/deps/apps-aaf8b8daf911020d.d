/root/repo/target/debug/deps/apps-aaf8b8daf911020d.d: crates/umiddle-apps/tests/apps.rs

/root/repo/target/debug/deps/apps-aaf8b8daf911020d: crates/umiddle-apps/tests/apps.rs

crates/umiddle-apps/tests/apps.rs:
