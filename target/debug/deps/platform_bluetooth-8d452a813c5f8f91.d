/root/repo/target/debug/deps/platform_bluetooth-8d452a813c5f8f91.d: crates/platform-bluetooth/src/lib.rs crates/platform-bluetooth/src/bip.rs crates/platform-bluetooth/src/calib.rs crates/platform-bluetooth/src/device.rs crates/platform-bluetooth/src/hidp.rs crates/platform-bluetooth/src/obex.rs crates/platform-bluetooth/src/sdp.rs Cargo.toml

/root/repo/target/debug/deps/libplatform_bluetooth-8d452a813c5f8f91.rmeta: crates/platform-bluetooth/src/lib.rs crates/platform-bluetooth/src/bip.rs crates/platform-bluetooth/src/calib.rs crates/platform-bluetooth/src/device.rs crates/platform-bluetooth/src/hidp.rs crates/platform-bluetooth/src/obex.rs crates/platform-bluetooth/src/sdp.rs Cargo.toml

crates/platform-bluetooth/src/lib.rs:
crates/platform-bluetooth/src/bip.rs:
crates/platform-bluetooth/src/calib.rs:
crates/platform-bluetooth/src/device.rs:
crates/platform-bluetooth/src/hidp.rs:
crates/platform-bluetooth/src/obex.rs:
crates/platform-bluetooth/src/sdp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
