/root/repo/target/debug/deps/perf_payload-e581c44d1c48c3bd.d: crates/bench/src/bin/perf_payload.rs

/root/repo/target/debug/deps/perf_payload-e581c44d1c48c3bd: crates/bench/src/bin/perf_payload.rs

crates/bench/src/bin/perf_payload.rs:
