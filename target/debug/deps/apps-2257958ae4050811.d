/root/repo/target/debug/deps/apps-2257958ae4050811.d: crates/umiddle-apps/tests/apps.rs Cargo.toml

/root/repo/target/debug/deps/libapps-2257958ae4050811.rmeta: crates/umiddle-apps/tests/apps.rs Cargo.toml

crates/umiddle-apps/tests/apps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
