/root/repo/target/debug/deps/grand_tour-177023e17ff9a5a2.d: tests/grand_tour.rs

/root/repo/target/debug/deps/grand_tour-177023e17ff9a5a2: tests/grand_tour.rs

tests/grand_tour.rs:
