/root/repo/target/debug/deps/platform_mediabroker-57b1c7859e072be2.d: crates/platform-mediabroker/src/lib.rs crates/platform-mediabroker/src/broker.rs crates/platform-mediabroker/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libplatform_mediabroker-57b1c7859e072be2.rmeta: crates/platform-mediabroker/src/lib.rs crates/platform-mediabroker/src/broker.rs crates/platform-mediabroker/src/types.rs Cargo.toml

crates/platform-mediabroker/src/lib.rs:
crates/platform-mediabroker/src/broker.rs:
crates/platform-mediabroker/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
