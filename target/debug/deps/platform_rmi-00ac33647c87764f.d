/root/repo/target/debug/deps/platform_rmi-00ac33647c87764f.d: crates/platform-rmi/src/lib.rs crates/platform-rmi/src/calib.rs crates/platform-rmi/src/marshal.rs crates/platform-rmi/src/protocol.rs crates/platform-rmi/src/service.rs Cargo.toml

/root/repo/target/debug/deps/libplatform_rmi-00ac33647c87764f.rmeta: crates/platform-rmi/src/lib.rs crates/platform-rmi/src/calib.rs crates/platform-rmi/src/marshal.rs crates/platform-rmi/src/protocol.rs crates/platform-rmi/src/service.rs Cargo.toml

crates/platform-rmi/src/lib.rs:
crates/platform-rmi/src/calib.rs:
crates/platform-rmi/src/marshal.rs:
crates/platform-rmi/src/protocol.rs:
crates/platform-rmi/src/service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
