/root/repo/target/debug/deps/umiddle_apps-b6b17e912813a66b.d: crates/umiddle-apps/src/lib.rs crates/umiddle-apps/src/g2ui.rs crates/umiddle-apps/src/pads.rs Cargo.toml

/root/repo/target/debug/deps/libumiddle_apps-b6b17e912813a66b.rmeta: crates/umiddle-apps/src/lib.rs crates/umiddle-apps/src/g2ui.rs crates/umiddle-apps/src/pads.rs Cargo.toml

crates/umiddle-apps/src/lib.rs:
crates/umiddle-apps/src/g2ui.rs:
crates/umiddle-apps/src/pads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
