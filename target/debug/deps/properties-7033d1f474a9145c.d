/root/repo/target/debug/deps/properties-7033d1f474a9145c.d: crates/simnet/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-7033d1f474a9145c.rmeta: crates/simnet/tests/properties.rs Cargo.toml

crates/simnet/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
