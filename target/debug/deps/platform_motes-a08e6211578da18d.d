/root/repo/target/debug/deps/platform_motes-a08e6211578da18d.d: crates/platform-motes/src/lib.rs

/root/repo/target/debug/deps/libplatform_motes-a08e6211578da18d.rlib: crates/platform-motes/src/lib.rs

/root/repo/target/debug/deps/libplatform_motes-a08e6211578da18d.rmeta: crates/platform-motes/src/lib.rs

crates/platform-motes/src/lib.rs:
