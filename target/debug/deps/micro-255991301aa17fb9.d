/root/repo/target/debug/deps/micro-255991301aa17fb9.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/micro-255991301aa17fb9: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
