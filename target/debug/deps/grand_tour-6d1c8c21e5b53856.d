/root/repo/target/debug/deps/grand_tour-6d1c8c21e5b53856.d: tests/grand_tour.rs Cargo.toml

/root/repo/target/debug/deps/libgrand_tour-6d1c8c21e5b53856.rmeta: tests/grand_tour.rs Cargo.toml

tests/grand_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
