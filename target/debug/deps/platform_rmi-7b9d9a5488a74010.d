/root/repo/target/debug/deps/platform_rmi-7b9d9a5488a74010.d: crates/platform-rmi/src/lib.rs crates/platform-rmi/src/calib.rs crates/platform-rmi/src/marshal.rs crates/platform-rmi/src/protocol.rs crates/platform-rmi/src/service.rs

/root/repo/target/debug/deps/libplatform_rmi-7b9d9a5488a74010.rlib: crates/platform-rmi/src/lib.rs crates/platform-rmi/src/calib.rs crates/platform-rmi/src/marshal.rs crates/platform-rmi/src/protocol.rs crates/platform-rmi/src/service.rs

/root/repo/target/debug/deps/libplatform_rmi-7b9d9a5488a74010.rmeta: crates/platform-rmi/src/lib.rs crates/platform-rmi/src/calib.rs crates/platform-rmi/src/marshal.rs crates/platform-rmi/src/protocol.rs crates/platform-rmi/src/service.rs

crates/platform-rmi/src/lib.rs:
crates/platform-rmi/src/calib.rs:
crates/platform-rmi/src/marshal.rs:
crates/platform-rmi/src/protocol.rs:
crates/platform-rmi/src/service.rs:
