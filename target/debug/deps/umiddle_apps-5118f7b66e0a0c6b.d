/root/repo/target/debug/deps/umiddle_apps-5118f7b66e0a0c6b.d: crates/umiddle-apps/src/lib.rs crates/umiddle-apps/src/g2ui.rs crates/umiddle-apps/src/pads.rs

/root/repo/target/debug/deps/libumiddle_apps-5118f7b66e0a0c6b.rlib: crates/umiddle-apps/src/lib.rs crates/umiddle-apps/src/g2ui.rs crates/umiddle-apps/src/pads.rs

/root/repo/target/debug/deps/libumiddle_apps-5118f7b66e0a0c6b.rmeta: crates/umiddle-apps/src/lib.rs crates/umiddle-apps/src/g2ui.rs crates/umiddle-apps/src/pads.rs

crates/umiddle-apps/src/lib.rs:
crates/umiddle-apps/src/g2ui.rs:
crates/umiddle-apps/src/pads.rs:
