//! # umiddle-apps — the paper's applications, headless
//!
//! Two applications demonstrate uMiddle's platform-independent
//! application development (paper §4):
//!
//! * [`Pads`] — the GUI-based application generator providing
//!   "cross-platform virtual cabling": translators appear as icons, and
//!   drawing a wire establishes a real end-to-end device connection.
//!   Here the GUI is a headless [`Canvas`] model with an ASCII renderer.
//! * [`G2Ui`] — the Geographical User Interface: gadgets are placed at
//!   coordinates, and co-location triggers [`GeoKind::Geoplay`] or
//!   [`GeoKind::Geostore`] compositions across platforms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod g2ui;
mod pads;

pub use g2ui::{infer_role, Atlas, G2Command, G2Ui, GadgetRole, GeoComposition, GeoKind, Position};
pub use pads::{canvas_translators, Canvas, Icon, Pads, PadsCommand, Wire};
