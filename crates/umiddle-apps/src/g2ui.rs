//! G2 UI — the Geographical User Interface (paper §4.2), headless.
//!
//! Gadgets (media storage, player and capture devices) are *located* at
//! coordinates in a geographical space. Co-location of compatible devices
//! triggers **geoplay** (playback of media from a co-located storage or
//! capture device) or **geostore** (a storage device records a co-located
//! capture device). Because the composition happens in the common
//! semantic space, it works across platforms: "if a user co-locates a
//! Bluetooth digital camera and a UPnP MediaRenderer TV, the images in
//! the camera would serve as the source for the TV".

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use simnet::{Ctx, LocalMessage, ProcId, Process};
use umiddle_core::{
    ConnectionId, Direction, DirectoryEvent, PerceptionType, PortKind, PortRef, QosPolicy, Query,
    RuntimeClient, RuntimeEvent, TranslatorId, TranslatorProfile,
};

/// A 2-D position in the geographic coordinate system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Position {
    /// East-west coordinate (meters).
    pub x: f64,
    /// North-south coordinate (meters).
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub fn new(x: f64, y: f64) -> Position {
        Position { x, y }
    }

    /// Euclidean distance to another position.
    pub fn distance(self, other: Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// The role G2 UI infers from a gadget's shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GadgetRole {
    /// Produces media (camera, microphone, sensor feed).
    Capture,
    /// Renders media perceptibly (TV, speaker).
    Player,
    /// Accepts and keeps media (archive, album).
    Storage,
    /// None of the above.
    Other,
}

/// Infers a gadget's role from its shape, following the paper's device
/// categories. Only *content* ports count as media (image, audio,
/// video): capture devices produce content; players consume content and
/// render it perceptibly; storage consumes content without rendering it
/// (or is tagged `category=storage`).
pub fn infer_role(profile: &TranslatorProfile) -> GadgetRole {
    fn is_content(kind: &PortKind) -> bool {
        kind.mime()
            .map(|m| matches!(m.ty(), "image" | "audio" | "video"))
            .unwrap_or(false)
    }
    let shape = profile.shape();
    let content_in = shape
        .ports_in(Direction::Input)
        .any(|p| is_content(&p.kind));
    let content_out = shape
        .ports_in(Direction::Output)
        .any(|p| is_content(&p.kind));
    let perceptible = shape.has_matching_port(
        Direction::Output,
        &PortKind::physical(PerceptionType::Any, "*"),
    );
    if content_out {
        GadgetRole::Capture
    } else if content_in && profile.attr("category") == Some("storage") {
        GadgetRole::Storage
    } else if content_in && perceptible {
        GadgetRole::Player
    } else if content_in {
        GadgetRole::Storage
    } else {
        GadgetRole::Other
    }
}

/// A geo-triggered composition currently in force.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoComposition {
    /// `Geoplay` or `Geostore`.
    pub kind: GeoKind,
    /// The media source.
    pub src: PortRef,
    /// The consuming device.
    pub dst: PortRef,
    /// The underlying connection, once established.
    pub connection: Option<ConnectionId>,
}

/// The two composition kinds of §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeoKind {
    /// Capture/storage → player.
    Geoplay,
    /// Capture → storage.
    Geostore,
}

/// Commands for placing and moving gadgets.
#[derive(Debug, Clone, PartialEq)]
pub enum G2Command {
    /// Registers/moves the gadget whose name contains `name` to a
    /// position.
    Place {
        /// Translator name substring.
        name: String,
        /// New position.
        position: Position,
    },
    /// Removes a gadget from the coordinate space.
    Remove {
        /// Translator name substring.
        name: String,
    },
}

/// Observable G2 UI state.
#[derive(Debug, Clone, Default)]
pub struct Atlas {
    /// Placements: `(profile, position)`.
    pub placements: Vec<(TranslatorProfile, Position)>,
    /// Active compositions.
    pub compositions: Vec<GeoComposition>,
    /// History log of composition events.
    pub log: Vec<String>,
}

/// The G2 UI application process.
pub struct G2Ui {
    runtime: ProcId,
    client: Option<RuntimeClient>,
    radius: f64,
    atlas: Rc<RefCell<Atlas>>,
    known: HashMap<TranslatorId, TranslatorProfile>,
    pending: HashMap<u64, usize>,
}

impl std::fmt::Debug for G2Ui {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("G2Ui")
            .field("radius", &self.radius)
            .finish_non_exhaustive()
    }
}

impl G2Ui {
    /// Creates the application with the given co-location radius
    /// (meters).
    pub fn new(runtime: ProcId, radius: f64) -> G2Ui {
        G2Ui {
            runtime,
            client: None,
            radius,
            atlas: Rc::new(RefCell::new(Atlas::default())),
            known: HashMap::new(),
            pending: HashMap::new(),
        }
    }

    /// Shared atlas handle; clone before adding the process to a world.
    pub fn atlas_handle(&self) -> Rc<RefCell<Atlas>> {
        Rc::clone(&self.atlas)
    }

    /// Decides what composition, if any, co-locating `a` and `b` yields.
    fn compose(
        a: &TranslatorProfile,
        b: &TranslatorProfile,
    ) -> Option<(GeoKind, PortRef, PortRef)> {
        let (ra, rb) = (infer_role(a), infer_role(b));
        // Order the pair: source first.
        let (kind, src_profile, dst_profile) = match (ra, rb) {
            (GadgetRole::Capture, GadgetRole::Player) => (GeoKind::Geoplay, a, b),
            (GadgetRole::Player, GadgetRole::Capture) => (GeoKind::Geoplay, b, a),
            (GadgetRole::Storage, GadgetRole::Player) => (GeoKind::Geoplay, a, b),
            (GadgetRole::Player, GadgetRole::Storage) => (GeoKind::Geoplay, b, a),
            (GadgetRole::Capture, GadgetRole::Storage) => (GeoKind::Geostore, a, b),
            (GadgetRole::Storage, GadgetRole::Capture) => (GeoKind::Geostore, b, a),
            _ => return None,
        };
        // Storage playing to a player needs an output; check actual port
        // compatibility via Service Shaping.
        let src_shape = src_profile.shape();
        let dst_shape = dst_profile.shape();
        let pairs = src_shape.connectable_to(dst_shape);
        let (out_port, in_port) = pairs.first()?;
        Some((
            kind,
            PortRef::new(src_profile.id(), out_port.name.clone()),
            PortRef::new(dst_profile.id(), in_port.name.clone()),
        ))
    }

    /// Recomputes compositions after any placement change.
    fn recompute(&mut self, ctx: &mut Ctx<'_>) {
        let placements: Vec<(TranslatorProfile, Position)> = self.atlas.borrow().placements.clone();
        // Desired set of compositions.
        let mut desired: Vec<(GeoKind, PortRef, PortRef)> = Vec::new();
        for i in 0..placements.len() {
            for j in (i + 1)..placements.len() {
                let (pa, pos_a) = &placements[i];
                let (pb, pos_b) = &placements[j];
                if pos_a.distance(*pos_b) <= self.radius {
                    if let Some(c) = G2Ui::compose(pa, pb) {
                        desired.push(c);
                    }
                }
            }
        }
        // Tear down compositions no longer wanted.
        let mut to_disconnect = Vec::new();
        {
            let mut atlas = self.atlas.borrow_mut();
            let existing: Vec<GeoComposition> = atlas.compositions.drain(..).collect();
            let mut kept = Vec::new();
            for comp in existing {
                let still = desired
                    .iter()
                    .any(|(k, s, d)| *k == comp.kind && *s == comp.src && *d == comp.dst);
                if still {
                    kept.push(comp);
                } else {
                    if let Some(conn) = comp.connection {
                        to_disconnect.push(conn);
                    }
                    atlas.log.push(format!(
                        "teardown {:?} {} -> {}",
                        comp.kind, comp.src, comp.dst
                    ));
                }
            }
            atlas.compositions = kept;
        }
        let client = self.client.as_mut().expect("client set");
        for conn in to_disconnect {
            client.disconnect(ctx, conn);
        }
        // Establish new ones.
        for (kind, src, dst) in desired {
            let exists = self
                .atlas
                .borrow()
                .compositions
                .iter()
                .any(|c| c.kind == kind && c.src == src && c.dst == dst);
            if exists {
                continue;
            }
            let client = self.client.as_mut().expect("client set");
            let token = client.connect_ports(ctx, src, dst, QosPolicy::unbounded());
            let mut atlas = self.atlas.borrow_mut();
            atlas.log.push(format!("{kind:?} {src} -> {dst}"));
            atlas.compositions.push(GeoComposition {
                kind,
                src,
                dst,
                connection: None,
            });
            self.pending.insert(token, atlas.compositions.len() - 1);
        }
    }

    fn handle_command(&mut self, ctx: &mut Ctx<'_>, cmd: G2Command) {
        match cmd {
            G2Command::Place { name, position } => {
                let profile = self
                    .known
                    .values()
                    .find(|p| p.name().contains(&name))
                    .cloned();
                let Some(profile) = profile else {
                    self.atlas
                        .borrow_mut()
                        .log
                        .push(format!("place failed: no gadget named {name:?}"));
                    return;
                };
                {
                    let mut atlas = self.atlas.borrow_mut();
                    if let Some(entry) = atlas
                        .placements
                        .iter_mut()
                        .find(|(p, _)| p.id() == profile.id())
                    {
                        entry.1 = position;
                    } else {
                        atlas.placements.push((profile, position));
                    }
                }
                self.recompute(ctx);
            }
            G2Command::Remove { name } => {
                {
                    let mut atlas = self.atlas.borrow_mut();
                    atlas.placements.retain(|(p, _)| !p.name().contains(&name));
                }
                self.recompute(ctx);
            }
        }
    }
}

impl Process for G2Ui {
    fn name(&self) -> &str {
        "g2ui"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let client = RuntimeClient::new(self.runtime);
        client.add_listener(ctx, Query::All);
        self.client = Some(client);
    }

    fn on_local(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
        let msg = match msg.downcast::<G2Command>() {
            Ok(cmd) => {
                self.handle_command(ctx, *cmd);
                return;
            }
            Err(original) => original,
        };
        let Ok(event) = msg.downcast::<RuntimeEvent>() else {
            return;
        };
        match *event {
            RuntimeEvent::Directory(DirectoryEvent::Appeared(profile)) => {
                self.known.insert(profile.id(), profile);
            }
            RuntimeEvent::Directory(DirectoryEvent::Disappeared(id)) => {
                self.known.remove(&id);
                {
                    let mut atlas = self.atlas.borrow_mut();
                    atlas.placements.retain(|(p, _)| p.id() != id);
                }
                self.recompute(ctx);
            }
            RuntimeEvent::Connected { token, connection } => {
                if let Some(idx) = self.pending.remove(&token) {
                    if let Some(c) = self.atlas.borrow_mut().compositions.get_mut(idx) {
                        c.connection = Some(connection);
                    }
                }
            }
            RuntimeEvent::ConnectFailed { token, reason } => {
                if let Some(idx) = self.pending.remove(&token) {
                    let mut atlas = self.atlas.borrow_mut();
                    if idx < atlas.compositions.len() {
                        atlas.compositions.remove(idx);
                    }
                    atlas.log.push(format!("composition failed: {reason}"));
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umiddle_core::{RuntimeId, Shape};

    fn profile(name: &str, shape: Shape) -> TranslatorProfile {
        TranslatorProfile::builder(TranslatorId::new(RuntimeId(0), 1), name)
            .shape(shape)
            .build()
    }

    #[test]
    fn distance_math() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn role_inference() {
        let camera = profile(
            "cam",
            Shape::builder()
                .digital(
                    "image-out",
                    Direction::Output,
                    "image/jpeg".parse().unwrap(),
                )
                .build()
                .unwrap(),
        );
        assert_eq!(infer_role(&camera), GadgetRole::Capture);

        let tv = profile(
            "tv",
            Shape::builder()
                .digital("media-in", Direction::Input, "image/*".parse().unwrap())
                .physical(
                    "screen",
                    Direction::Output,
                    PerceptionType::Visible,
                    "screen",
                )
                .build()
                .unwrap(),
        );
        assert_eq!(infer_role(&tv), GadgetRole::Player);

        let album = profile(
            "album",
            Shape::builder()
                .digital("store-in", Direction::Input, "image/*".parse().unwrap())
                .build()
                .unwrap(),
        );
        assert_eq!(infer_role(&album), GadgetRole::Storage);

        let nothing = profile("x", Shape::default());
        assert_eq!(infer_role(&nothing), GadgetRole::Other);
    }

    #[test]
    fn composition_pairs_camera_and_tv_as_geoplay() {
        let camera = profile(
            "cam",
            Shape::builder()
                .digital(
                    "image-out",
                    Direction::Output,
                    "image/jpeg".parse().unwrap(),
                )
                .build()
                .unwrap(),
        );
        let tv = TranslatorProfile::builder(TranslatorId::new(RuntimeId(0), 2), "tv")
            .shape(
                Shape::builder()
                    .digital("media-in", Direction::Input, "image/*".parse().unwrap())
                    .physical(
                        "screen",
                        Direction::Output,
                        PerceptionType::Visible,
                        "screen",
                    )
                    .build()
                    .unwrap(),
            )
            .build();
        let (kind, src, dst) = G2Ui::compose(&camera, &tv).unwrap();
        assert_eq!(kind, GeoKind::Geoplay);
        assert_eq!(src.port, "image-out");
        assert_eq!(dst.port, "media-in");
        // Symmetric argument order gives the same pairing.
        let (kind2, src2, dst2) = G2Ui::compose(&tv, &camera).unwrap();
        assert_eq!((kind2, src2, dst2), (kind, src, dst));
    }

    #[test]
    fn composition_pairs_camera_and_storage_as_geostore() {
        let camera = profile(
            "cam",
            Shape::builder()
                .digital(
                    "image-out",
                    Direction::Output,
                    "image/jpeg".parse().unwrap(),
                )
                .build()
                .unwrap(),
        );
        let album = TranslatorProfile::builder(TranslatorId::new(RuntimeId(0), 3), "album")
            .shape(
                Shape::builder()
                    .digital("store-in", Direction::Input, "image/*".parse().unwrap())
                    .build()
                    .unwrap(),
            )
            .attr("category", "storage")
            .build();
        let (kind, src, dst) = G2Ui::compose(&camera, &album).unwrap();
        assert_eq!(kind, GeoKind::Geostore);
        assert_eq!(src.port, "image-out");
        assert_eq!(dst.port, "store-in");
    }

    #[test]
    fn incompatible_gadgets_do_not_compose() {
        let camera = profile(
            "cam",
            Shape::builder()
                .digital(
                    "image-out",
                    Direction::Output,
                    "image/jpeg".parse().unwrap(),
                )
                .build()
                .unwrap(),
        );
        let speaker = TranslatorProfile::builder(TranslatorId::new(RuntimeId(0), 4), "speaker")
            .shape(
                Shape::builder()
                    .digital("audio-in", Direction::Input, "audio/pcm".parse().unwrap())
                    .physical("sound", Direction::Output, PerceptionType::Audible, "air")
                    .build()
                    .unwrap(),
            )
            .build();
        // Roles suggest geoplay, but no port pair matches: no composition.
        assert!(G2Ui::compose(&camera, &speaker).is_none());
    }
}
