//! uMiddle Pads — the GUI-based application generator (paper §4.1),
//! headless.
//!
//! Pads provides "cross-platform virtual cabling": translators appear as
//! icons on a canvas, and the user wires them together by drawing lines;
//! a runtime environment behind the GUI establishes the real end-to-end
//! device connections. This module is the runtime environment plus a
//! headless canvas model: icons track the directory, wires validate port
//! compatibility before connecting, and the canvas can be rendered as
//! text (the GUI stand-in).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use simnet::{Ctx, LocalMessage, ProcId, Process};
use umiddle_core::{
    ConnectionId, Direction, DirectoryEvent, PortRef, QosPolicy, Query, RuntimeClient,
    RuntimeEvent, TranslatorId, TranslatorProfile,
};

/// One icon on the canvas: a translator plus a position.
#[derive(Debug, Clone, PartialEq)]
pub struct Icon {
    /// The translator it represents.
    pub profile: TranslatorProfile,
    /// Grid position assigned by auto-layout.
    pub position: (u32, u32),
}

/// One wire between ports.
#[derive(Debug, Clone, PartialEq)]
pub struct Wire {
    /// Source output port.
    pub src: PortRef,
    /// Destination input port.
    pub dst: PortRef,
    /// The established connection, once the runtime confirms.
    pub connection: Option<ConnectionId>,
}

/// The observable canvas state, shared with tests/UIs.
#[derive(Debug, Clone, Default)]
pub struct Canvas {
    /// Icons by translator id.
    pub icons: Vec<Icon>,
    /// Wires in creation order.
    pub wires: Vec<Wire>,
    /// Rejected wiring attempts: `(src, dst, reason)`.
    pub rejected: Vec<(PortRef, PortRef, String)>,
}

impl Canvas {
    /// Finds an icon by (substring of) translator name.
    pub fn icon_by_name(&self, name: &str) -> Option<&Icon> {
        self.icons.iter().find(|i| i.profile.name().contains(name))
    }

    /// Renders the canvas as text — the headless stand-in for the
    /// paper's Figure 8 screenshot.
    pub fn render_ascii(&self) -> String {
        let mut out = String::from("uMiddle Pads\n============\n");
        for icon in &self.icons {
            out.push_str(&format!(
                "[{}] {:20} ({}) ports: {}\n",
                icon.profile.id(),
                icon.profile.name(),
                icon.profile.platform(),
                icon.profile.shape().ports().len(),
            ));
        }
        out.push_str("wires:\n");
        for w in &self.wires {
            let status = if w.connection.is_some() { "=" } else { "~" };
            out.push_str(&format!("  {} {status}{status}> {}\n", w.src, w.dst));
        }
        out
    }
}

/// Commands other processes send to Pads (the "user" drawing on the
/// canvas).
#[derive(Debug, Clone, PartialEq)]
pub enum PadsCommand {
    /// Draw a wire between ports identified by translator-name substring
    /// and port name.
    DrawWire {
        /// Source translator name substring.
        src_name: String,
        /// Source port.
        src_port: String,
        /// Destination translator name substring.
        dst_name: String,
        /// Destination port.
        dst_port: String,
    },
    /// Remove a wire (disconnects).
    RemoveWire {
        /// Index into the canvas wire list.
        index: usize,
    },
}

/// The Pads application process.
pub struct Pads {
    runtime: ProcId,
    client: Option<RuntimeClient>,
    canvas: Rc<RefCell<Canvas>>,
    /// Wires awaiting their Connected event: token → wire index.
    pending: HashMap<u64, usize>,
    /// Wires requested before both endpoints exist.
    deferred: Vec<PadsCommand>,
    next_pos: u32,
}

impl std::fmt::Debug for Pads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pads")
            .field("icons", &self.canvas.borrow().icons.len())
            .field("wires", &self.canvas.borrow().wires.len())
            .finish_non_exhaustive()
    }
}

impl Pads {
    /// Creates the application bound to a runtime.
    pub fn new(runtime: ProcId) -> Pads {
        Pads {
            runtime,
            client: None,
            canvas: Rc::new(RefCell::new(Canvas::default())),
            pending: HashMap::new(),
            deferred: Vec::new(),
            next_pos: 0,
        }
    }

    /// Shared canvas handle; clone before adding the process to a world.
    pub fn canvas_handle(&self) -> Rc<RefCell<Canvas>> {
        Rc::clone(&self.canvas)
    }

    fn resolve(&self, name: &str, port: &str) -> Option<(PortRef, TranslatorProfile)> {
        let canvas = self.canvas.borrow();
        let icon = canvas
            .icons
            .iter()
            .find(|i| i.profile.name().contains(name))?;
        Some((PortRef::new(icon.profile.id(), port), icon.profile.clone()))
    }

    fn try_draw(&mut self, ctx: &mut Ctx<'_>, cmd: &PadsCommand) -> bool {
        let PadsCommand::DrawWire {
            src_name,
            src_port,
            dst_name,
            dst_port,
        } = cmd
        else {
            return true;
        };
        let (Some((src, src_profile)), Some((dst, dst_profile))) = (
            self.resolve(src_name, src_port),
            self.resolve(dst_name, dst_port),
        ) else {
            return false; // endpoints not on the canvas yet
        };
        // Validate like the GUI would before letting the user drop the
        // wire: matching directions and data types.
        let sp = src_profile.shape().port(src_port);
        let dp = dst_profile.shape().port(dst_port);
        let problem = match (sp, dp) {
            (None, _) => Some(format!("no port {src_port} on {src_name}")),
            (_, None) => Some(format!("no port {dst_port} on {dst_name}")),
            (Some(s), Some(d)) => {
                if s.direction != Direction::Output {
                    Some(format!("{src_port} is not an output"))
                } else if d.direction != Direction::Input {
                    Some(format!("{dst_port} is not an input"))
                } else if !s.kind.matches(&d.kind) {
                    Some(format!("data types differ: {} vs {}", s.kind, d.kind))
                } else {
                    None
                }
            }
        };
        if let Some(reason) = problem {
            self.canvas.borrow_mut().rejected.push((src, dst, reason));
            return true; // handled (rejected)
        }
        let client = self.client.as_mut().expect("client set");
        let token = client.connect_ports(ctx, src, dst, QosPolicy::unbounded());
        let mut canvas = self.canvas.borrow_mut();
        canvas.wires.push(Wire {
            src,
            dst,
            connection: None,
        });
        self.pending.insert(token, canvas.wires.len() - 1);
        true
    }

    fn handle_command(&mut self, ctx: &mut Ctx<'_>, cmd: PadsCommand) {
        match &cmd {
            PadsCommand::DrawWire { .. } => {
                if !self.try_draw(ctx, &cmd) {
                    self.deferred.push(cmd);
                }
            }
            PadsCommand::RemoveWire { index } => {
                let wire = {
                    let mut canvas = self.canvas.borrow_mut();
                    if *index >= canvas.wires.len() {
                        return;
                    }
                    canvas.wires.remove(*index)
                };
                if let Some(connection) = wire.connection {
                    let client = self.client.as_ref().expect("client set");
                    client.disconnect(ctx, connection);
                }
            }
        }
    }

    fn retry_deferred(&mut self, ctx: &mut Ctx<'_>) {
        let deferred = std::mem::take(&mut self.deferred);
        for cmd in deferred {
            if !self.try_draw(ctx, &cmd) {
                self.deferred.push(cmd);
            }
        }
    }
}

impl Process for Pads {
    fn name(&self) -> &str {
        "pads"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let client = RuntimeClient::new(self.runtime);
        client.add_listener(ctx, Query::All);
        self.client = Some(client);
    }

    fn on_local(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
        let msg = match msg.downcast::<PadsCommand>() {
            Ok(cmd) => {
                self.handle_command(ctx, *cmd);
                return;
            }
            Err(original) => original,
        };
        let Ok(event) = msg.downcast::<RuntimeEvent>() else {
            return;
        };
        match *event {
            RuntimeEvent::Directory(DirectoryEvent::Appeared(profile)) => {
                let mut canvas = self.canvas.borrow_mut();
                if !canvas.icons.iter().any(|i| i.profile.id() == profile.id()) {
                    let pos = (self.next_pos % 6, self.next_pos / 6);
                    self.next_pos += 1;
                    canvas.icons.push(Icon {
                        profile,
                        position: pos,
                    });
                }
                drop(canvas);
                self.retry_deferred(ctx);
            }
            RuntimeEvent::Directory(DirectoryEvent::Disappeared(id)) => {
                let mut canvas = self.canvas.borrow_mut();
                canvas.icons.retain(|i| i.profile.id() != id);
                // Wires to/from the departed translator die with it.
                canvas
                    .wires
                    .retain(|w| w.src.translator != id && w.dst.translator != id);
            }
            RuntimeEvent::Connected { token, connection } => {
                if let Some(idx) = self.pending.remove(&token) {
                    if let Some(wire) = self.canvas.borrow_mut().wires.get_mut(idx) {
                        wire.connection = Some(connection);
                    }
                }
            }
            RuntimeEvent::ConnectFailed { token, reason } => {
                if let Some(idx) = self.pending.remove(&token) {
                    let mut canvas = self.canvas.borrow_mut();
                    if idx < canvas.wires.len() {
                        let wire = canvas.wires.remove(idx);
                        canvas.rejected.push((wire.src, wire.dst, reason));
                    }
                }
            }
            _ => {}
        }
    }
}

/// Convenience: returns the translator ids currently on a canvas.
pub fn canvas_translators(canvas: &Canvas) -> Vec<TranslatorId> {
    canvas.icons.iter().map(|i| i.profile.id()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canvas_rendering_lists_icons_and_wires() {
        let mut canvas = Canvas::default();
        let profile =
            TranslatorProfile::builder(TranslatorId::new(umiddle_core::RuntimeId(0), 1), "Camera")
                .platform("bluetooth")
                .build();
        canvas.icons.push(Icon {
            profile,
            position: (0, 0),
        });
        canvas.wires.push(Wire {
            src: PortRef::new(TranslatorId::new(umiddle_core::RuntimeId(0), 1), "out"),
            dst: PortRef::new(TranslatorId::new(umiddle_core::RuntimeId(0), 2), "in"),
            connection: None,
        });
        let text = canvas.render_ascii();
        assert!(text.contains("Camera"));
        assert!(text.contains("~~>"), "unestablished wire drawn dashed");
        assert!(canvas.icon_by_name("Cam").is_some());
        assert!(canvas.icon_by_name("Printer").is_none());
    }
}
