//! Integration tests for the paper's applications: the Pads scenario
//! with twenty-two devices (Figure 8) and the G2 UI atlas scenario
//! (Figure 9).

use std::cell::RefCell;
use std::rc::Rc;

use platform_bluetooth::BipCamera;
use platform_upnp::{AirconLogic, ClockLogic, LightLogic, MediaRendererLogic, UpnpDevice};
use simnet::{Ctx, ProcId, Process, SegmentConfig, SimDuration, SimTime, World};
use umiddle_apps::{Atlas, Canvas, G2Command, G2Ui, GeoKind, Pads, PadsCommand, Position};
use umiddle_bridges::{behaviors, BluetoothMapper, NativeService, UpnpMapper};
use umiddle_core::{Direction, RuntimeConfig, RuntimeId, Shape, UMessage, UmiddleRuntime};
use umiddle_usdl::UsdlLibrary;

/// A one-shot process that sends a command to another process at a
/// given virtual time.
struct At<T: Clone + 'static> {
    when: SimDuration,
    to: ProcId,
    what: T,
}

impl<T: Clone + 'static> Process for At<T> {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let when = self.when;
        ctx.set_timer(when, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        ctx.send_local(self.to, self.what.clone());
    }
}

fn native_shape_out(mime: &str) -> Shape {
    Shape::builder()
        .digital("out", Direction::Output, mime.parse().unwrap())
        .build()
        .unwrap()
}

fn native_shape_in(mime: &str) -> Shape {
    Shape::builder()
        .digital("in", Direction::Input, mime.parse().unwrap())
        .build()
        .unwrap()
}

/// The Figure-8 configuration: twenty-two devices — one Bluetooth, three
/// UPnP, eighteen native uMiddle services — all visible as Pads icons,
/// with working hot-wiring.
#[test]
fn pads_with_twenty_two_devices() {
    let mut world = World::new(201);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let pico = world.add_segment(SegmentConfig::bluetooth_piconet());
    let h1 = world.add_node("h1");
    world.attach(h1, hub).unwrap();
    world.attach(h1, pico).unwrap();
    let rt = world.add_process(
        h1,
        Box::new(UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(0)))),
    );

    // One Bluetooth device.
    let cam_node = world.add_node("camera");
    world.attach(cam_node, pico).unwrap();
    world.add_process(
        cam_node,
        Box::new(BipCamera::new("Pocket Camera", 1, 8_000)),
    );
    world.add_process(
        h1,
        Box::new(BluetoothMapper::with_defaults(rt, UsdlLibrary::bundled())),
    );

    // Three UPnP devices.
    let upnp_node = world.add_node("upnp-devices");
    world.attach(upnp_node, hub).unwrap();
    world.add_process(
        upnp_node,
        Box::new(UpnpDevice::new(
            Box::new(ClockLogic::new("Wall Clock", "uuid:clk")),
            5000,
        )),
    );
    world.add_process(
        upnp_node,
        Box::new(UpnpDevice::new(
            Box::new(LightLogic::new("Desk Light", "uuid:lgt")),
            5001,
        )),
    );
    world.add_process(
        upnp_node,
        Box::new(UpnpDevice::new(
            Box::new(AirconLogic::new("Window AC", "uuid:ac")),
            5002,
        )),
    );
    world.add_process(
        h1,
        Box::new(UpnpMapper::with_defaults(rt, UsdlLibrary::bundled())),
    );

    // Eighteen native uMiddle services.
    let recorder = behaviors::Recorder::new();
    let received = Rc::clone(&recorder.received);
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "native-sink-0",
            native_shape_in("text/plain"),
            rt,
            Box::new(recorder),
        )),
    );
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "native-src-0",
            native_shape_out("text/plain"),
            rt,
            Box::new(behaviors::PeriodicSource::new(
                "out",
                SimDuration::from_secs(5),
                0,
                |i| UMessage::text(format!("tick {i}")),
            )),
        )),
    );
    for i in 1..9 {
        world.add_process(
            h1,
            Box::new(NativeService::new(
                &format!("native-src-{i}"),
                native_shape_out("text/plain"),
                rt,
                Box::new(behaviors::Echo::new("out")),
            )),
        );
        world.add_process(
            h1,
            Box::new(NativeService::new(
                &format!("native-sink-{i}"),
                native_shape_in("text/plain"),
                rt,
                Box::new(behaviors::Recorder::new()),
            )),
        );
    }

    // Pads itself.
    let pads = Pads::new(rt);
    let canvas: Rc<RefCell<Canvas>> = pads.canvas_handle();
    let pads_proc = world.add_process(h1, Box::new(pads));

    // Hot-wire: the periodic source into sink 0 (drawn early; Pads defers
    // until both icons exist), and an invalid wire that must be rejected.
    world.add_process(
        h1,
        Box::new(At {
            when: SimDuration::from_secs(1),
            to: pads_proc,
            what: PadsCommand::DrawWire {
                src_name: "native-src-0".to_owned(),
                src_port: "out".to_owned(),
                dst_name: "native-sink-0".to_owned(),
                dst_port: "in".to_owned(),
            },
        }),
    );
    world.add_process(
        h1,
        Box::new(At {
            when: SimDuration::from_secs(20),
            to: pads_proc,
            what: PadsCommand::DrawWire {
                src_name: "native-sink-0".to_owned(), // an input, not an output
                src_port: "in".to_owned(),
                dst_name: "native-src-0".to_owned(),
                dst_port: "out".to_owned(),
            },
        }),
    );

    world.run_until(SimTime::from_secs(60));
    let canvas = canvas.borrow();
    assert_eq!(
        canvas.icons.len(),
        22,
        "twenty-two icons:\n{}",
        canvas.render_ascii()
    );
    // The valid wire was established...
    assert_eq!(canvas.wires.len(), 1);
    assert!(canvas.wires[0].connection.is_some());
    // ...and messages flow through it.
    assert!(!received.borrow().is_empty(), "sink received ticks");
    // The invalid wire was rejected with a reason.
    assert_eq!(canvas.rejected.len(), 1);
    assert!(canvas.rejected[0].2.contains("not an output"));
    // Icon census matches the paper: 1 bluetooth + 3 upnp + 18 native.
    let by_platform = |p: &str| {
        canvas
            .icons
            .iter()
            .filter(|i| i.profile.platform() == p)
            .count()
    };
    assert_eq!(by_platform("bluetooth"), 1);
    assert_eq!(by_platform("upnp"), 3);
    assert_eq!(by_platform("umiddle"), 18);
}

/// The Figure-9 scenario: co-locating a camera and a TV triggers
/// geoplay; moving them apart tears it down; a storage gadget triggers
/// geostore.
#[test]
fn g2ui_geoplay_and_geostore() {
    let mut world = World::new(202);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let pico = world.add_segment(SegmentConfig::bluetooth_piconet());
    let h1 = world.add_node("h1");
    world.attach(h1, hub).unwrap();
    world.attach(h1, pico).unwrap();
    let rt = world.add_process(
        h1,
        Box::new(UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(0)))),
    );

    // Camera (Bluetooth) and TV (UPnP).
    let cam_node = world.add_node("camera");
    world.attach(cam_node, pico).unwrap();
    world.add_process(
        cam_node,
        Box::new(BipCamera::new("Pocket Camera", 1, 8_000)),
    );
    world.add_process(
        h1,
        Box::new(BluetoothMapper::with_defaults(rt, UsdlLibrary::bundled())),
    );
    let tv_node = world.add_node("tv");
    world.attach(tv_node, hub).unwrap();
    world.add_process(
        tv_node,
        Box::new(UpnpDevice::new(
            Box::new(MediaRendererLogic::new("Living Room TV", "uuid:tv")),
            5000,
        )),
    );
    world.add_process(
        h1,
        Box::new(UpnpMapper::with_defaults(rt, UsdlLibrary::bundled())),
    );

    // A native storage album.
    let album_shape = Shape::builder()
        .digital("store-in", Direction::Input, "image/*".parse().unwrap())
        .build()
        .unwrap();
    let album_recorder = behaviors::Recorder::new();
    let album_received = Rc::clone(&album_recorder.received);
    world.add_process(
        h1,
        Box::new(
            NativeService::new("Photo Album", album_shape, rt, Box::new(album_recorder))
                .with_attr("category", "storage"),
        ),
    );
    let _ = album_received;

    let g2 = G2Ui::new(rt, 5.0);
    let atlas: Rc<RefCell<Atlas>> = g2.atlas_handle();
    let g2_proc = world.add_process(h1, Box::new(g2));

    // Timeline: place TV at origin; camera near it (co-located) at 30 s;
    // move camera away at 60 s; co-locate camera with the album at 70 s.
    for (when, cmd) in [
        (
            25,
            G2Command::Place {
                name: "Living Room TV".to_owned(),
                position: Position::new(0.0, 0.0),
            },
        ),
        (
            30,
            G2Command::Place {
                name: "Pocket Camera".to_owned(),
                position: Position::new(2.0, 1.0),
            },
        ),
        (
            60,
            G2Command::Place {
                name: "Pocket Camera".to_owned(),
                position: Position::new(100.0, 100.0),
            },
        ),
        (
            70,
            G2Command::Place {
                name: "Photo Album".to_owned(),
                position: Position::new(99.0, 100.0),
            },
        ),
    ] {
        world.add_process(
            h1,
            Box::new(At {
                when: SimDuration::from_secs(when),
                to: g2_proc,
                what: cmd,
            }),
        );
    }

    world.run_until(SimTime::from_secs(50));
    {
        let atlas = atlas.borrow();
        assert_eq!(atlas.compositions.len(), 1, "log: {:?}", atlas.log);
        assert_eq!(atlas.compositions[0].kind, GeoKind::Geoplay);
        assert!(atlas.compositions[0].connection.is_some());
    }

    world.run_until(SimTime::from_secs(65));
    {
        let atlas = atlas.borrow();
        assert!(
            atlas.compositions.is_empty(),
            "geoplay torn down after the move: {:?}",
            atlas.log
        );
    }

    world.run_until(SimTime::from_secs(90));
    {
        let atlas = atlas.borrow();
        assert_eq!(atlas.compositions.len(), 1, "log: {:?}", atlas.log);
        assert_eq!(atlas.compositions[0].kind, GeoKind::Geostore);
    }
}

/// Removing a wire disconnects the underlying path: messages stop.
#[test]
fn pads_remove_wire_stops_flow() {
    let mut world = World::new(203);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let h1 = world.add_node("h1");
    world.attach(h1, hub).unwrap();
    let rt = world.add_process(
        h1,
        Box::new(UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(0)))),
    );
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "ticker",
            native_shape_out("text/plain"),
            rt,
            Box::new(behaviors::PeriodicSource::new(
                "out",
                SimDuration::from_secs(2),
                0,
                |i| UMessage::text(format!("t{i}")),
            )),
        )),
    );
    let recorder = behaviors::Recorder::new();
    let received = Rc::clone(&recorder.received);
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "deck",
            native_shape_in("text/plain"),
            rt,
            Box::new(recorder),
        )),
    );
    let pads = Pads::new(rt);
    let canvas = pads.canvas_handle();
    let pads_proc = world.add_process(h1, Box::new(pads));
    world.add_process(
        h1,
        Box::new(At {
            when: SimDuration::from_secs(1),
            to: pads_proc,
            what: PadsCommand::DrawWire {
                src_name: "ticker".to_owned(),
                src_port: "out".to_owned(),
                dst_name: "deck".to_owned(),
                dst_port: "in".to_owned(),
            },
        }),
    );
    world.add_process(
        h1,
        Box::new(At {
            when: SimDuration::from_secs(21),
            to: pads_proc,
            what: PadsCommand::RemoveWire { index: 0 },
        }),
    );
    world.run_until(SimTime::from_secs(60));
    let n = received.borrow().len();
    // ~9 ticks before removal at t=21; nothing after (small slack).
    assert!((8..=11).contains(&n), "flow stopped after RemoveWire: {n}");
    assert!(canvas.borrow().wires.is_empty(), "wire removed from canvas");
}

/// Removing a gadget from the atlas tears down its compositions.
#[test]
fn g2ui_remove_gadget_tears_down() {
    let mut world = World::new(204);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let h1 = world.add_node("h1");
    world.attach(h1, hub).unwrap();
    let rt = world.add_process(
        h1,
        Box::new(UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(0)))),
    );
    // Native camera (capture role) and album (storage role).
    let cam_shape = Shape::builder()
        .digital(
            "image-out",
            Direction::Output,
            "image/jpeg".parse().unwrap(),
        )
        .build()
        .unwrap();
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "Cam",
            cam_shape,
            rt,
            Box::new(behaviors::Recorder::new()),
        )),
    );
    let album_shape = Shape::builder()
        .digital("store-in", Direction::Input, "image/*".parse().unwrap())
        .build()
        .unwrap();
    world.add_process(
        h1,
        Box::new(
            NativeService::new(
                "Album",
                album_shape,
                rt,
                Box::new(behaviors::Recorder::new()),
            )
            .with_attr("category", "storage"),
        ),
    );
    let g2 = G2Ui::new(rt, 5.0);
    let atlas = g2.atlas_handle();
    let g2_proc = world.add_process(h1, Box::new(g2));
    for (when, cmd) in [
        (
            5,
            G2Command::Place {
                name: "Cam".to_owned(),
                position: Position::new(0.0, 0.0),
            },
        ),
        (
            6,
            G2Command::Place {
                name: "Album".to_owned(),
                position: Position::new(1.0, 0.0),
            },
        ),
        (
            20,
            G2Command::Remove {
                name: "Album".to_owned(),
            },
        ),
    ] {
        world.add_process(
            h1,
            Box::new(At {
                when: SimDuration::from_secs(when),
                to: g2_proc,
                what: cmd,
            }),
        );
    }
    world.run_until(SimTime::from_secs(15));
    assert_eq!(
        atlas.borrow().compositions.len(),
        1,
        "{:?}",
        atlas.borrow().log
    );
    world.run_until(SimTime::from_secs(30));
    assert!(
        atlas.borrow().compositions.is_empty(),
        "{:?}",
        atlas.borrow().log
    );
}
