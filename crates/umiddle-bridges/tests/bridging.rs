//! End-to-end bridging tests: native devices on their own platforms,
//! mapped into uMiddle and wired together across platform boundaries.

use std::cell::RefCell;
use std::rc::Rc;

use platform_bluetooth::{BipCamera, HidpMouse, MouseConfig};
use platform_mediabroker::MediaBroker;
use platform_motes::{BaseStation, Mote};
use platform_rmi::{RmiObjectServer, RmiRegistry, REGISTRY_PORT};
use platform_upnp::{LightLogic, MediaRendererLogic, UpnpDevice};
use platform_webservices::WsServer;
use simnet::{
    Addr, Ctx, LocalMessage, NodeId, ProcId, Process, SegmentConfig, SimDuration, SimTime, World,
};
use umiddle_bridges::{
    behaviors, BluetoothMapper, MediaBrokerMapper, MotesMapper, NativeService, RmiMapper,
    UpnpMapper, WsMapper,
};
use umiddle_core::{
    Direction, DirectoryEvent, PortRef, QosPolicy, Query, RuntimeClient, RuntimeConfig,
    RuntimeEvent, RuntimeId, Shape, UMessage, UmiddleRuntime,
};
use umiddle_usdl::UsdlLibrary;

/// A wiring rule: connect `src` to `dst` when both appear.
#[derive(Debug, Clone)]
struct WireRule {
    src_name: String,
    src_port: String,
    dst_name: String,
    dst_port: String,
}

/// An application that watches the directory and wires translators
/// together by (substring of) name.
struct Wirer {
    runtime: ProcId,
    client: Option<RuntimeClient>,
    rules: Vec<WireRule>,
    /// Resolved ports: (rule idx, src, dst).
    srcs: Vec<Option<PortRef>>,
    dsts: Vec<Option<PortRef>>,
    wired: Vec<bool>,
    connected: Rc<RefCell<u32>>,
}

impl Wirer {
    fn new(runtime: ProcId, rules: Vec<WireRule>) -> Wirer {
        let n = rules.len();
        Wirer {
            runtime,
            client: None,
            rules,
            srcs: vec![None; n],
            dsts: vec![None; n],
            wired: vec![false; n],
            connected: Rc::new(RefCell::new(0)),
        }
    }

    fn try_wire(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.rules.len() {
            if self.wired[i] {
                continue;
            }
            if let (Some(src), Some(dst)) = (self.srcs[i], self.dsts[i]) {
                self.wired[i] = true;
                self.client.as_mut().expect("client set").connect_ports(
                    ctx,
                    src,
                    dst,
                    QosPolicy::unbounded(),
                );
            }
        }
    }
}

impl Process for Wirer {
    fn name(&self) -> &str {
        "wirer"
    }
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let client = RuntimeClient::new(self.runtime);
        client.add_listener(ctx, Query::All);
        self.client = Some(client);
    }
    fn on_local(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
        let Ok(event) = msg.downcast::<RuntimeEvent>() else {
            return;
        };
        match *event {
            RuntimeEvent::Directory(DirectoryEvent::Appeared(profile)) => {
                for (i, rule) in self.rules.iter().enumerate() {
                    if profile.name().contains(&rule.src_name) {
                        self.srcs[i] = Some(PortRef::new(profile.id(), rule.src_port.clone()));
                    }
                    if profile.name().contains(&rule.dst_name) {
                        self.dsts[i] = Some(PortRef::new(profile.id(), rule.dst_port.clone()));
                    }
                }
                self.try_wire(ctx);
            }
            RuntimeEvent::Connected { .. } => {
                *self.connected.borrow_mut() += 1;
            }
            RuntimeEvent::ConnectFailed { reason, .. } => {
                panic!("wiring failed: {reason}");
            }
            _ => {}
        }
    }
}

fn add_runtime(world: &mut World, node: NodeId, id: u32) -> ProcId {
    world.add_process(
        node,
        Box::new(UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(id)))),
    )
}

fn recorder_shape(mime: &str) -> Shape {
    Shape::builder()
        .digital("in", Direction::Input, mime.parse().unwrap())
        .build()
        .unwrap()
}

/// The paper's flagship scenario: a Bluetooth BIP camera bridged to a
/// UPnP MediaRenderer TV, triggered by a native uMiddle button.
#[test]
fn camera_to_tv_across_platforms() {
    let mut world = World::new(101);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let pico = world.add_segment(SegmentConfig::bluetooth_piconet());

    // H1: runtime + Bluetooth mapper (attached to both segments).
    let h1 = world.add_node("h1");
    world.attach(h1, hub).unwrap();
    world.attach(h1, pico).unwrap();
    let rt1 = add_runtime(&mut world, h1, 0);

    // H2: runtime + UPnP mapper.
    let h2 = world.add_node("h2");
    world.attach(h2, hub).unwrap();
    let rt2 = add_runtime(&mut world, h2, 1);

    // Native devices.
    let cam_node = world.add_node("camera");
    world.attach(cam_node, pico).unwrap();
    world.add_process(
        cam_node,
        Box::new(BipCamera::new("Pocket Camera", 2, 20_000)),
    );

    let tv_node = world.add_node("tv");
    world.attach(tv_node, hub).unwrap();
    world.add_process(
        tv_node,
        Box::new(UpnpDevice::new(
            Box::new(MediaRendererLogic::new("Living Room TV", "uuid:tv")),
            5000,
        )),
    );

    // Mappers (after devices, order does not matter).
    let bt = BluetoothMapper::with_defaults(rt1, UsdlLibrary::bundled());
    let bt_stats = bt.stats_handle();
    world.add_process(h1, Box::new(bt));
    let up = UpnpMapper::with_defaults(rt2, UsdlLibrary::bundled());
    let up_stats = up.stats_handle();
    world.add_process(h2, Box::new(up));

    // A native button that "presses" every 5 s starting late enough for
    // discovery and wiring to settle.
    let button_shape = Shape::builder()
        .digital("press", Direction::Output, "text/plain".parse().unwrap())
        .build()
        .unwrap();
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "Shutter Button",
            button_shape,
            rt1,
            Box::new(behaviors::PeriodicSource::new(
                "press",
                SimDuration::from_secs(20),
                3,
                |_| UMessage::text("snap"),
            )),
        )),
    );

    // Wire button -> camera.capture and camera.image-out -> tv.media-in.
    world.add_process(
        h1,
        Box::new(Wirer::new(
            rt1,
            vec![
                WireRule {
                    src_name: "Shutter Button".to_owned(),
                    src_port: "press".to_owned(),
                    dst_name: "Pocket Camera".to_owned(),
                    dst_port: "capture".to_owned(),
                },
                WireRule {
                    src_name: "Pocket Camera".to_owned(),
                    src_port: "image-out".to_owned(),
                    dst_name: "Living Room TV".to_owned(),
                    dst_port: "media-in".to_owned(),
                },
            ],
        )),
    );

    world.run_until(SimTime::from_secs(90));

    assert!(
        !bt_stats.borrow().mappings.is_empty(),
        "camera mapped: {:?}",
        bt_stats.borrow()
    );
    assert!(
        !up_stats.borrow().mappings.is_empty(),
        "tv mapped: {:?}",
        up_stats.borrow()
    );
    // The TV's RenderMedia action actually executed on the native device.
    let renders = world.trace().counter("upnp.actions");
    assert!(renders >= 1, "TV rendered {renders} frames");
    // And images crossed the bridge (shutter -> pull -> emit).
    assert!(
        world.trace().counter("bt.bip_captures") >= 1,
        "camera captured"
    );
}

/// §5.2's device-level scenario: the Bluetooth mouse's clicks flow to a
/// native recorder.
#[test]
fn mouse_clicks_reach_a_native_recorder() {
    let mut world = World::new(102);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let pico = world.add_segment(SegmentConfig::bluetooth_piconet());
    let h1 = world.add_node("h1");
    world.attach(h1, hub).unwrap();
    world.attach(h1, pico).unwrap();
    let rt = add_runtime(&mut world, h1, 0);

    let mouse_node = world.add_node("mouse");
    world.attach(mouse_node, pico).unwrap();
    world.add_process(
        mouse_node,
        Box::new(HidpMouse::new(MouseConfig {
            name: "HIDP Mouse".to_owned(),
            click_interval: Some(SimDuration::from_millis(400)),
            motion_interval: None,
            click_limit: 5,
        })),
    );

    let bt = BluetoothMapper::with_defaults(rt, UsdlLibrary::bundled());
    world.add_process(h1, Box::new(bt));

    let recorder = behaviors::Recorder::new();
    let received = Rc::clone(&recorder.received);
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "Click Recorder",
            recorder_shape("text/plain"),
            rt,
            Box::new(recorder),
        )),
    );

    world.add_process(
        h1,
        Box::new(Wirer::new(
            rt,
            vec![WireRule {
                src_name: "HIDP Mouse".to_owned(),
                src_port: "clicks".to_owned(),
                dst_name: "Click Recorder".to_owned(),
                dst_port: "in".to_owned(),
            }],
        )),
    );

    world.run_until(SimTime::from_secs(60));
    let received = received.borrow();
    // 5 clicks = 5 presses + 5 releases; wiring may miss early ones.
    assert!(
        received.len() >= 6,
        "recorder saw {} click events",
        received.len()
    );
    assert!(received
        .iter()
        .all(|(_, m)| m.body_text() == Some("press") || m.body_text() == Some("release")));
    assert!(world.trace().counter("mapper.bt.hid_translated") >= 6);
}

/// RMI echo through uMiddle: a native source feeds the RMI translator's
/// request port; the echoed responses land in a recorder.
#[test]
fn rmi_echo_bridged() {
    let mut world = World::new(103);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let h1 = world.add_node("h1");
    let reg_node = world.add_node("registry");
    let srv_node = world.add_node("rmi-server");
    for n in [h1, reg_node, srv_node] {
        world.attach(n, hub).unwrap();
    }
    let rt = add_runtime(&mut world, h1, 0);
    world.add_process(reg_node, Box::new(RmiRegistry::new()));
    let registry = Addr::new(reg_node, REGISTRY_PORT);
    world.add_process(srv_node, Box::new(RmiObjectServer::echo(2099, registry)));
    world.add_process(
        h1,
        Box::new(RmiMapper::new(
            rt,
            UsdlLibrary::bundled(),
            registry,
            vec!["EchoService".to_owned()],
        )),
    );

    // Source: 1400-byte messages, like the paper's transport benchmark.
    let src_shape = Shape::builder()
        .digital(
            "out",
            Direction::Output,
            "application/octet-stream".parse().unwrap(),
        )
        .build()
        .unwrap();
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "Payload Source",
            src_shape,
            rt,
            Box::new(behaviors::PeriodicSource::new(
                "out",
                SimDuration::from_secs(10),
                4,
                |i| {
                    UMessage::new(
                        "application/octet-stream".parse().unwrap(),
                        vec![i as u8; 1400],
                    )
                },
            )),
        )),
    );
    let recorder = behaviors::Recorder::new();
    let received = Rc::clone(&recorder.received);
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "Echo Recorder",
            recorder_shape("application/octet-stream"),
            rt,
            Box::new(recorder),
        )),
    );
    world.add_process(
        h1,
        Box::new(Wirer::new(
            rt,
            vec![
                WireRule {
                    src_name: "Payload Source".to_owned(),
                    src_port: "out".to_owned(),
                    dst_name: "EchoService".to_owned(),
                    dst_port: "request".to_owned(),
                },
                WireRule {
                    src_name: "EchoService".to_owned(),
                    src_port: "response".to_owned(),
                    dst_name: "Echo Recorder".to_owned(),
                    dst_port: "in".to_owned(),
                },
            ],
        )),
    );

    world.run_until(SimTime::from_secs(60));
    let received = received.borrow();
    assert!(
        received.len() >= 2,
        "echoed responses recorded: {}",
        received.len()
    );
    assert!(received.iter().all(|(_, m)| m.body().len() == 1400));
}

/// Motes readings flow to a recorder via per-mote translators.
#[test]
fn mote_readings_bridged() {
    let mut world = World::new(104);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let radio = world.add_segment(SegmentConfig::mote_radio());
    let h1 = world.add_node("h1");
    world.attach(h1, hub).unwrap();
    world.attach(h1, radio).unwrap();
    let rt = add_runtime(&mut world, h1, 0);

    for i in 0..2 {
        let m_node = world.add_node(format!("mote{i}"));
        world.attach(m_node, radio).unwrap();
        world.add_process(
            m_node,
            Box::new(Mote::new(i as u16 + 1, SimDuration::from_secs(2))),
        );
    }

    let mapper = MotesMapper::new(rt, UsdlLibrary::bundled(), None);
    let mapper_stats = mapper.stats_handle();
    let mapper_proc = world.add_process(h1, Box::new(mapper));
    world.add_process(h1, Box::new(BaseStation::new(Some(mapper_proc))));

    let recorder = behaviors::Recorder::new();
    let received = Rc::clone(&recorder.received);
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "Temp Recorder",
            recorder_shape("text/plain"),
            rt,
            Box::new(recorder),
        )),
    );
    world.add_process(
        h1,
        Box::new(Wirer::new(
            rt,
            vec![WireRule {
                src_name: "Mote 1".to_owned(),
                src_port: "temperature".to_owned(),
                dst_name: "Temp Recorder".to_owned(),
                dst_port: "in".to_owned(),
            }],
        )),
    );

    world.run_until(SimTime::from_secs(60));
    assert_eq!(mapper_stats.borrow().mappings.len(), 2, "both motes mapped");
    let received = received.borrow();
    assert!(
        received.len() >= 5,
        "temperature readings recorded: {}",
        received.len()
    );
}

/// MediaBroker channels and web services both appear as translators.
#[test]
fn mediabroker_and_webservice_mapped() {
    let mut world = World::new(105);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let h1 = world.add_node("h1");
    let mb_node = world.add_node("broker");
    let ws_node = world.add_node("ws");
    for n in [h1, mb_node, ws_node] {
        world.attach(n, hub).unwrap();
    }
    let rt = add_runtime(&mut world, h1, 0);
    world.add_process(mb_node, Box::new(MediaBroker::new()));
    world.add_process(ws_node, Box::new(WsServer::logger("Event Log", 8080)));

    // A raw MB producer so the roster has a channel to discover.
    struct RawProducer {
        broker: Addr,
    }
    impl Process for RawProducer {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.connect(self.broker).unwrap();
        }
        fn on_stream(
            &mut self,
            ctx: &mut Ctx<'_>,
            stream: simnet::StreamId,
            event: simnet::StreamEvent,
        ) {
            if matches!(event, simnet::StreamEvent::Connected) {
                let _ = ctx.stream_send(
                    stream,
                    platform_mediabroker::MbFrame::Produce {
                        channel: "webcam".to_owned(),
                        media_type: "application/octet-stream".to_owned(),
                    }
                    .encode_framed(),
                );
            }
        }
    }
    let broker_addr = Addr::new(mb_node, platform_mediabroker::BROKER_PORT);
    world.add_process(
        mb_node,
        Box::new(RawProducer {
            broker: broker_addr,
        }),
    );

    let mb_mapper = MediaBrokerMapper::new(rt, UsdlLibrary::bundled(), broker_addr, vec![]);
    let mb_stats = mb_mapper.stats_handle();
    world.add_process(h1, Box::new(mb_mapper));

    let ws_mapper = WsMapper::new(rt, UsdlLibrary::bundled(), vec![Addr::new(ws_node, 8080)]);
    let ws_stats = ws_mapper.stats_handle();
    world.add_process(h1, Box::new(ws_mapper));

    world.run_until(SimTime::from_secs(30));
    assert!(
        mb_stats
            .borrow()
            .mappings
            .iter()
            .any(|(_, name, _)| name.contains("webcam")),
        "mb channel mapped: {:?}",
        mb_stats.borrow().mappings
    );
    assert!(
        ws_stats
            .borrow()
            .mappings
            .iter()
            .any(|(kind, _, _)| kind == "logger"),
        "ws mapped: {:?}",
        ws_stats.borrow().mappings
    );
}

/// The UPnP light switch controlled through uMiddle — §5.2's scenario.
#[test]
fn upnp_light_switch_through_umiddle() {
    let mut world = World::new(106);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let h1 = world.add_node("h1");
    let light_node = world.add_node("light");
    world.attach(h1, hub).unwrap();
    world.attach(light_node, hub).unwrap();
    let rt = add_runtime(&mut world, h1, 0);
    world.add_process(
        light_node,
        Box::new(UpnpDevice::new(
            Box::new(LightLogic::new("Hall Light", "uuid:hall")),
            5000,
        )),
    );
    world.add_process(
        h1,
        Box::new(UpnpMapper::with_defaults(rt, UsdlLibrary::bundled())),
    );

    // A switch app that sends "on" pulses into the light's switch-on port.
    let switch_shape = Shape::builder()
        .digital("toggle", Direction::Output, "text/plain".parse().unwrap())
        .build()
        .unwrap();
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "Wall Switch",
            switch_shape,
            rt,
            Box::new(behaviors::PeriodicSource::new(
                "toggle",
                SimDuration::from_secs(10),
                3,
                |_| UMessage::text("1"),
            )),
        )),
    );
    // Watch the light's power-state output.
    let recorder = behaviors::Recorder::new();
    let received = Rc::clone(&recorder.received);
    world.add_process(
        h1,
        Box::new(NativeService::new(
            "State Recorder",
            recorder_shape("text/plain"),
            rt,
            Box::new(recorder),
        )),
    );
    world.add_process(
        h1,
        Box::new(Wirer::new(
            rt,
            vec![
                WireRule {
                    src_name: "Wall Switch".to_owned(),
                    src_port: "toggle".to_owned(),
                    dst_name: "Hall Light".to_owned(),
                    dst_port: "switch-on".to_owned(),
                },
                WireRule {
                    src_name: "Hall Light".to_owned(),
                    src_port: "power-state".to_owned(),
                    dst_name: "State Recorder".to_owned(),
                    dst_port: "in".to_owned(),
                },
            ],
        )),
    );

    world.run_until(SimTime::from_secs(60));
    // The SetPower action ran on the native device...
    assert!(world.trace().counter("upnp.actions") >= 1);
    // ...and the resulting GENA event crossed back into the common space.
    let received = received.borrow();
    assert!(
        received.iter().any(|(_, m)| m.body_text() == Some("1")),
        "power-state=1 observed: {received:?}"
    );
}

/// The scattered-visibility extension (design 2-a): a *native* UPnP
/// control point — with no uMiddle code at all — discovers the exported
/// Bluetooth camera and triggers its shutter over plain SOAP.
#[test]
fn scattered_visibility_exports_camera_to_native_upnp() {
    use platform_upnp::{ControlPoint, CpEvent, SoapCall};
    use simnet::{Datagram, StreamEvent, StreamId};
    use umiddle_bridges::UpnpExporter;

    let mut world = World::new(107);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let pico = world.add_segment(SegmentConfig::bluetooth_piconet());
    let h1 = world.add_node("h1");
    world.attach(h1, hub).unwrap();
    world.attach(h1, pico).unwrap();
    let rt = add_runtime(&mut world, h1, 0);
    world.add_process(
        h1,
        Box::new(BluetoothMapper::with_defaults(rt, UsdlLibrary::bundled())),
    );
    let cam_node = world.add_node("camera");
    world.attach(cam_node, pico).unwrap();
    world.add_process(
        cam_node,
        Box::new(BipCamera::new("Pocket Camera", 1, 8_000)),
    );

    // The exporter projects Bluetooth translators back out as UPnP.
    world.add_process(
        h1,
        Box::new(UpnpExporter::new(
            rt,
            Query::Platform("bluetooth".to_owned()),
            6100,
        )),
    );

    // A COMPLETELY NATIVE UPnP control point on another node.
    struct NativeCp {
        cp: ControlPoint,
        fired: Rc<RefCell<u32>>,
    }
    impl Process for NativeCp {
        fn name(&self) -> &str {
            "native-upnp-cp"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.bind(7000).unwrap();
            let _ = ctx.join_group(platform_upnp::SSDP_GROUP);
            self.cp.listen_events(ctx, 7001);
            // Re-search periodically until the export appears.
            ctx.set_timer(SimDuration::from_secs(5), 1);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
            self.cp.search(ctx, "urn:umiddle:device:Exported:1", 7000);
            ctx.set_timer(SimDuration::from_secs(5), 1);
        }
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: Datagram) {
            if let Some(CpEvent::DeviceSeen { location, .. }) = self.cp.handle_ssdp(ctx, &d) {
                if *self.fired.borrow() == 0 {
                    *self.fired.borrow_mut() = 1;
                    let call = SoapCall::new("Exported", "SetCapture").with_arg("Value", "snap");
                    self.cp.invoke(ctx, location, &call, 1);
                }
            }
        }
        fn on_stream(&mut self, ctx: &mut Ctx<'_>, s: StreamId, e: StreamEvent) {
            for ev in self.cp.handle_stream(ctx, s, e) {
                if matches!(ev, CpEvent::ActionResult { .. }) {
                    *self.fired.borrow_mut() = 2;
                }
            }
        }
    }
    let fired = Rc::new(RefCell::new(0));
    let cp_node = world.add_node("native-cp");
    world.attach(cp_node, hub).unwrap();
    world.add_process(
        cp_node,
        Box::new(NativeCp {
            cp: ControlPoint::new(),
            fired: Rc::clone(&fired),
        }),
    );

    world.run_until(SimTime::from_secs(120));
    assert_eq!(*fired.borrow(), 2, "native CP invoked the exported action");
    // The SOAP call crossed uMiddle and fired the real Bluetooth shutter.
    assert!(
        world.trace().counter("bt.bip_captures") >= 1,
        "camera captured via native UPnP: {:?}",
        world.trace().counters().collect::<Vec<_>>()
    );
}
