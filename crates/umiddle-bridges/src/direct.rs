//! The **direct-translation baseline** (the paper's design 1-a).
//!
//! For the E4 ablation we implement what the paper argues against: a
//! translator hardwired to one *pair* of device types — here, the
//! Bluetooth BIP camera and the UPnP MediaRenderer TV. It speaks both
//! native protocols itself with no intermediary representation. The code
//! demonstrates the scaling problem concretely: every new pair needs
//! another such bridge, n(n−1) in total, versus one mediated translator
//! per type.

use std::collections::HashMap;

use platform_bluetooth::{
    image_pull_request, InquiryMessage, ObexGetClient, SdpPdu, INQUIRY_GROUP, PSM_SDP,
};
use platform_upnp::{ControlPoint, CpEvent, SoapCall};
use simnet::{Addr, Ctx, Datagram, NodeId, Process, SimDuration, StreamEvent, StreamId};

/// Counts translators required under each translation model for `n`
/// device types (the paper's §2.2.1 argument, as running code for E4).
pub fn translators_required(n: usize) -> TranslatorCount {
    TranslatorCount {
        device_types: n,
        direct: n.saturating_mul(n.saturating_sub(1)),
        mediated: n,
    }
}

/// Result of [`translators_required`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslatorCount {
    /// Number of device types considered.
    pub device_types: usize,
    /// Translators needed with direct translation: n(n−1) directed pairs.
    pub direct: usize,
    /// Translators needed with mediated translation: one per type.
    pub mediated: usize,
}

const TIMER_INQUIRY: u64 = 1;
const TIMER_PULL: u64 = 2;

/// A hardwired Bluetooth-BIP-camera → UPnP-MediaRenderer bridge with no
/// intermediary semantic space.
///
/// It periodically pulls the camera's newest image over OBEX and renders
/// it on the TV via SOAP. Exactly one device pair, fixed at compile time
/// — the point of the baseline.
pub struct DirectBipToRendererBridge {
    inquiry_port: u16,
    pull_interval: SimDuration,
    camera: Option<Addr>,
    renderer: Option<Addr>,
    sdp_streams: HashMap<StreamId, NodeId>,
    pulls: HashMap<StreamId, ObexGetClient>,
    cp: ControlPoint,
    /// Images delivered to the TV.
    pub delivered: u64,
    next_call: u64,
}

impl std::fmt::Debug for DirectBipToRendererBridge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirectBipToRendererBridge")
            .field("camera", &self.camera)
            .field("renderer", &self.renderer)
            .field("delivered", &self.delivered)
            .finish_non_exhaustive()
    }
}

impl DirectBipToRendererBridge {
    /// Creates the bridge. `inquiry_port` must be free on its node, which
    /// must be attached to both the piconet and the UPnP segment.
    pub fn new(inquiry_port: u16, pull_interval: SimDuration) -> DirectBipToRendererBridge {
        DirectBipToRendererBridge {
            inquiry_port,
            pull_interval,
            camera: None,
            renderer: None,
            sdp_streams: HashMap::new(),
            pulls: HashMap::new(),
            cp: ControlPoint::new(),
            delivered: 0,
            next_call: 1,
        }
    }

    fn try_pull(&mut self, ctx: &mut Ctx<'_>) {
        let (Some(camera), Some(_)) = (self.camera, self.renderer) else {
            return;
        };
        if let Ok(stream) = ctx.connect(camera) {
            self.pulls.insert(stream, ObexGetClient::new());
        }
    }

    fn render(&mut self, ctx: &mut Ctx<'_>, image: Vec<u8>) {
        let Some(renderer) = self.renderer else {
            return;
        };
        // Direct translation: BIP bytes straight into a SOAP argument.
        let call = SoapCall::new("AVTransport", "RenderMedia")
            .with_arg("Media", format!("[{} bytes]", image.len()));
        let call_id = self.next_call;
        self.next_call += 1;
        self.cp.invoke(ctx, renderer, &call, call_id);
        self.delivered += 1;
        ctx.bump("direct_bridge.delivered", 1);
    }
}

impl Process for DirectBipToRendererBridge {
    fn name(&self) -> &str {
        "direct-bip-renderer-bridge"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(self.inquiry_port).expect("bridge port free");
        let _ = ctx.join_group(INQUIRY_GROUP);
        let _ = ctx.join_group(platform_upnp::SSDP_GROUP);
        // Discover both sides with their native discovery protocols.
        let _ = ctx.multicast(
            self.inquiry_port,
            INQUIRY_GROUP,
            InquiryMessage::Inquiry.encode(),
        );
        self.cp.search(ctx, "ssdp:all", self.inquiry_port);
        let interval = self.pull_interval;
        ctx.set_timer(SimDuration::from_secs(10), TIMER_INQUIRY);
        ctx.set_timer(interval, TIMER_PULL);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TIMER_INQUIRY => {
                if self.camera.is_none() {
                    let _ = ctx.multicast(
                        self.inquiry_port,
                        INQUIRY_GROUP,
                        InquiryMessage::Inquiry.encode(),
                    );
                }
                if self.renderer.is_none() {
                    self.cp.search(ctx, "ssdp:all", self.inquiry_port);
                }
                ctx.set_timer(SimDuration::from_secs(10), TIMER_INQUIRY);
            }
            TIMER_PULL => {
                self.try_pull(ctx);
                let interval = self.pull_interval;
                ctx.set_timer(interval, TIMER_PULL);
            }
            _ => {}
        }
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        // Bluetooth inquiry responses.
        if let Some(InquiryMessage::Response { .. }) = InquiryMessage::decode(&dgram.data) {
            if self.camera.is_none() {
                let node = dgram.src.node;
                if let Ok(stream) = ctx.connect(Addr::new(node, PSM_SDP)) {
                    self.sdp_streams.insert(stream, node);
                }
            }
            return;
        }
        // SSDP traffic.
        if let Some(CpEvent::DeviceSeen {
            device_type,
            location,
            ..
        }) = self.cp.handle_ssdp(ctx, &dgram)
        {
            if device_type.contains("MediaRenderer") && self.renderer.is_none() {
                self.renderer = Some(location);
            }
        }
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
        if let Some(node) = self.sdp_streams.get(&stream).copied() {
            match event {
                StreamEvent::Connected => {
                    let req = SdpPdu::SearchRequest {
                        transaction: 1,
                        pattern: "bip-camera".to_owned(),
                    };
                    let _ = ctx.stream_send(stream, req.encode());
                }
                StreamEvent::Data(data) => {
                    if let Some(SdpPdu::SearchResponse { records, .. }) = SdpPdu::decode(&data) {
                        if let Some(r) = records.first() {
                            self.camera = Some(Addr::new(node, r.psm));
                        }
                    }
                    self.sdp_streams.remove(&stream);
                    ctx.stream_close(stream);
                }
                StreamEvent::Closed | StreamEvent::ConnectFailed => {
                    self.sdp_streams.remove(&stream);
                }
                _ => {}
            }
            return;
        }
        if self.pulls.contains_key(&stream) {
            match event {
                StreamEvent::Connected => {
                    let _ = ctx.stream_send(stream, image_pull_request(None));
                }
                StreamEvent::Data(data) => {
                    let done = match self.pulls.get_mut(&stream) {
                        Some(client) => client.push(&data),
                        None => return,
                    };
                    match done {
                        Ok(Some((_, image))) => {
                            self.pulls.remove(&stream);
                            ctx.stream_close(stream);
                            self.render(ctx, image);
                        }
                        Ok(None) => {}
                        Err(_) => {
                            self.pulls.remove(&stream);
                            ctx.stream_close(stream);
                        }
                    }
                }
                StreamEvent::Closed | StreamEvent::ConnectFailed => {
                    self.pulls.remove(&stream);
                }
                _ => {}
            }
            return;
        }
        // SOAP responses for RenderMedia.
        let _ = self.cp.handle_stream(ctx, stream, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translator_counts_match_the_papers_argument() {
        let c = translators_required(2);
        assert_eq!(c.direct, 2);
        assert_eq!(c.mediated, 2);
        let c = translators_required(10);
        assert_eq!(c.direct, 90);
        assert_eq!(c.mediated, 10);
        // The crossover the paper cares about: direct explodes.
        for n in 3..40 {
            let c = translators_required(n);
            assert!(c.direct > c.mediated);
        }
        assert_eq!(translators_required(0).direct, 0);
    }
}
