//! The UPnP mapper: service-level, transport-level and device-level
//! bridging for the UPnP platform.
//!
//! The mapper discovers native devices over SSDP, fetches and parses
//! their descriptions, instantiates generic USDL-parameterized
//! translators (paying the per-port/per-entity costs the paper's
//! Figure 10 measures), registers them with the local uMiddle runtime,
//! subscribes to GENA events for output ports, and proxies traffic both
//! ways: `Input` messages become SOAP actions, GENA property changes
//! become `Output` messages.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use platform_upnp::{ControlPoint, CpEvent, SoapCall, SoapResult};
use simnet::{
    Addr, Ctx, Datagram, LocalMessage, ProcId, Process, SimDuration, SimTime, StreamEvent, StreamId,
};
use umiddle_core::{
    ack_input_done, handle_input_done_echo, ConnectionId, RuntimeClient, RuntimeEvent, Symbol,
    TranslatorId, UMessage,
};
use umiddle_usdl::{UsdlDocument, UsdlLibrary};

use crate::calib;

/// Per-mapper statistics shared with tests and benchmarks.
#[derive(Debug, Clone, Default)]
pub struct MapperStats {
    /// `(device type, instance name, time from discovery to registration)`.
    pub mappings: Vec<(String, String, SimDuration)>,
    /// Actions invoked on native devices.
    pub actions: u64,
    /// Events translated to the common space.
    pub events: u64,
    /// Per-action latency: common-space input → native completion.
    pub action_latencies: Vec<SimDuration>,
    /// Per-signal translation latency: native event → common-space
    /// emission.
    pub translation_latencies: Vec<SimDuration>,
}

const TIMER_SEARCH: u64 = 1;
/// Periodic SSDP re-search interval.
const SEARCH_INTERVAL: SimDuration = SimDuration::from_secs(30);

#[derive(Debug)]
struct MappedDevice {
    usn: String,
    location: Addr,
    doc: UsdlDocument,
    friendly_name: String,
    translator: Option<TranslatorId>,
    seen_at: SimTime,
}

/// The UPnP mapper process. Co-locate it with a
/// [`UmiddleRuntime`](umiddle_core::UmiddleRuntime) on a node attached to
/// the UPnP segment.
pub struct UpnpMapper {
    runtime: ProcId,
    usdl: UsdlLibrary,
    cp: ControlPoint,
    reply_port: u16,
    gena_port: u16,
    client: Option<RuntimeClient>,
    /// usn → device state.
    devices: HashMap<String, MappedDevice>,
    /// registration token → usn.
    pending_regs: HashMap<u64, String>,
    /// translator → usn.
    by_translator: HashMap<TranslatorId, String>,
    /// SOAP call id → (connection, translator, input arrival time).
    pending_calls: HashMap<u64, (ConnectionId, TranslatorId, SimTime, simnet::SpanId)>,
    next_call: u64,
    stats: Rc<RefCell<MapperStats>>,
}

impl std::fmt::Debug for UpnpMapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpnpMapper")
            .field("devices", &self.devices.len())
            .finish_non_exhaustive()
    }
}

impl UpnpMapper {
    /// Creates a mapper talking to the given runtime, with USDL documents
    /// from `usdl`. `reply_port`/`gena_port` must be free on the node.
    pub fn new(runtime: ProcId, usdl: UsdlLibrary, reply_port: u16, gena_port: u16) -> UpnpMapper {
        UpnpMapper {
            runtime,
            usdl,
            cp: ControlPoint::new(),
            reply_port,
            gena_port,
            client: None,
            devices: HashMap::new(),
            pending_regs: HashMap::new(),
            by_translator: HashMap::new(),
            pending_calls: HashMap::new(),
            next_call: 1,
            stats: Rc::new(RefCell::new(MapperStats::default())),
        }
    }

    /// A mapper with default ports (5800/5801).
    pub fn with_defaults(runtime: ProcId, usdl: UsdlLibrary) -> UpnpMapper {
        UpnpMapper::new(runtime, usdl, 5800, 5801)
    }

    /// Shared statistics handle; clone before adding to the world.
    pub fn stats_handle(&self) -> Rc<RefCell<MapperStats>> {
        Rc::clone(&self.stats)
    }

    fn handle_cp_event(&mut self, ctx: &mut Ctx<'_>, event: CpEvent) {
        match event {
            CpEvent::DeviceSeen {
                usn,
                device_type,
                location,
            } => {
                if self.devices.contains_key(&usn) {
                    return;
                }
                let Some(doc) = self.usdl.get("upnp", &device_type) else {
                    ctx.bump("mapper.upnp.unknown_device_type", 1);
                    return;
                };
                self.devices.insert(
                    usn.clone(),
                    MappedDevice {
                        usn: usn.clone(),
                        location,
                        doc: doc.clone(),
                        friendly_name: String::new(),
                        translator: None,
                        seen_at: ctx.now(),
                    },
                );
                self.cp.fetch_description(ctx, location);
            }
            CpEvent::DeviceGone { usn } => {
                if let Some(dev) = self.devices.remove(&usn) {
                    if let Some(t) = dev.translator {
                        self.by_translator.remove(&t);
                        if let Some(client) = self.client.as_ref() {
                            client.unregister(ctx, t);
                        }
                    }
                }
            }
            CpEvent::Description { location, desc, .. } => {
                let Some((usn, doc, ports, entities)) = self
                    .devices
                    .values_mut()
                    .find(|d| d.location == location && d.translator.is_none())
                    .map(|d| {
                        d.friendly_name = desc.friendly_name.clone();
                        (
                            d.usn.clone(),
                            d.doc.clone(),
                            d.doc.ports().len(),
                            desc.services.len().saturating_sub(1),
                        )
                    })
                else {
                    return;
                };
                // The paper's dominant Figure-10 cost: instantiating the
                // translator's ports and hierarchy entities.
                ctx.busy(calib::instantiation_cost(ports, entities));
                let client = self.client.as_mut().expect("client created in on_start");
                let profile = doc.profile(Some(&desc.friendly_name));
                let me = ctx.me();
                let token = client.register(ctx, profile, me);
                self.pending_regs.insert(token, usn);
                // Subscribe to GENA events for services with statevar
                // bindings (output ports).
                let mut services: Vec<String> = Vec::new();
                for port in doc.ports() {
                    for binding in &port.bindings {
                        if binding.get("statevar").is_some() {
                            if let Some(service) = binding.get("service") {
                                if !services.iter().any(|s| s == service) {
                                    services.push(service.to_owned());
                                }
                            }
                        }
                    }
                }
                for service in services {
                    self.cp.subscribe(ctx, location, &service);
                }
            }
            CpEvent::ActionResult { call_id, result } => {
                if let Some((connection, translator, started, native_span)) =
                    self.pending_calls.remove(&call_id)
                {
                    ctx.span_end(native_span);
                    if let SoapResult::Fault { code, description } = &result {
                        ctx.trace(format!("SOAP fault {code}: {description}"));
                        ctx.bump("mapper.upnp.soap_faults", 1);
                    }
                    let mut stats = self.stats.borrow_mut();
                    stats.actions += 1;
                    stats
                        .action_latencies
                        .push(ctx.now().saturating_since(started));
                    drop(stats);
                    ctx.bump("mapper.upnp.actions_completed", 1);
                    ack_input_done(ctx, self.runtime, connection, translator);
                }
            }
            CpEvent::Event(notify) => {
                let Some(dev) = self.devices.get(&notify.device) else {
                    return;
                };
                let Some(translator) = dev.translator else {
                    return;
                };
                let doc = dev.doc.clone();
                for (var, value) in &notify.changes {
                    // Find the output port bound to this state variable.
                    let port = doc.ports().iter().find(|p| {
                        p.bindings.iter().any(|b| {
                            b.get("statevar") == Some(var.as_str())
                                && b.get("service").is_none_or(|s| s == notify.service)
                        })
                    });
                    if let Some(port) = port {
                        ctx.busy(calib::EVENT_TRANSLATION);
                        crate::obs::record_egress(ctx, "upnp", calib::EVENT_TRANSLATION);
                        self.stats.borrow_mut().events += 1;
                        let client = self.client.as_ref().expect("client set");
                        client.output(
                            ctx,
                            translator,
                            port.spec.name.clone(),
                            UMessage::text(value.clone()),
                        );
                    }
                }
            }
            CpEvent::Subscribed { .. } => {}
            CpEvent::Failed { context } => {
                ctx.bump("mapper.upnp.failures", 1);
                ctx.trace(format!("upnp mapper failure: {context}"));
            }
        }
    }

    fn handle_runtime_event(&mut self, ctx: &mut Ctx<'_>, event: RuntimeEvent) {
        match event {
            RuntimeEvent::Registered { token, translator } => {
                let Some(usn) = self.pending_regs.remove(&token) else {
                    return;
                };
                let Some(dev) = self.devices.get_mut(&usn) else {
                    return;
                };
                dev.translator = Some(translator);
                self.by_translator.insert(translator, usn.clone());
                let elapsed = ctx.now().saturating_since(dev.seen_at);
                self.stats.borrow_mut().mappings.push((
                    dev.doc.device_type().to_owned(),
                    dev.friendly_name.clone(),
                    elapsed,
                ));
                ctx.bump("mapper.upnp.mapped", 1);
                ctx.trace(format!(
                    "mapped {} ({}) in {}",
                    dev.friendly_name,
                    dev.doc.device_type(),
                    elapsed
                ));
            }
            RuntimeEvent::Input {
                translator,
                port,
                msg,
                connection,
            } => self.handle_input(ctx, translator, port, msg, connection),
            RuntimeEvent::InputBatch { inputs } => {
                for d in inputs {
                    self.handle_input(ctx, d.translator, d.port, d.msg, d.connection);
                }
            }
            _ => {}
        }
    }

    /// Translates one delivered input into a SOAP action invoke —
    /// called once per [`RuntimeEvent::Input`] and once per element of
    /// an [`RuntimeEvent::InputBatch`].
    fn handle_input(
        &mut self,
        ctx: &mut Ctx<'_>,
        translator: TranslatorId,
        port: Symbol,
        msg: UMessage,
        connection: ConnectionId,
    ) {
        let Some(usn) = self.by_translator.get(&translator) else {
            return;
        };
        let Some(dev) = self.devices.get(usn) else {
            return;
        };
        let Some(usdl_port) = dev.doc.port(&port) else {
            return;
        };
        let Some(binding) = usdl_port
            .bindings
            .iter()
            .find(|b| b.get("action").is_some())
        else {
            // No action binding: nothing to invoke.
            ack_input_done(ctx, self.runtime, connection, translator);
            return;
        };
        let service = binding.get("service").unwrap_or_default().to_owned();
        let action = binding.get("action").expect("filtered").to_owned();
        // Fixed value (e.g. SetPower=1) or the message body.
        let value = binding
            .get("value")
            .map(str::to_owned)
            .or_else(|| msg.body_text().map(str::to_owned))
            .unwrap_or_default();
        let mut call = SoapCall::new(&service, &action);
        if let Some(argument) = binding.get("argument") {
            call = call.with_arg(argument, value);
        }
        // The uMiddle share of the paper's 160 ms SetPower round
        // trip: translating the control request to an action
        // object. The invoke is deferred through a self-echo so
        // the translation time actually precedes the native call.
        ctx.busy(calib::CONTROL_TRANSLATION);
        crate::obs::record_hop(ctx, "upnp", connection, &port, calib::CONTROL_TRANSLATION);
        let call_id = self.next_call;
        self.next_call += 1;
        let location = dev.location;
        // Native-side span: open until the SOAP ActionResult
        // comes back, so the critical path separates uMiddle
        // translation from time spent inside the UPnP device.
        let native_span = ctx.span_begin(
            connection.corr(),
            "bridge.upnp.native",
            format!("action={action}"),
        );
        self.pending_calls
            .insert(call_id, (connection, translator, ctx.now(), native_span));
        let me = ctx.me();
        ctx.send_local(
            me,
            PendingInvoke {
                location,
                call,
                call_id,
            },
        );
    }
}

/// Self-echo carrying a translated SOAP call, delivered once the
/// mapper's modeled translation time has elapsed.
#[derive(Debug, Clone)]
struct PendingInvoke {
    location: Addr,
    call: SoapCall,
    call_id: u64,
}

impl Process for UpnpMapper {
    fn name(&self) -> &str {
        "upnp-mapper"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        crate::obs::announce(ctx, "upnp");
        ctx.bind(self.reply_port).expect("mapper reply port free");
        let _ = ctx.join_group(platform_upnp::SSDP_GROUP);
        self.cp.listen_events(ctx, self.gena_port);
        self.client = Some(RuntimeClient::new(self.runtime));
        self.cp.search(ctx, "ssdp:all", self.reply_port);
        ctx.set_timer(SEARCH_INTERVAL, TIMER_SEARCH);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TIMER_SEARCH {
            self.cp.search(ctx, "ssdp:all", self.reply_port);
            ctx.set_timer(SEARCH_INTERVAL, TIMER_SEARCH);
        }
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        if let Some(event) = self.cp.handle_ssdp(ctx, &dgram) {
            self.handle_cp_event(ctx, event);
        }
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
        let events = self.cp.handle_stream(ctx, stream, event);
        for ev in events {
            self.handle_cp_event(ctx, ev);
        }
    }

    fn on_local(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
        if handle_input_done_echo(ctx, &msg) {
            return;
        }
        let msg = match msg.downcast::<PendingInvoke>() {
            Ok(pending) => {
                self.cp
                    .invoke(ctx, pending.location, &pending.call, pending.call_id);
                return;
            }
            Err(original) => original,
        };
        if let Ok(event) = msg.downcast::<RuntimeEvent>() {
            self.handle_runtime_event(ctx, *event);
        }
    }
}
