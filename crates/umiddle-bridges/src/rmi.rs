//! The Java RMI mapper: registry polling + request/response translators.
//!
//! Discovery on RMI is registry lookup: the mapper polls the registry for
//! the object names it is configured to bridge, and registers a
//! translator per bound object. An `Input` on the translator's `request`
//! port becomes a remote `echo` call (marshaled Java-style); the return
//! value is emitted on the `response` port. This is the slow endpoint of
//! the paper's Figure 11.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use platform_rmi::{JavaValue, RmiClient, RmiClientEvent};
use simnet::{
    Addr, Ctx, LocalMessage, ProcId, Process, SimDuration, SimTime, StreamEvent, StreamId,
};
use umiddle_core::{
    ack_input_done, handle_input_done_echo, ConnectionId, MimeType, RuntimeClient, RuntimeEvent,
    Symbol, TranslatorId, UMessage,
};
use umiddle_usdl::UsdlLibrary;

use crate::calib;
use crate::upnp::MapperStats;

const TIMER_POLL: u64 = 1;

#[derive(Debug)]
struct RmiObject {
    name: String,
    addr: Option<Addr>,
    translator: Option<TranslatorId>,
    seen_at: SimTime,
}

/// The RMI mapper process.
pub struct RmiMapper {
    runtime: ProcId,
    usdl: UsdlLibrary,
    registry: Addr,
    object_names: Vec<String>,
    poll_interval: SimDuration,
    rmi: RmiClient,
    client: Option<RuntimeClient>,
    objects: Vec<RmiObject>,
    /// rmi call id → purpose.
    calls: HashMap<u64, RmiCall>,
    next_call: u64,
    pending_regs: HashMap<u64, usize>,
    by_translator: HashMap<TranslatorId, usize>,
    stats: Rc<RefCell<MapperStats>>,
}

#[derive(Debug)]
enum RmiCall {
    Lookup {
        object_idx: usize,
    },
    Invoke {
        translator: TranslatorId,
        connection: ConnectionId,
    },
}

impl std::fmt::Debug for RmiMapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RmiMapper")
            .field("objects", &self.objects.len())
            .finish_non_exhaustive()
    }
}

impl RmiMapper {
    /// Creates a mapper bridging the named remote objects.
    pub fn new(
        runtime: ProcId,
        usdl: UsdlLibrary,
        registry: Addr,
        object_names: Vec<String>,
    ) -> RmiMapper {
        RmiMapper {
            runtime,
            usdl,
            registry,
            object_names,
            poll_interval: SimDuration::from_secs(5),
            rmi: RmiClient::new(),
            client: None,
            objects: Vec::new(),
            calls: HashMap::new(),
            next_call: 1,
            pending_regs: HashMap::new(),
            by_translator: HashMap::new(),
            stats: Rc::new(RefCell::new(MapperStats::default())),
        }
    }

    /// Shared statistics handle.
    pub fn stats_handle(&self) -> Rc<RefCell<MapperStats>> {
        Rc::clone(&self.stats)
    }

    fn poll(&mut self, ctx: &mut Ctx<'_>) {
        for (idx, obj) in self.objects.iter().enumerate() {
            if obj.addr.is_none() {
                let call_id = self.next_call;
                self.next_call += 1;
                self.calls
                    .insert(call_id, RmiCall::Lookup { object_idx: idx });
                self.rmi.lookup(ctx, self.registry, &obj.name, call_id);
            }
        }
    }

    fn handle_rmi_event(&mut self, ctx: &mut Ctx<'_>, event: RmiClientEvent) {
        match event {
            RmiClientEvent::Resolved { call_id, addr } => {
                let Some(RmiCall::Lookup { object_idx }) = self.calls.remove(&call_id) else {
                    return;
                };
                let Some(obj) = self.objects.get_mut(object_idx) else {
                    return;
                };
                if obj.addr.is_some() {
                    return;
                }
                obj.addr = Some(addr);
                obj.seen_at = ctx.now();
                let Some(doc) = self.usdl.get("rmi", &obj.name) else {
                    ctx.bump("mapper.rmi.unknown_object", 1);
                    return;
                };
                let doc = doc.clone();
                ctx.busy(calib::instantiation_cost(doc.ports().len(), 0));
                let profile = doc.profile(Some(&format!("{} (RMI)", obj.name)));
                let client = self.client.as_mut().expect("client set");
                let me = ctx.me();
                let token = client.register(ctx, profile, me);
                self.pending_regs.insert(token, object_idx);
            }
            RmiClientEvent::Returned { call_id, result } => {
                let Some(RmiCall::Invoke {
                    translator,
                    connection,
                }) = self.calls.remove(&call_id)
                else {
                    return;
                };
                // Emit the echoed value on the response port.
                let body: simnet::Payload = match result {
                    JavaValue::Bytes(b) => b,
                    other => other.to_string().into_bytes().into(),
                };
                let mime: MimeType = "application/octet-stream".parse().expect("static");
                ctx.busy(calib::STREAM_TRANSLATION);
                crate::obs::record_egress(ctx, "rmi", calib::STREAM_TRANSLATION);
                self.stats.borrow_mut().actions += 1;
                let client = self.client.as_ref().expect("client set");
                client.output(ctx, translator, "response", UMessage::new(mime, body));
                ack_input_done(ctx, self.runtime, connection, translator);
            }
            RmiClientEvent::Raised { call_id, message } => {
                ctx.trace(format!("rmi exception: {message}"));
                if let Some(RmiCall::Invoke {
                    translator,
                    connection,
                }) = self.calls.remove(&call_id)
                {
                    ack_input_done(ctx, self.runtime, connection, translator);
                }
            }
            RmiClientEvent::Failed { call_id } => match self.calls.remove(&call_id) {
                Some(RmiCall::Invoke {
                    translator,
                    connection,
                }) => ack_input_done(ctx, self.runtime, connection, translator),
                Some(RmiCall::Lookup { .. }) | None => {}
            },
        }
    }

    fn handle_runtime_event(&mut self, ctx: &mut Ctx<'_>, event: RuntimeEvent) {
        match event {
            RuntimeEvent::Registered { token, translator } => {
                let Some(idx) = self.pending_regs.remove(&token) else {
                    return;
                };
                let Some(obj) = self.objects.get_mut(idx) else {
                    return;
                };
                obj.translator = Some(translator);
                self.by_translator.insert(translator, idx);
                let elapsed = ctx.now().saturating_since(obj.seen_at);
                self.stats.borrow_mut().mappings.push((
                    obj.name.clone(),
                    format!("{} (RMI)", obj.name),
                    elapsed,
                ));
                ctx.bump("mapper.rmi.mapped", 1);
            }
            RuntimeEvent::Input {
                translator,
                port,
                msg,
                connection,
            } => self.handle_input(ctx, translator, port, msg, connection),
            RuntimeEvent::InputBatch { inputs } => {
                for d in inputs {
                    self.handle_input(ctx, d.translator, d.port, d.msg, d.connection);
                }
            }
            _ => {}
        }
    }

    /// Translates one delivered input into a remote `echo` invocation —
    /// called once per [`RuntimeEvent::Input`] and once per element of
    /// an [`RuntimeEvent::InputBatch`].
    fn handle_input(
        &mut self,
        ctx: &mut Ctx<'_>,
        translator: TranslatorId,
        port: Symbol,
        msg: UMessage,
        connection: ConnectionId,
    ) {
        if port != "request" {
            ack_input_done(ctx, self.runtime, connection, translator);
            return;
        }
        let Some(&idx) = self.by_translator.get(&translator) else {
            return;
        };
        let Some(obj) = self.objects.get(idx) else {
            return;
        };
        let Some(addr) = obj.addr else {
            ack_input_done(ctx, self.runtime, connection, translator);
            return;
        };
        ctx.busy(calib::STREAM_TRANSLATION);
        crate::obs::record_hop(ctx, "rmi", connection, &port, calib::STREAM_TRANSLATION);
        let call_id = self.next_call;
        self.next_call += 1;
        self.calls.insert(
            call_id,
            RmiCall::Invoke {
                translator,
                connection,
            },
        );
        let name = obj.name.clone();
        self.rmi.call(
            ctx,
            addr,
            &name,
            "echo",
            vec![JavaValue::Bytes(msg.into_body())],
            call_id,
        );
    }
}

impl Process for RmiMapper {
    fn name(&self) -> &str {
        "rmi-mapper"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        crate::obs::announce(ctx, "rmi");
        self.client = Some(RuntimeClient::new(self.runtime));
        self.objects = self
            .object_names
            .iter()
            .map(|name| RmiObject {
                name: name.clone(),
                addr: None,
                translator: None,
                seen_at: ctx.now(),
            })
            .collect();
        self.poll(ctx);
        let interval = self.poll_interval;
        ctx.set_timer(interval, TIMER_POLL);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TIMER_POLL {
            self.poll(ctx);
            let interval = self.poll_interval;
            ctx.set_timer(interval, TIMER_POLL);
        }
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
        let events = self.rmi.handle_stream(ctx, stream, event);
        for ev in events {
            self.handle_rmi_event(ctx, ev);
        }
    }

    fn on_local(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
        if handle_input_done_echo(ctx, &msg) {
            return;
        }
        if let Ok(event) = msg.downcast::<RuntimeEvent>() {
            self.handle_runtime_event(ctx, *event);
        }
    }
}
