//! Calibration of uMiddle-side translation costs.
//!
//! These constants model the Java uMiddle runtime of the paper on its
//! 2.0 GHz Pentium M testbed. Together with the per-platform `calib`
//! modules they reproduce the paper's measurements:
//!
//! * Figure 10: translator generation — UPnP clock ≈ 1.4 s (14 ports and
//!   "two more uMiddle entities for the UPnP service/device hierarchy"),
//!   light ≈ 250 ms (~4/s), air conditioner ≈ 290 ms, Bluetooth HIDP
//!   mouse ≈ 200–250 ms (~5/s).
//! * §5.2: ≈160 ms per UPnP SetPower round trip, of which ~10 ms is
//!   uMiddle translation; ≈23 ms per Bluetooth mouse signal translation.
//! * Figure 11: per-message stream translation must stay well under a
//!   millisecond or the MB/RMI goodput ceilings cannot be reached.

use simnet::SimDuration;

/// Cost of instantiating one uMiddle port on a translator (reflection,
/// registration bookkeeping in the 2006 Java runtime).
pub const PORT_INSTANTIATION: SimDuration = SimDuration::from_millis(45);

/// Cost of each *additional* uMiddle entity in the native
/// service/device hierarchy beyond the first (extra UPnP services: SCPD
/// processing, a second GENA subscription, hierarchy objects).
pub const EXTRA_SERVICE_ENTITY: SimDuration = SimDuration::from_millis(600);

/// uMiddle-side translation of one control request (UMessage → native
/// action object): the ~10 ms share of the paper's 160 ms SetPower time.
pub const CONTROL_TRANSLATION: SimDuration = SimDuration::from_millis(8);

/// uMiddle-side translation of one stream message (RMI payload →
/// UMessage and back). Thin marshal layer — must stay cheap or
/// Figure 11's throughput ceilings are unreachable.
pub const STREAM_TRANSLATION: SimDuration = SimDuration::from_micros(300);

/// Translation of one MediaBroker media frame (re-encapsulating
/// platform-specific data packets, the cost §5.3 attributes to
/// transport-level bridging). Calibrated so the MB echo lands near the
/// paper's 6.2 Mbps.
pub const MB_FRAME_TRANSLATION: SimDuration = SimDuration::from_micros(1_800);

/// Translating one Bluetooth HID signal to its common representation
/// (a small vector-markup document) and handing it to the transport:
/// the paper's 23 ms (§5.2), minus the device-side report cost.
pub const HID_TRANSLATION: SimDuration = SimDuration::from_millis(21);

/// Translating a native event (GENA property change, sensor reading)
/// into a UMessage.
pub const EVENT_TRANSLATION: SimDuration = SimDuration::from_millis(3);

/// Computes the translator-instantiation cost for a device with `ports`
/// ports and `extra_entities` hierarchy entities beyond the first.
pub fn instantiation_cost(ports: usize, extra_entities: usize) -> SimDuration {
    PORT_INSTANTIATION * ports as u64 + EXTRA_SERVICE_ENTITY * extra_entities as u64
}
