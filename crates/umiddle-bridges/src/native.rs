//! Native uMiddle services: devices built directly against uMiddle as
//! their native platform.
//!
//! The paper's Pads screenshot shows twenty-two devices of which eighteen
//! are "native uMiddle devices, by which we mean services built directly
//! against uMiddle as their native middleware platform". [`NativeService`]
//! hosts such a device from a [`NativeBehavior`] implementation, and
//! [`behaviors`] provides a toolbox of ready-made ones (buttons, loggers,
//! transformers, periodic sources).

use simnet::{Ctx, LocalMessage, ProcId, Process, SimDuration};
use umiddle_core::{
    ack_input_done, handle_input_done_echo, ConnectionId, RuntimeClient, RuntimeEvent, RuntimeId,
    Shape, Symbol, TranslatorId, TranslatorProfile, UMessage,
};

/// The environment a behavior acts through.
pub struct NativeEnv<'a, 'w> {
    ctx: &'a mut Ctx<'w>,
    client: &'a RuntimeClient,
    translator: Option<TranslatorId>,
    /// Correlation id of the causal path the current callback is riding
    /// (0 when the callback has no upstream cause, e.g. a timer).
    corr: u64,
}

impl std::fmt::Debug for NativeEnv<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeEnv")
            .field("translator", &self.translator)
            .finish_non_exhaustive()
    }
}

impl NativeEnv<'_, '_> {
    /// Emits a message on one of this service's output ports (no-op until
    /// registration completes).
    pub fn emit(&mut self, port: &str, msg: UMessage) {
        if let Some(id) = self.translator {
            self.client.output(self.ctx, id, port, msg);
        }
    }

    /// Sets a timer; `token` comes back to [`NativeBehavior::on_timer`].
    pub fn set_timer(&mut self, after: SimDuration, token: u64) {
        // Token 0 is reserved internally; shift user tokens.
        self.ctx.set_timer(after, token + 1);
    }

    /// Simulated CPU work.
    pub fn busy(&mut self, d: SimDuration) {
        self.ctx.busy(d);
    }

    /// Current virtual time.
    pub fn now(&self) -> simnet::SimTime {
        self.ctx.now()
    }

    /// This service's translator id, once registered.
    pub fn translator(&self) -> Option<TranslatorId> {
        self.translator
    }

    /// Sends a message to a cross-shard inlet over the inter-shard link
    /// (see [`simnet::shard`]), encoded with the
    /// [`umiddle_core::shardlink`] hand-off codec. Returns `false` —
    /// counting the drop on `shard.uplink_drop` — when the world is not
    /// sharded or the destination shard does not exist, so a behavior
    /// wired unconditionally degrades to a no-op on standalone worlds.
    ///
    /// When the callback is riding a correlated path, the hand-off frame
    /// carries the trace context: a `shard.xfer.egress` span is recorded
    /// here and its id travels in the frame, so the receiving shard's
    /// `shard.xfer.ingress` span names its remote parent and
    /// [`simnet::merge_shard_spans`] can stitch the journey back
    /// together.
    pub fn send_shard(&mut self, dst_shard: u16, inlet: u16, msg: &UMessage) -> bool {
        let corr = self.corr;
        let trace = match self.ctx.shard() {
            Some(cfg) if corr != 0 => {
                let span = self.ctx.span(
                    corr,
                    "shard.xfer.egress",
                    format!("dst=s{dst_shard} inlet={inlet}"),
                );
                self.ctx.bump("shard.xfer_egress", 1);
                Some(umiddle_core::shardlink::HandoffTrace {
                    corr,
                    span,
                    src_shard: cfg.shard,
                })
            }
            _ => None,
        };
        let frame = umiddle_core::shardlink::encode_handoff_traced(msg, trace);
        match self.ctx.send_shard(dst_shard, inlet, frame) {
            Ok(()) => true,
            Err(_) => {
                self.ctx.bump("shard.uplink_drop", 1);
                false
            }
        }
    }
}

/// Behaviour of a native uMiddle service.
pub trait NativeBehavior {
    /// Called once registration completes.
    fn on_registered(&mut self, env: &mut NativeEnv<'_, '_>) {
        let _ = env;
    }

    /// Called for each message arriving on an input port.
    fn on_input(&mut self, env: &mut NativeEnv<'_, '_>, port: &str, msg: UMessage) {
        let _ = (env, port, msg);
    }

    /// Called when a timer set via [`NativeEnv::set_timer`] fires.
    fn on_timer(&mut self, env: &mut NativeEnv<'_, '_>, token: u64) {
        let _ = (env, token);
    }

    /// Called for each message arriving on this service's cross-shard
    /// inlet (see [`NativeService::with_shard_inlet`]), already decoded
    /// from the hand-off frame.
    fn on_cross(&mut self, env: &mut NativeEnv<'_, '_>, msg: UMessage) {
        let _ = (env, msg);
    }
}

/// A process hosting one native uMiddle service.
pub struct NativeService {
    name: String,
    shape: Shape,
    attrs: Vec<(String, String)>,
    runtime: ProcId,
    behavior: Box<dyn NativeBehavior>,
    client: Option<RuntimeClient>,
    translator: Option<TranslatorId>,
    /// `(inlet, local port)` to register for cross-shard ingress.
    shard_inlet: Option<(u16, u16)>,
}

impl std::fmt::Debug for NativeService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeService")
            .field("name", &self.name)
            .field("translator", &self.translator)
            .finish_non_exhaustive()
    }
}

impl NativeService {
    /// Creates a native service.
    pub fn new(
        name: &str,
        shape: Shape,
        runtime: ProcId,
        behavior: Box<dyn NativeBehavior>,
    ) -> NativeService {
        NativeService {
            name: name.to_owned(),
            shape,
            attrs: Vec::new(),
            runtime,
            behavior,
            client: None,
            translator: None,
            shard_inlet: None,
        }
    }

    /// Adds a profile attribute (builder style).
    pub fn with_attr(mut self, key: &str, value: &str) -> NativeService {
        self.attrs.push((key.to_owned(), value.to_owned()));
        self
    }

    /// Registers this service as the receiver for cross-shard inlet
    /// `inlet`, bound at `port` on its node (builder style). Arriving
    /// hand-off frames are decoded and delivered to
    /// [`NativeBehavior::on_cross`]. Registration is skipped silently on
    /// an unsharded world, so the same fixture code runs standalone.
    pub fn with_shard_inlet(mut self, inlet: u16, port: u16) -> NativeService {
        self.shard_inlet = Some((inlet, port));
        self
    }
}

impl Process for NativeService {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let mut client = RuntimeClient::new(self.runtime);
        let mut builder = TranslatorProfile::builder(
            TranslatorId::new(RuntimeId(u32::MAX), 0),
            self.name.clone(),
        )
        .shape(self.shape.clone());
        for (k, v) in &self.attrs {
            builder = builder.attr(k.clone(), v.clone());
        }
        let me = ctx.me();
        client.register(ctx, builder.build(), me);
        self.client = Some(client);
        if let Some((inlet, port)) = self.shard_inlet {
            if ctx.shard().is_some() {
                ctx.register_shard_inlet(inlet, port)
                    .expect("shard inlet registration");
            }
        }
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: simnet::Datagram) {
        // The only datagrams a native service receives are cross-shard
        // hand-off frames addressed to its registered inlet.
        if self.shard_inlet.is_none() {
            return;
        }
        match umiddle_core::shardlink::decode_handoff_traced(&d.data) {
            Ok((msg, trace)) => {
                ctx.bump("shard.handoff_in", 1);
                let corr = match trace {
                    Some(t) => {
                        // Replay the carried context as the ingress half
                        // of the cross-shard hop; merge_shard_spans
                        // re-parents this span onto the remote egress.
                        ctx.span(
                            t.corr,
                            "shard.xfer.ingress",
                            format!("src=s{} span={}", t.src_shard, t.span.0),
                        );
                        ctx.bump("shard.xfer_ingress", 1);
                        t.corr
                    }
                    None => 0,
                };
                let client = self.client.as_ref().expect("client set in on_start");
                let mut env = NativeEnv {
                    ctx,
                    client,
                    translator: self.translator,
                    corr,
                };
                self.behavior.on_cross(&mut env, msg);
            }
            Err(_) => ctx.bump("shard.handoff_decode_err", 1),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == 0 {
            return;
        }
        let client = self.client.as_ref().expect("client set in on_start");
        let mut env = NativeEnv {
            ctx,
            client,
            translator: self.translator,
            corr: 0,
        };
        self.behavior.on_timer(&mut env, token - 1);
    }

    fn on_local(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
        if handle_input_done_echo(ctx, &msg) {
            return;
        }
        let Ok(event) = msg.downcast::<RuntimeEvent>() else {
            return;
        };
        match *event {
            RuntimeEvent::Registered { translator, .. } => {
                self.translator = Some(translator);
                let client = self.client.as_ref().expect("client set");
                let mut env = NativeEnv {
                    ctx,
                    client,
                    translator: self.translator,
                    corr: 0,
                };
                self.behavior.on_registered(&mut env);
            }
            RuntimeEvent::Input {
                translator,
                port,
                msg,
                connection,
            } => self.handle_input(ctx, translator, port, msg, connection),
            RuntimeEvent::InputBatch { inputs } => {
                for d in inputs {
                    self.handle_input(ctx, d.translator, d.port, d.msg, d.connection);
                }
            }
            _ => {}
        }
    }
}

impl NativeService {
    /// Runs the behaviour callback for one delivered input — called
    /// once per [`RuntimeEvent::Input`] and once per element of an
    /// [`RuntimeEvent::InputBatch`].
    fn handle_input(
        &mut self,
        ctx: &mut Ctx<'_>,
        translator: TranslatorId,
        port: Symbol,
        msg: UMessage,
        connection: ConnectionId,
    ) {
        // Structured span around the behaviour callback: ends
        // at the service's emit time, so CPU the behaviour
        // models with busy() lands inside the span.
        let span = ctx.span_begin(
            connection.corr(),
            "bridge.native.input",
            format!("port={port}"),
        );
        let client = self.client.as_ref().expect("client set");
        let mut env = NativeEnv {
            ctx,
            client,
            translator: self.translator,
            corr: connection.corr(),
        };
        self.behavior.on_input(&mut env, &port, msg);
        ctx.span_end(span);
        ack_input_done(ctx, self.runtime, connection, translator);
    }
}

/// Ready-made behaviours for building device fleets (Pads, examples).
pub mod behaviors {
    use std::cell::RefCell;
    use std::rc::Rc;

    use super::{NativeBehavior, NativeEnv};
    use simnet::SimDuration;
    use umiddle_core::UMessage;

    /// Emits a fixed message on a port at a fixed interval.
    #[derive(Debug)]
    pub struct PeriodicSource {
        /// Output port name.
        pub port: String,
        /// Message factory input: `(sequence number) -> message`.
        pub interval: SimDuration,
        /// Number of messages to emit (0 = unlimited).
        pub limit: u64,
        /// Message payload factory.
        pub make: fn(u64) -> UMessage,
        sent: u64,
    }

    impl PeriodicSource {
        /// Creates a periodic source.
        pub fn new(
            port: &str,
            interval: SimDuration,
            limit: u64,
            make: fn(u64) -> UMessage,
        ) -> PeriodicSource {
            PeriodicSource {
                port: port.to_owned(),
                interval,
                limit,
                make,
                sent: 0,
            }
        }
    }

    impl NativeBehavior for PeriodicSource {
        fn on_registered(&mut self, env: &mut NativeEnv<'_, '_>) {
            env.set_timer(self.interval, 0);
        }
        fn on_timer(&mut self, env: &mut NativeEnv<'_, '_>, _token: u64) {
            let msg = (self.make)(self.sent);
            env.emit(&self.port, msg);
            self.sent += 1;
            if self.limit == 0 || self.sent < self.limit {
                env.set_timer(self.interval, 0);
            }
        }
    }

    /// Records everything arriving on any input port.
    #[derive(Debug, Default)]
    pub struct Recorder {
        /// Shared record of `(port, message)` pairs.
        pub received: Rc<RefCell<Vec<(String, UMessage)>>>,
    }

    impl Recorder {
        /// Creates a recorder; clone `received` before boxing.
        pub fn new() -> Recorder {
            Recorder::default()
        }
    }

    impl NativeBehavior for Recorder {
        fn on_input(&mut self, _env: &mut NativeEnv<'_, '_>, port: &str, msg: UMessage) {
            self.received.borrow_mut().push((port.to_owned(), msg));
        }
    }

    /// Echoes every input back out on a fixed output port, with optional
    /// per-message CPU cost (a slow consumer for QoS experiments).
    #[derive(Debug)]
    pub struct Echo {
        /// The port echoes leave on.
        pub out_port: String,
        /// Per-message CPU cost.
        pub cost: SimDuration,
        /// Messages processed.
        pub count: Rc<RefCell<u64>>,
    }

    impl Echo {
        /// Creates an echo with no processing cost.
        pub fn new(out_port: &str) -> Echo {
            Echo {
                out_port: out_port.to_owned(),
                cost: SimDuration::ZERO,
                count: Rc::new(RefCell::new(0)),
            }
        }
    }

    impl NativeBehavior for Echo {
        fn on_input(&mut self, env: &mut NativeEnv<'_, '_>, _port: &str, msg: UMessage) {
            if !self.cost.is_zero() {
                env.busy(self.cost);
            }
            *self.count.borrow_mut() += 1;
            env.emit(&self.out_port, msg);
        }
    }

    /// Applies a text transformation to inputs and re-emits them.
    pub struct Transformer {
        /// The port transformed messages leave on.
        pub out_port: String,
        /// The transformation.
        pub f: Box<dyn FnMut(&str) -> String>,
    }

    impl std::fmt::Debug for Transformer {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Transformer")
                .field("out_port", &self.out_port)
                .finish_non_exhaustive()
        }
    }

    impl NativeBehavior for Transformer {
        fn on_input(&mut self, env: &mut NativeEnv<'_, '_>, _port: &str, msg: UMessage) {
            let text = msg.body_text().unwrap_or_default();
            let out = (self.f)(text);
            env.emit(&self.out_port, UMessage::text(out));
        }
    }
}
