//! Scattered visibility (the paper's design 2-a), as an extension.
//!
//! uMiddle itself chooses *aggregated* visibility: devices from foreign
//! platforms are visible only inside the intermediary semantic space, so
//! "uMiddle does not allow applications built on native platforms to
//! access devices on other platforms" (§3.6). This module implements the
//! road not taken, so the trade-off can be exercised and measured: a
//! [`UpnpExporter`] projects selected uMiddle translators *back out* as
//! native UPnP devices. A stock UPnP control point can then discover a
//! Bluetooth camera and trigger its shutter over plain SOAP.
//!
//! The cost the paper predicts is visible in the implementation: this
//! exporter is UPnP-specific; exporting to n native platforms means n
//! exporters, each re-encoding every foreign device — the n(n−1)
//! explosion in another guise.

use std::collections::HashMap;

use platform_upnp::{
    ActionArg, ActionDesc, ArgDirection, DeviceDesc, HttpAccumulator, HttpMessage, HttpResponse,
    ServiceDesc, SoapCall, SoapResult, SsdpMessage, SSDP_GROUP,
};
use simnet::{Ctx, Datagram, LocalMessage, ProcId, Process, SimDuration, StreamEvent, StreamId};
use umiddle_core::{
    Direction, DirectoryEvent, PortRef, QosPolicy, Query, RuntimeClient, RuntimeEvent,
    TranslatorId, TranslatorProfile, UMessage,
};

const TIMER_ANNOUNCE: u64 = 1;
const ANNOUNCE_INTERVAL: SimDuration = SimDuration::from_secs(60);

/// Converts a port name to a UPnP action name (`capture` → `SetCapture`).
fn action_name(port: &str) -> String {
    let mut out = String::from("Set");
    let mut upper = true;
    for c in port.chars() {
        if c == '-' || c == '_' {
            upper = true;
        } else if upper {
            out.extend(c.to_uppercase());
            upper = false;
        } else {
            out.push(c);
        }
    }
    out
}

#[derive(Debug)]
struct Exported {
    /// The foreign translator being projected.
    target: TranslatorProfile,
    /// Our shadow translator feeding the target's input ports.
    shadow: Option<TranslatorId>,
    /// UPnP-visible description.
    desc: DeviceDesc,
    desc_xml: String,
    /// HTTP port this export serves on.
    http_port: u16,
    /// action name → target input port name.
    actions: HashMap<String, String>,
    /// Paths pending: input port name → wired?
    wired: bool,
}

/// Projects uMiddle translators out to the native UPnP platform
/// (design 2-a). One process exports every translator matching `filter`.
pub struct UpnpExporter {
    runtime: ProcId,
    filter: Query,
    base_port: u16,
    client: Option<RuntimeClient>,
    exports: Vec<Exported>,
    pending_regs: HashMap<u64, usize>,
    conns: HashMap<StreamId, (usize, HttpAccumulator)>,
    /// Streams accepted before we know which export they belong to are
    /// resolved by local port.
    next_port_offset: u16,
}

impl std::fmt::Debug for UpnpExporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpnpExporter")
            .field("exports", &self.exports.len())
            .finish_non_exhaustive()
    }
}

impl UpnpExporter {
    /// Creates an exporter for translators matching `filter`, serving
    /// UPnP devices on ports `base_port..`.
    pub fn new(runtime: ProcId, filter: Query, base_port: u16) -> UpnpExporter {
        UpnpExporter {
            runtime,
            filter,
            base_port,
            client: None,
            exports: Vec::new(),
            pending_regs: HashMap::new(),
            conns: HashMap::new(),
            next_port_offset: 0,
        }
    }

    fn udn_for(profile: &TranslatorProfile) -> String {
        format!("uuid:export-{}", profile.id())
    }

    fn build_export(&mut self, ctx: &mut Ctx<'_>, profile: TranslatorProfile) {
        // Never re-export native UPnP devices (loop protection).
        if profile.platform() == "upnp" {
            return;
        }
        if self.exports.iter().any(|e| e.target.id() == profile.id()) {
            return;
        }
        // Only digital input ports become actions.
        let inputs: Vec<_> = profile
            .shape()
            .ports_in(Direction::Input)
            .filter(|p| p.kind.is_digital())
            .cloned()
            .collect();
        if inputs.is_empty() {
            return;
        }
        let mut service = ServiceDesc::new("Exported");
        let mut actions = HashMap::new();
        for p in &inputs {
            let action = action_name(&p.name);
            service = service.with_action(ActionDesc {
                name: action.clone(),
                args: vec![ActionArg {
                    name: "Value".to_owned(),
                    direction: ArgDirection::In,
                    related_statevar: "Value".to_owned(),
                }],
            });
            actions.insert(action, p.name.clone());
        }
        service = service.with_statevar("Value", false, "");
        let desc = DeviceDesc::new(
            "urn:umiddle:device:Exported:1",
            &format!("{} (exported)", profile.name()),
            &UpnpExporter::udn_for(&profile),
        )
        .with_service(service);
        let http_port = self.base_port + self.next_port_offset;
        self.next_port_offset += 1;
        ctx.listen(http_port).expect("export port free");

        // Register the shadow translator: one output per target input.
        let mut shape = umiddle_core::Shape::builder();
        for p in &inputs {
            let mime = match &p.kind {
                umiddle_core::PortKind::Digital(m) => m.clone(),
                umiddle_core::PortKind::Physical { .. } => unreachable!("filtered"),
            };
            shape = shape.digital(&p.name, Direction::Output, mime);
        }
        let shadow_profile = TranslatorProfile::builder(
            TranslatorId::new(umiddle_core::RuntimeId(u32::MAX), 0),
            format!("upnp-export-shadow:{}", profile.id()),
        )
        .attr("role", "export-shadow")
        .shape(shape.build().expect("unique port names from a valid shape"))
        .build();
        let client = self.client.as_mut().expect("client set in on_start");
        let me = ctx.me();
        let token = client.register(ctx, shadow_profile, me);
        let desc_xml = desc.to_xml();
        self.exports.push(Exported {
            target: profile,
            shadow: None,
            desc,
            desc_xml,
            http_port,
            actions,
            wired: false,
        });
        self.pending_regs.insert(token, self.exports.len() - 1);
    }

    fn announce(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let Some(e) = self.exports.get(idx) else {
            return;
        };
        let msg = SsdpMessage::Alive {
            usn: e.desc.udn.clone(),
            device_type: e.desc.device_type.clone(),
            location: simnet::Addr::new(ctx.node(), e.http_port),
            max_age: 1800,
        };
        let _ = ctx.multicast(e.http_port, SSDP_GROUP, msg.to_bytes());
    }

    fn wire_shadow(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let Some(e) = self.exports.get_mut(idx) else {
            return;
        };
        let (Some(shadow), false) = (e.shadow, e.wired) else {
            return;
        };
        e.wired = true;
        let pairs: Vec<(String, PortRef)> = e
            .actions
            .values()
            .map(|port| (port.clone(), PortRef::new(e.target.id(), port.clone())))
            .collect();
        let client = self.client.as_mut().expect("client set");
        for (port, dst) in pairs {
            client.connect_ports(
                ctx,
                PortRef::new(shadow, port),
                dst,
                QosPolicy::bounded_drop_newest(64 * 1024),
            );
        }
    }

    fn handle_http(
        &mut self,
        ctx: &mut Ctx<'_>,
        stream: StreamId,
        idx: usize,
        req: platform_upnp::HttpRequest,
    ) {
        let response = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/description.xml") => {
                let e = &self.exports[idx];
                HttpResponse::xml(e.desc_xml.clone())
            }
            ("POST", "/control") => {
                let call = std::str::from_utf8(&req.body)
                    .ok()
                    .and_then(SoapCall::parse);
                match call {
                    Some(call) => {
                        let port = self.exports[idx].actions.get(&call.action).cloned();
                        match (port, self.exports[idx].shadow) {
                            (Some(port), Some(shadow)) => {
                                let value = call
                                    .args
                                    .iter()
                                    .find(|(k, _)| k == "Value")
                                    .map(|(_, v)| v.clone())
                                    .unwrap_or_default();
                                let client = self.client.as_ref().expect("set");
                                client.output(ctx, shadow, port, UMessage::text(value));
                                ctx.bump("export.actions", 1);
                                HttpResponse::xml(
                                    SoapResult::Ok {
                                        action: call.action,
                                        args: vec![],
                                    }
                                    .to_xml(),
                                )
                            }
                            _ => HttpResponse::xml(
                                SoapResult::Fault {
                                    code: 401,
                                    description: format!("Invalid Action {}", call.action),
                                }
                                .to_xml(),
                            ),
                        }
                    }
                    None => HttpResponse::new(400),
                }
            }
            _ => HttpResponse::new(404),
        };
        let _ = ctx.stream_send(stream, response.to_bytes());
        ctx.stream_close(stream);
    }
}

impl Process for UpnpExporter {
    fn name(&self) -> &str {
        "upnp-exporter"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx.join_group(SSDP_GROUP);
        let client = RuntimeClient::new(self.runtime);
        client.add_listener(ctx, self.filter.clone());
        self.client = Some(client);
        ctx.set_timer(ANNOUNCE_INTERVAL, TIMER_ANNOUNCE);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TIMER_ANNOUNCE {
            for idx in 0..self.exports.len() {
                self.announce(ctx, idx);
            }
            ctx.set_timer(ANNOUNCE_INTERVAL, TIMER_ANNOUNCE);
        }
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        // Answer native M-SEARCHes for our exported devices.
        if let Some(SsdpMessage::MSearch { st, reply_to }) = SsdpMessage::parse(&dgram.data) {
            for idx in 0..self.exports.len() {
                let (matches, usn, device_type, http_port) = {
                    let e = &self.exports[idx];
                    (
                        SsdpMessage::search_matches(&st, &e.desc.device_type),
                        e.desc.udn.clone(),
                        e.desc.device_type.clone(),
                        e.http_port,
                    )
                };
                if matches {
                    let resp = SsdpMessage::SearchResponse {
                        usn,
                        device_type,
                        location: simnet::Addr::new(ctx.node(), http_port),
                        max_age: 1800,
                    };
                    let _ = ctx.send_to(http_port, reply_to, resp.to_bytes());
                }
            }
        }
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
        match event {
            StreamEvent::Accepted { local_port, .. } => {
                if let Some(idx) = self.exports.iter().position(|e| e.http_port == local_port) {
                    self.conns.insert(stream, (idx, HttpAccumulator::new()));
                }
            }
            StreamEvent::Data(data) => {
                let Some((idx, acc)) = self.conns.get_mut(&stream) else {
                    return;
                };
                let idx = *idx;
                acc.push(&data);
                if let Some(Ok(HttpMessage::Request(req))) = acc.take_message() {
                    self.handle_http(ctx, stream, idx, req);
                }
            }
            StreamEvent::Closed | StreamEvent::ConnectFailed => {
                self.conns.remove(&stream);
            }
            _ => {}
        }
    }

    fn on_local(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
        let Ok(event) = msg.downcast::<RuntimeEvent>() else {
            return;
        };
        match *event {
            RuntimeEvent::Directory(DirectoryEvent::Appeared(profile)) => {
                // Never export our own shadows.
                if profile.attr("role") == Some("export-shadow") {
                    return;
                }
                self.build_export(ctx, profile);
            }
            RuntimeEvent::Registered { token, translator } => {
                if let Some(idx) = self.pending_regs.remove(&token) {
                    if let Some(e) = self.exports.get_mut(idx) {
                        e.shadow = Some(translator);
                    }
                    self.announce(ctx, idx);
                    self.wire_shadow(ctx, idx);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_names_are_camel_cased() {
        assert_eq!(action_name("capture"), "SetCapture");
        assert_eq!(action_name("switch-on"), "SetSwitchOn");
        assert_eq!(action_name("set_time"), "SetSetTime");
    }
}
