//! Cross-shard runtime hand-off behaviors.
//!
//! In a sharded simulation each shard is its own `World` with its own
//! uMiddle runtimes; a message path that crosses a shard boundary is
//! stitched from two native services:
//!
//! * a [`ShardUplink`] on the sending shard — an input-only service
//!   wired (via the usual port-compatibility machinery) to whatever
//!   local stream should leave the shard; every input is encoded with
//!   the [`umiddle_core::shardlink`] hand-off codec and sent over the
//!   conductor's inter-shard link;
//! * a [`ShardIngress`] on the receiving shard — an output-only service
//!   registered as the inlet's receiver
//!   ([`crate::NativeService::with_shard_inlet`]); every arriving frame is
//!   decoded back into a [`UMessage`] and re-emitted on a local output
//!   port, where it joins the receiving shard's semantic space like any
//!   native emission.
//!
//! Both degrade to no-ops on an unsharded world, so fixtures can wire
//! them unconditionally.

use umiddle_core::UMessage;

use crate::native::{NativeBehavior, NativeEnv};

/// Forwards every input across the inter-shard link.
#[derive(Debug)]
pub struct ShardUplink {
    /// Destination shard.
    pub dst_shard: u16,
    /// Destination inlet on that shard.
    pub inlet: u16,
    /// Messages forwarded.
    forwarded: u64,
}

impl ShardUplink {
    /// Creates an uplink to `(dst_shard, inlet)`.
    pub fn new(dst_shard: u16, inlet: u16) -> ShardUplink {
        ShardUplink {
            dst_shard,
            inlet,
            forwarded: 0,
        }
    }
}

impl NativeBehavior for ShardUplink {
    fn on_input(&mut self, env: &mut NativeEnv<'_, '_>, _port: &str, msg: UMessage) {
        if env.send_shard(self.dst_shard, self.inlet, &msg) {
            self.forwarded += 1;
        }
    }
}

/// Re-emits cross-shard arrivals on a local output port.
#[derive(Debug)]
pub struct ShardIngress {
    /// The output port decoded messages are emitted on.
    pub out_port: String,
}

impl ShardIngress {
    /// Creates an ingress emitting on `out_port`. Pair it with
    /// [`crate::NativeService::with_shard_inlet`] so frames actually
    /// arrive.
    pub fn new(out_port: &str) -> ShardIngress {
        ShardIngress {
            out_port: out_port.to_owned(),
        }
    }
}

impl NativeBehavior for ShardIngress {
    fn on_cross(&mut self, env: &mut NativeEnv<'_, '_>, msg: UMessage) {
        env.emit(&self.out_port, msg);
    }
}
