//! Observability helpers shared by every mapper: structured bridge
//! ingress/egress spans and per-hop translation-latency histograms.
//!
//! Metric names: every hop records into the federation-wide
//! `umiddle.translation_latency` histogram and a per-platform
//! `bridge.{platform}.translation` histogram. Inbound hops emit a
//! `bridge.{platform}.input` span on the path's correlation id (see
//! [`umiddle_core::ConnectionId::corr`]); outbound hops emit an
//! uncorrelated `bridge.{platform}.output` span. Both are structured
//! spans: begun when the triggering event arrived and ended at the
//! mapper's *emit time*, so translation cost modeled with
//! `ctx.busy(cost)` before the call is inside the span's duration.
//!
//! Liveness: every translated hop also bumps a per-platform
//! `bridge.{platform}.traffic` counter and refreshes the
//! `bridge.{platform}.last_traffic_ns` watermark gauge. The federation
//! doctor reads the watermark to flag silent bridges, and the traffic
//! counter feeds liveness SLOs; [`announce`] plants both at mapper
//! start so a bridge that never translates anything is still visible.

use simnet::{Ctx, SimDuration, SpanId};
use umiddle_core::ConnectionId;

/// Records one inbound bridge hop (uMiddle → native platform): a
/// structured span on the path's correlation id plus the translation
/// cost histograms. Call it after the `ctx.busy(cost)` that models the
/// translation, so the span's end covers the modeled CPU work.
pub(crate) fn record_hop(
    ctx: &mut Ctx<'_>,
    platform: &str,
    connection: ConnectionId,
    port: &str,
    cost: SimDuration,
) -> SpanId {
    let span = ctx.span_begin(
        connection.corr(),
        format!("bridge.{platform}.input"),
        format!("port={port}"),
    );
    ctx.span_end(span);
    record_translation_corr(ctx, platform, cost, connection.corr());
    span
}

/// Records one outbound bridge hop (native platform → uMiddle): a
/// structured span plus the translation cost histograms. Egress
/// translation happens before any connection is chosen, so the span is
/// uncorrelated (corr 0); it still appears on the mapper's exporter
/// thread with its full duration.
pub(crate) fn record_egress(ctx: &mut Ctx<'_>, platform: &str, cost: SimDuration) -> SpanId {
    let span = ctx.span_begin(0, format!("bridge.{platform}.output"), String::new());
    ctx.span_end(span);
    record_translation(ctx, platform, cost);
    span
}

/// Records a translation cost into the federation-wide and per-platform
/// histograms, with no span context, and refreshes the platform's
/// liveness traffic counter and last-traffic watermark.
pub(crate) fn record_translation(ctx: &mut Ctx<'_>, platform: &str, cost: SimDuration) {
    record_translation_corr(ctx, platform, cost, 0);
}

/// [`record_translation`] with a correlation-id exemplar: inbound hops
/// know the path they serve, so their histogram observations carry the
/// corr that lets a p99 bucket resolve back to a trace journey.
pub(crate) fn record_translation_corr(
    ctx: &mut Ctx<'_>,
    platform: &str,
    cost: SimDuration,
    corr: u64,
) {
    ctx.observe_corr("umiddle.translation_latency", cost, corr);
    ctx.observe_corr(&format!("bridge.{platform}.translation"), cost, corr);
    ctx.bump(&format!("bridge.{platform}.traffic"), 1);
    touch(ctx, platform);
}

/// Registers a platform bridge with the doctor at mapper start: plants
/// its `bridge.{platform}.last_traffic_ns` watermark at the current
/// time, so liveness is measured from bring-up rather than from an
/// absent gauge.
pub(crate) fn announce(ctx: &mut Ctx<'_>, platform: &str) {
    touch(ctx, platform);
}

/// Refreshes the platform's last-traffic watermark to now.
fn touch(ctx: &mut Ctx<'_>, platform: &str) {
    let now = ctx.now().as_nanos() as i64;
    ctx.gauge_set(&format!("bridge.{platform}.last_traffic_ns"), now);
}
