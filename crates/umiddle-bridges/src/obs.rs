//! Observability helpers shared by every mapper: bridge-hop spans and
//! per-hop translation-latency histograms.
//!
//! Metric names: every hop records into the federation-wide
//! `umiddle.translation_latency` histogram and a per-platform
//! `bridge.{platform}.translation` histogram; inbound hops additionally
//! emit a `bridge.{platform}.input` span on the path's correlation id
//! (see [`umiddle_core::ConnectionId::corr`]).

use simnet::{Ctx, SimDuration};
use umiddle_core::ConnectionId;

/// Records one inbound bridge hop (uMiddle → native platform): a span on
/// the path's correlation id plus the translation cost histograms. Call
/// it next to the `ctx.busy(cost)` that models the translation.
pub(crate) fn record_hop(
    ctx: &mut Ctx<'_>,
    platform: &str,
    connection: ConnectionId,
    port: &str,
    cost: SimDuration,
) {
    ctx.span(
        connection.corr(),
        format!("bridge.{platform}.input"),
        format!("port={port}"),
    );
    record_translation(ctx, platform, cost);
}

/// Records a translation cost with no path context (native platform →
/// uMiddle event translation happens before a connection is chosen).
pub(crate) fn record_translation(ctx: &mut Ctx<'_>, platform: &str, cost: SimDuration) {
    ctx.observe("umiddle.translation_latency", cost);
    ctx.observe(&format!("bridge.{platform}.translation"), cost);
}
