//! # umiddle-bridges — mappers and translators for every platform
//!
//! This crate contains the platform-specific half of uMiddle: for each
//! communication platform, a **mapper** (service-level + transport-level
//! bridge) that discovers native devices and instantiates generic,
//! USDL-parameterized **translators** (device-level bridges) registered
//! with the local uMiddle runtime:
//!
//! * [`UpnpMapper`] — SSDP discovery, description fetch, SOAP control,
//!   GENA eventing.
//! * [`BluetoothMapper`] — inquiry + SDP discovery; BIP (camera,
//!   printer) and HIDP (mouse) translators over OBEX / interrupt
//!   channels.
//! * [`RmiMapper`] — registry polling; request/response call translators.
//! * [`MediaBrokerMapper`] — channel roster polling; source and sink
//!   stream translators.
//! * [`MotesMapper`] — base-station attachment; per-mote sensor
//!   translators.
//! * [`WsMapper`] — endpoint probing; RPC translators with output
//!   polling.
//!
//! Plus [`NativeService`] for devices built directly against uMiddle
//! (the Pads fleet), and the [`direct`] module implementing the paper's
//! rejected design (1-a) as a baseline for the E4 ablation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bluetooth;
pub mod calib;
pub mod direct;
mod mediabroker;
mod motes;
mod native;
mod obs;
mod rmi;
pub mod scatter;
pub mod shard;
mod upnp;
mod webservices;

pub use bluetooth::BluetoothMapper;
pub use mediabroker::MediaBrokerMapper;
pub use motes::MotesMapper;
pub use native::{behaviors, NativeBehavior, NativeEnv, NativeService};
pub use rmi::RmiMapper;
pub use scatter::UpnpExporter;
pub use shard::{ShardIngress, ShardUplink};
pub use upnp::{MapperStats, UpnpMapper};
pub use webservices::WsMapper;
