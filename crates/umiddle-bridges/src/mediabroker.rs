//! The MediaBroker mapper: channel discovery + source/sink translators.
//!
//! The mapper keeps a control stream to the broker, polls the channel
//! roster, and registers a *source* translator (with a `media-out`
//! output port) for each broker channel; messages the broker forwards on
//! a consumed channel are emitted into the common space. It can also be
//! configured with *sink* channels: it registers a producer translator
//! (with a `media-in` input port) whose inputs are produced into the
//! broker — the return path of the paper's RMI-MB bridged benchmark.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use platform_mediabroker::{MbAccumulator, MbFrame};
use simnet::{
    Addr, Ctx, LocalMessage, ProcId, Process, SimDuration, SimTime, StreamEvent, StreamId,
};
use umiddle_core::{
    ack_input_done, handle_input_done_echo, ConnectionId, MimeType, RuntimeClient, RuntimeEvent,
    Symbol, TranslatorId, UMessage,
};
use umiddle_usdl::UsdlLibrary;

use crate::calib;
use crate::upnp::MapperStats;

const TIMER_POLL: u64 = 1;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Consume from the broker, emit into uMiddle.
    Source,
    /// Accept uMiddle input, produce into the broker.
    Sink,
}

#[derive(Debug)]
struct Bridged {
    channel: String,
    role: Role,
    translator: Option<TranslatorId>,
    stream: Option<StreamId>,
    attached: bool,
    seen_at: SimTime,
}

/// The MediaBroker mapper process.
pub struct MediaBrokerMapper {
    runtime: ProcId,
    usdl: UsdlLibrary,
    broker: Addr,
    /// Channels to produce into (sink translators), fixed at config time.
    sink_channels: Vec<String>,
    poll_interval: SimDuration,
    client: Option<RuntimeClient>,
    control: Option<StreamId>,
    control_acc: MbAccumulator,
    bridged: Vec<Bridged>,
    /// Data streams: stream → bridged index.
    data_streams: HashMap<StreamId, usize>,
    data_accs: HashMap<StreamId, MbAccumulator>,
    pending_regs: HashMap<u64, usize>,
    by_translator: HashMap<TranslatorId, usize>,
    stats: Rc<RefCell<MapperStats>>,
}

impl std::fmt::Debug for MediaBrokerMapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MediaBrokerMapper")
            .field("bridged", &self.bridged.len())
            .finish_non_exhaustive()
    }
}

impl MediaBrokerMapper {
    /// Creates a mapper; `sink_channels` are produced into the broker on
    /// behalf of uMiddle senders.
    pub fn new(
        runtime: ProcId,
        usdl: UsdlLibrary,
        broker: Addr,
        sink_channels: Vec<String>,
    ) -> MediaBrokerMapper {
        MediaBrokerMapper {
            runtime,
            usdl,
            broker,
            sink_channels,
            poll_interval: SimDuration::from_secs(5),
            client: None,
            control: None,
            control_acc: MbAccumulator::new(),
            bridged: Vec::new(),
            data_streams: HashMap::new(),
            data_accs: HashMap::new(),
            pending_regs: HashMap::new(),
            by_translator: HashMap::new(),
            stats: Rc::new(RefCell::new(MapperStats::default())),
        }
    }

    /// Shared statistics handle.
    pub fn stats_handle(&self) -> Rc<RefCell<MapperStats>> {
        Rc::clone(&self.stats)
    }

    fn register_bridged(&mut self, ctx: &mut Ctx<'_>, channel: &str, role: Role) {
        if self
            .bridged
            .iter()
            .any(|b| b.channel == channel && b.role == role)
        {
            return;
        }
        let device_type = match role {
            Role::Source => "mb-source",
            Role::Sink => "mb-sink",
        };
        let Some(doc) = self.usdl.get("mediabroker", device_type) else {
            ctx.bump("mapper.mb.missing_usdl", 1);
            return;
        };
        let doc = doc.clone();
        ctx.busy(calib::instantiation_cost(doc.ports().len(), 0));
        let name = match role {
            Role::Source => format!("MB channel {channel}"),
            Role::Sink => format!("MB sink {channel}"),
        };
        let profile = doc.profile(Some(&name));
        let client = self.client.as_mut().expect("client set");
        let me = ctx.me();
        let token = client.register(ctx, profile, me);
        let idx = self.bridged.len();
        self.bridged.push(Bridged {
            channel: channel.to_owned(),
            role,
            translator: None,
            stream: None,
            attached: false,
            seen_at: ctx.now(),
        });
        self.pending_regs.insert(token, idx);
    }

    /// Opens the data stream for a bridged channel once its translator
    /// exists.
    fn open_data_stream(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        let Some(b) = self.bridged.get_mut(idx) else {
            return;
        };
        if b.stream.is_some() {
            return;
        }
        if let Ok(stream) = ctx.connect(self.broker) {
            b.stream = Some(stream);
            self.data_streams.insert(stream, idx);
            self.data_accs.insert(stream, MbAccumulator::new());
        }
    }

    fn handle_control_frame(&mut self, ctx: &mut Ctx<'_>, frame: MbFrame) {
        if let MbFrame::Channels(entries) = frame {
            for (name, _ty, _consumers) in entries {
                // Don't re-bridge our own sink channels as sources.
                if !self.sink_channels.contains(&name) {
                    self.register_bridged(ctx, &name, Role::Source);
                }
            }
        }
    }

    fn handle_data_frame(&mut self, ctx: &mut Ctx<'_>, idx: usize, frame: MbFrame) {
        match frame {
            MbFrame::Ack => {
                if let Some(b) = self.bridged.get_mut(idx) {
                    b.attached = true;
                }
            }
            MbFrame::Nack { reason } => {
                ctx.trace(format!("mb attach failed: {reason}"));
                ctx.bump("mapper.mb.attach_failed", 1);
            }
            MbFrame::Data { payload } => {
                let Some(b) = self.bridged.get(idx) else {
                    return;
                };
                if b.role != Role::Source {
                    return;
                }
                let Some(translator) = b.translator else {
                    return;
                };
                ctx.busy(calib::MB_FRAME_TRANSLATION);
                crate::obs::record_egress(ctx, "mediabroker", calib::MB_FRAME_TRANSLATION);
                self.stats.borrow_mut().events += 1;
                let mime: MimeType = "application/octet-stream".parse().expect("static");
                let client = self.client.as_ref().expect("client set");
                client.output(ctx, translator, "media-out", UMessage::new(mime, payload));
            }
            _ => {}
        }
    }

    fn handle_runtime_event(&mut self, ctx: &mut Ctx<'_>, event: RuntimeEvent) {
        match event {
            RuntimeEvent::Registered { token, translator } => {
                let Some(idx) = self.pending_regs.remove(&token) else {
                    return;
                };
                let (channel, role, seen_at) = {
                    let Some(b) = self.bridged.get_mut(idx) else {
                        return;
                    };
                    b.translator = Some(translator);
                    (b.channel.clone(), b.role, b.seen_at)
                };
                self.by_translator.insert(translator, idx);
                let elapsed = ctx.now().saturating_since(seen_at);
                self.stats.borrow_mut().mappings.push((
                    match role {
                        Role::Source => "mb-source".to_owned(),
                        Role::Sink => "mb-sink".to_owned(),
                    },
                    channel,
                    elapsed,
                ));
                ctx.bump("mapper.mb.mapped", 1);
                self.open_data_stream(ctx, idx);
            }
            RuntimeEvent::Input {
                translator,
                port,
                msg,
                connection,
            } => self.handle_input(ctx, translator, port, msg, connection),
            RuntimeEvent::InputBatch { inputs } => {
                for d in inputs {
                    self.handle_input(ctx, d.translator, d.port, d.msg, d.connection);
                }
            }
            _ => {}
        }
    }

    /// Translates one delivered input into a MediaBroker data frame —
    /// called once per [`RuntimeEvent::Input`] and once per element of
    /// an [`RuntimeEvent::InputBatch`].
    fn handle_input(
        &mut self,
        ctx: &mut Ctx<'_>,
        translator: TranslatorId,
        port: Symbol,
        msg: UMessage,
        connection: ConnectionId,
    ) {
        let Some(&idx) = self.by_translator.get(&translator) else {
            return;
        };
        let Some(b) = self.bridged.get(idx) else {
            return;
        };
        if b.role != Role::Sink || port != "media-in" {
            ack_input_done(ctx, self.runtime, connection, translator);
            return;
        }
        ctx.busy(calib::MB_FRAME_TRANSLATION);
        crate::obs::record_hop(
            ctx,
            "mediabroker",
            connection,
            &port,
            calib::MB_FRAME_TRANSLATION,
        );
        if let (Some(stream), true) = (b.stream, b.attached) {
            let frame = MbFrame::Data {
                payload: msg.into_body(),
            };
            let _ = ctx.stream_send(stream, frame.encode_framed());
            self.stats.borrow_mut().actions += 1;
        }
        ack_input_done(ctx, self.runtime, connection, translator);
    }
}

impl Process for MediaBrokerMapper {
    fn name(&self) -> &str {
        "mediabroker-mapper"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        crate::obs::announce(ctx, "mediabroker");
        self.client = Some(RuntimeClient::new(self.runtime));
        if let Ok(stream) = ctx.connect(self.broker) {
            self.control = Some(stream);
        }
        // Sink translators are configured statically.
        for channel in self.sink_channels.clone() {
            self.register_bridged(ctx, &channel, Role::Sink);
        }
        let interval = self.poll_interval;
        ctx.set_timer(interval, TIMER_POLL);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TIMER_POLL {
            if let Some(stream) = self.control {
                let _ = ctx.stream_send(stream, MbFrame::ListChannels.encode_framed());
            }
            let interval = self.poll_interval;
            ctx.set_timer(interval, TIMER_POLL);
        }
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
        if Some(stream) == self.control {
            match event {
                StreamEvent::Connected => {
                    let _ = ctx.stream_send(stream, MbFrame::ListChannels.encode_framed());
                }
                StreamEvent::Data(data) => {
                    self.control_acc.push(&data);
                    loop {
                        match self.control_acc.next() {
                            Ok(Some(frame)) => self.handle_control_frame(ctx, frame),
                            Ok(None) => break,
                            Err(_) => {
                                ctx.stream_close(stream);
                                break;
                            }
                        }
                    }
                }
                StreamEvent::Closed | StreamEvent::ConnectFailed => {
                    self.control = None;
                }
                _ => {}
            }
            return;
        }
        let Some(&idx) = self.data_streams.get(&stream) else {
            return;
        };
        match event {
            StreamEvent::Connected => {
                // Attach according to the role.
                let Some(b) = self.bridged.get(idx) else {
                    return;
                };
                let frame = match b.role {
                    Role::Source => MbFrame::Consume {
                        channel: b.channel.clone(),
                        media_type: "application/octet-stream".to_owned(),
                    },
                    Role::Sink => MbFrame::Produce {
                        channel: b.channel.clone(),
                        media_type: "application/octet-stream".to_owned(),
                    },
                };
                let _ = ctx.stream_send(stream, frame.encode_framed());
            }
            StreamEvent::Data(data) => {
                let Some(acc) = self.data_accs.get_mut(&stream) else {
                    return;
                };
                acc.push(&data);
                loop {
                    let frame = match self.data_accs.get_mut(&stream).map(|a| a.next()) {
                        Some(Ok(Some(f))) => f,
                        Some(Ok(None)) | None => break,
                        Some(Err(_)) => {
                            ctx.stream_close(stream);
                            break;
                        }
                    };
                    self.handle_data_frame(ctx, idx, frame);
                }
            }
            StreamEvent::Closed | StreamEvent::ConnectFailed => {
                self.data_streams.remove(&stream);
                self.data_accs.remove(&stream);
                if let Some(b) = self.bridged.get_mut(idx) {
                    b.stream = None;
                    b.attached = false;
                }
            }
            _ => {}
        }
    }

    fn on_local(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
        if handle_input_done_echo(ctx, &msg) {
            return;
        }
        if let Ok(event) = msg.downcast::<RuntimeEvent>() {
            self.handle_runtime_event(ctx, *event);
        }
    }
}
