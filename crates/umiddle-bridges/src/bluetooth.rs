//! The Bluetooth mapper: inquiry + SDP discovery, and BIP/HIDP
//! translators.
//!
//! One generic translator exists per profile ("a generic Bluetooth BIP
//! translator implementation which is parameterized for these different
//! specific types of devices based on different USDL documents" — paper
//! §3.4): the camera and the printer share the BIP machinery, the mouse
//! uses HIDP. Mouse signals are translated into small vector-markup
//! documents at the cost §5.2 measures (23 ms per signal).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use platform_bluetooth::{
    image_pull_request, image_push_packets, HidReport, InquiryMessage, ObexAccumulator,
    ObexGetClient, ObexPacket, Opcode, ReportAccumulator, SdpPdu, INQUIRY_GROUP, PSM_HID, PSM_SDP,
};
use simnet::{
    Addr, Ctx, Datagram, LocalMessage, NodeId, Payload, ProcId, Process, SimDuration, SimTime,
    StreamEvent, StreamId,
};
use umiddle_core::{
    ack_input_done, handle_input_done_echo, ConnectionId, MimeType, RuntimeClient, RuntimeEvent,
    Symbol, TranslatorId, UMessage,
};
use umiddle_usdl::{UsdlDocument, UsdlLibrary};

use crate::calib;
use crate::upnp::MapperStats;

const TIMER_INQUIRY: u64 = 1;

/// Self-echo carrying a translated native signal, delivered once the
/// mapper's modeled translation time has elapsed.
#[derive(Debug, Clone)]
struct PendingEmit {
    translator: TranslatorId,
    port: String,
    msg: UMessage,
    started: simnet::SimTime,
}

/// A mapped Bluetooth service (one SDP record on one device).
#[derive(Debug)]
struct BtService {
    profile: String,
    psm: u16,
    doc: UsdlDocument,
    translator: Option<TranslatorId>,
}

#[derive(Debug)]
struct BtDevice {
    name: String,
    last_seen: SimTime,
    seen_at: SimTime,
    sdp_queried: bool,
    services: Vec<BtService>,
}

/// In-flight OBEX operations on BIP devices.
enum ObexOp {
    /// `capture` input: PUT RemoteShutter, then GET the newest image.
    Shutter {
        translator: TranslatorId,
        connection: ConnectionId,
        acc: ObexAccumulator,
        pulling: Option<ObexGetClient>,
        started: SimTime,
    },
    /// Initial or explicit image pull.
    Pull {
        translator: TranslatorId,
        client: ObexGetClient,
    },
    /// `image-in` input on a printer: PUT the image.
    Push {
        translator: TranslatorId,
        connection: ConnectionId,
        packets: Vec<Payload>,
        acc: ObexAccumulator,
    },
}

impl std::fmt::Debug for ObexOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            ObexOp::Shutter { .. } => "shutter",
            ObexOp::Pull { .. } => "pull",
            ObexOp::Push { .. } => "push",
        };
        write!(f, "ObexOp::{kind}")
    }
}

/// The Bluetooth mapper process.
pub struct BluetoothMapper {
    runtime: ProcId,
    usdl: UsdlLibrary,
    inquiry_port: u16,
    inquiry_interval: SimDuration,
    client: Option<RuntimeClient>,
    devices: HashMap<NodeId, BtDevice>,
    /// Registration token → (node, profile).
    pending_regs: HashMap<u64, (NodeId, String)>,
    /// Translator → (node, profile).
    by_translator: HashMap<TranslatorId, (NodeId, String)>,
    sdp_streams: HashMap<StreamId, NodeId>,
    hid_streams: HashMap<StreamId, (TranslatorId, ReportAccumulator)>,
    obex_ops: HashMap<StreamId, ObexOp>,
    stats: Rc<RefCell<MapperStats>>,
}

impl std::fmt::Debug for BluetoothMapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BluetoothMapper")
            .field("devices", &self.devices.len())
            .finish_non_exhaustive()
    }
}

impl BluetoothMapper {
    /// Creates a mapper. `inquiry_port` must be free on the node.
    pub fn new(runtime: ProcId, usdl: UsdlLibrary, inquiry_port: u16) -> BluetoothMapper {
        BluetoothMapper {
            runtime,
            usdl,
            inquiry_port,
            inquiry_interval: SimDuration::from_secs(10),
            client: None,
            devices: HashMap::new(),
            pending_regs: HashMap::new(),
            by_translator: HashMap::new(),
            sdp_streams: HashMap::new(),
            hid_streams: HashMap::new(),
            obex_ops: HashMap::new(),
            stats: Rc::new(RefCell::new(MapperStats::default())),
        }
    }

    /// A mapper with the default inquiry port (5900).
    pub fn with_defaults(runtime: ProcId, usdl: UsdlLibrary) -> BluetoothMapper {
        BluetoothMapper::new(runtime, usdl, 5900)
    }

    /// Shared statistics handle.
    pub fn stats_handle(&self) -> Rc<RefCell<MapperStats>> {
        Rc::clone(&self.stats)
    }

    fn send_inquiry(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx.multicast(
            self.inquiry_port,
            INQUIRY_GROUP,
            InquiryMessage::Inquiry.encode(),
        );
    }

    fn expire_devices(&mut self, ctx: &mut Ctx<'_>) {
        let deadline = self.inquiry_interval * 3;
        let now = ctx.now();
        let dead: Vec<NodeId> = self
            .devices
            .iter()
            .filter(|(_, d)| now.saturating_since(d.last_seen) > deadline)
            .map(|(n, _)| *n)
            .collect();
        for node in dead {
            if let Some(dev) = self.devices.remove(&node) {
                for svc in dev.services {
                    if let Some(t) = svc.translator {
                        self.by_translator.remove(&t);
                        if let Some(client) = self.client.as_ref() {
                            client.unregister(ctx, t);
                        }
                    }
                }
                ctx.bump("mapper.bt.expired", 1);
            }
        }
    }

    fn handle_sdp_response(&mut self, ctx: &mut Ctx<'_>, node: NodeId, pdu: SdpPdu) {
        let SdpPdu::SearchResponse { records, .. } = pdu else {
            return;
        };
        ctx.busy(platform_bluetooth::calib::SDP_CODEC);
        let Some(dev) = self.devices.get_mut(&node) else {
            return;
        };
        for record in records {
            if dev.services.iter().any(|s| s.profile == record.profile) {
                continue;
            }
            let Some(doc) = self.usdl.get("bluetooth", &record.profile) else {
                ctx.bump("mapper.bt.unknown_profile", 1);
                continue;
            };
            let doc = doc.clone();
            // Figure 10: per-port translator instantiation cost.
            ctx.busy(calib::instantiation_cost(doc.ports().len(), 0));
            let profile = doc.profile(Some(&record.name));
            let client = self.client.as_mut().expect("client set in on_start");
            let me = ctx.me();
            let token = client.register(ctx, profile, me);
            self.pending_regs
                .insert(token, (node, record.profile.clone()));
            dev.services.push(BtService {
                profile: record.profile.clone(),
                psm: record.psm,
                doc,
                translator: None,
            });
        }
    }

    fn service_mut(&mut self, node: NodeId, profile: &str) -> Option<&mut BtService> {
        self.devices
            .get_mut(&node)?
            .services
            .iter_mut()
            .find(|s| s.profile == profile)
    }

    fn emit_image(&mut self, ctx: &mut Ctx<'_>, translator: TranslatorId, data: Vec<u8>) {
        let mime: MimeType = "image/jpeg".parse().expect("static mime");
        ctx.busy(calib::EVENT_TRANSLATION);
        crate::obs::record_egress(ctx, "bluetooth", calib::EVENT_TRANSLATION);
        self.stats.borrow_mut().events += 1;
        let client = self.client.as_ref().expect("client set");
        client.output(ctx, translator, "image-out", UMessage::new(mime, data));
    }

    fn handle_runtime_event(&mut self, ctx: &mut Ctx<'_>, event: RuntimeEvent) {
        match event {
            RuntimeEvent::Registered { token, translator } => {
                let Some((node, profile)) = self.pending_regs.remove(&token) else {
                    return;
                };
                let (seen_at, device_name) = match self.devices.get(&node) {
                    Some(d) => (Some(d.seen_at), d.name.clone()),
                    None => (None, String::new()),
                };
                let (device_type, psm) = {
                    let Some(svc) = self.service_mut(node, &profile) else {
                        return;
                    };
                    svc.translator = Some(translator);
                    (svc.doc.device_type().to_owned(), svc.psm)
                };
                self.by_translator
                    .insert(translator, (node, profile.clone()));
                if let Some(seen_at) = seen_at {
                    let elapsed = ctx.now().saturating_since(seen_at);
                    self.stats
                        .borrow_mut()
                        .mappings
                        .push((device_type, device_name, elapsed));
                    ctx.bump("mapper.bt.mapped", 1);
                }
                // The mouse pushes reports: open the interrupt channel.
                if profile == "hidp-mouse" {
                    if let Ok(stream) = ctx.connect(Addr::new(node, PSM_HID.max(psm))) {
                        self.hid_streams
                            .insert(stream, (translator, ReportAccumulator::new()));
                    }
                }
                // Cameras announce their newest stored image into the
                // common space at mapping time, so freshly wired sinks
                // have something to show.
                if profile == "bip-camera" {
                    if let Ok(stream) = ctx.connect(Addr::new(node, psm)) {
                        self.obex_ops.insert(
                            stream,
                            ObexOp::Pull {
                                translator,
                                client: ObexGetClient::new(),
                            },
                        );
                    }
                }
            }
            RuntimeEvent::Input {
                translator,
                port,
                msg,
                connection,
            } => self.handle_input(ctx, translator, port, msg, connection),
            RuntimeEvent::InputBatch { inputs } => {
                for d in inputs {
                    self.handle_input(ctx, d.translator, d.port, d.msg, d.connection);
                }
            }
            _ => {}
        }
    }

    /// Translates one delivered input into the matching OBEX operation —
    /// called once per [`RuntimeEvent::Input`] and once per element of
    /// an [`RuntimeEvent::InputBatch`].
    fn handle_input(
        &mut self,
        ctx: &mut Ctx<'_>,
        translator: TranslatorId,
        port: Symbol,
        msg: UMessage,
        connection: ConnectionId,
    ) {
        let Some((node, profile)) = self.by_translator.get(&translator).cloned() else {
            return;
        };
        let Some(svc) = self
            .devices
            .get(&node)
            .and_then(|d| d.services.iter().find(|s| s.profile == profile))
        else {
            return;
        };
        ctx.busy(calib::CONTROL_TRANSLATION);
        crate::obs::record_hop(
            ctx,
            "bluetooth",
            connection,
            &port,
            calib::CONTROL_TRANSLATION,
        );
        match (profile.as_str(), port.as_str()) {
            ("bip-camera", "capture") => {
                if let Ok(stream) = ctx.connect(Addr::new(node, svc.psm)) {
                    self.obex_ops.insert(
                        stream,
                        ObexOp::Shutter {
                            translator,
                            connection,
                            acc: ObexAccumulator::new(),
                            pulling: None,
                            started: ctx.now(),
                        },
                    );
                }
            }
            ("bip-printer", "image-in") => {
                let packets: Vec<Payload> = image_push_packets("photo.jpg", msg.body_payload())
                    .iter()
                    .map(ObexPacket::encode)
                    .collect();
                if let Ok(stream) = ctx.connect(Addr::new(node, svc.psm)) {
                    self.obex_ops.insert(
                        stream,
                        ObexOp::Push {
                            translator,
                            connection,
                            packets,
                            acc: ObexAccumulator::new(),
                        },
                    );
                }
            }
            _ => {
                ack_input_done(ctx, self.runtime, connection, translator);
            }
        }
    }

    fn handle_hid_data(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, data: &[u8]) {
        let Some((translator, acc)) = self.hid_streams.get_mut(&stream) else {
            return;
        };
        let translator = *translator;
        acc.push(data);
        let mut reports = Vec::new();
        while let Some(r) = acc.next() {
            reports.push(r);
        }
        for report in reports {
            // §5.2: translating the mouse signal to a vector-markup
            // document costs ~23 ms; the emission is deferred through a
            // self-echo so that time actually elapses first.
            ctx.busy(calib::HID_TRANSLATION);
            crate::obs::record_egress(ctx, "bluetooth", calib::HID_TRANSLATION);
            let (port, msg) = match report {
                HidReport::Buttons(mask) => {
                    let state = if mask != 0 { "press" } else { "release" };
                    ("clicks".to_owned(), UMessage::text(state))
                }
                HidReport::Motion { dx, dy } => {
                    let vml = format!("<vml><stroke dx=\"{dx}\" dy=\"{dy}\"/></vml>");
                    let mime: MimeType = "application/vml".parse().expect("static mime");
                    ("pointer".to_owned(), UMessage::new(mime, vml.into_bytes()))
                }
            };
            let me = ctx.me();
            ctx.send_local(
                me,
                PendingEmit {
                    translator,
                    port,
                    msg,
                    started: ctx.now(),
                },
            );
        }
    }

    fn handle_obex_data(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, data: &[u8]) {
        let Some(op) = self.obex_ops.get_mut(&stream) else {
            return;
        };
        match op {
            ObexOp::Shutter {
                translator,
                connection,
                acc,
                pulling,
                started,
            } => {
                let translator = *translator;
                let connection = *connection;
                let started = *started;
                if let Some(client) = pulling {
                    match client.push(data) {
                        Ok(Some((_, image))) => {
                            self.obex_ops.remove(&stream);
                            ctx.stream_close(stream);
                            self.emit_image(ctx, translator, image);
                            let mut stats = self.stats.borrow_mut();
                            stats.actions += 1;
                            stats
                                .action_latencies
                                .push(ctx.now().saturating_since(started));
                            drop(stats);
                            ack_input_done(ctx, self.runtime, connection, translator);
                        }
                        Ok(None) => {}
                        Err(_) => {
                            self.obex_ops.remove(&stream);
                            ctx.stream_close(stream);
                            ack_input_done(ctx, self.runtime, connection, translator);
                        }
                    }
                    return;
                }
                acc.push(data);
                match acc.next() {
                    Ok(Some(pkt)) if pkt.opcode == Opcode::Success => {
                        // Shutter done; now pull the new image (named by
                        // nothing: the camera returns its first image, so
                        // ask for the newest by pulling without a name —
                        // the camera's GET default).
                        *pulling = Some(ObexGetClient::new());
                        let _ = ctx.stream_send(stream, image_pull_request(None));
                    }
                    Ok(Some(_)) | Ok(None) => {}
                    Err(_) => {
                        self.obex_ops.remove(&stream);
                        ctx.stream_close(stream);
                        ack_input_done(ctx, self.runtime, connection, translator);
                    }
                }
            }
            ObexOp::Pull { translator, client } => {
                let translator = *translator;
                match client.push(data) {
                    Ok(Some((_, image))) => {
                        self.obex_ops.remove(&stream);
                        ctx.stream_close(stream);
                        self.emit_image(ctx, translator, image);
                    }
                    Ok(None) => {}
                    Err(_) => {
                        self.obex_ops.remove(&stream);
                        ctx.stream_close(stream);
                    }
                }
            }
            ObexOp::Push {
                translator,
                connection,
                acc,
                ..
            } => {
                let translator = *translator;
                let connection = *connection;
                acc.push(data);
                loop {
                    match acc.next() {
                        Ok(Some(pkt)) => match pkt.opcode {
                            Opcode::Success => {
                                self.obex_ops.remove(&stream);
                                ctx.stream_close(stream);
                                self.stats.borrow_mut().actions += 1;
                                ack_input_done(ctx, self.runtime, connection, translator);
                                return;
                            }
                            Opcode::Continue => {}
                            _ => {
                                self.obex_ops.remove(&stream);
                                ctx.stream_close(stream);
                                ack_input_done(ctx, self.runtime, connection, translator);
                                return;
                            }
                        },
                        Ok(None) => return,
                        Err(_) => {
                            self.obex_ops.remove(&stream);
                            ctx.stream_close(stream);
                            ack_input_done(ctx, self.runtime, connection, translator);
                            return;
                        }
                    }
                }
            }
        }
    }
}

impl Process for BluetoothMapper {
    fn name(&self) -> &str {
        "bluetooth-mapper"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        crate::obs::announce(ctx, "bluetooth");
        ctx.bind(self.inquiry_port).expect("inquiry port free");
        let _ = ctx.join_group(INQUIRY_GROUP);
        self.client = Some(RuntimeClient::new(self.runtime));
        self.send_inquiry(ctx);
        let interval = self.inquiry_interval;
        ctx.set_timer(interval, TIMER_INQUIRY);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TIMER_INQUIRY {
            self.expire_devices(ctx);
            self.send_inquiry(ctx);
            let interval = self.inquiry_interval;
            ctx.set_timer(interval, TIMER_INQUIRY);
        }
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        let Some(InquiryMessage::Response { name, .. }) = InquiryMessage::decode(&dgram.data)
        else {
            return;
        };
        let node = dgram.src.node;
        let now = ctx.now();
        let new = !self.devices.contains_key(&node);
        let dev = self.devices.entry(node).or_insert_with(|| BtDevice {
            name: name.clone(),
            last_seen: now,
            seen_at: now,
            sdp_queried: false,
            services: Vec::new(),
        });
        dev.last_seen = now;
        if new || !dev.sdp_queried {
            dev.sdp_queried = true;
            // Paging latency for the SDP connection.
            ctx.busy(platform_bluetooth::calib::PAGE_LATENCY);
            if let Ok(stream) = ctx.connect(Addr::new(node, PSM_SDP)) {
                self.sdp_streams.insert(stream, node);
            }
        }
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
        if let Some(node) = self.sdp_streams.get(&stream).copied() {
            match event {
                StreamEvent::Connected => {
                    let req = SdpPdu::SearchRequest {
                        transaction: 1,
                        pattern: String::new(),
                    };
                    ctx.busy(platform_bluetooth::calib::SDP_CODEC);
                    let _ = ctx.stream_send(stream, req.encode());
                }
                StreamEvent::Data(data) => {
                    if let Some(pdu) = SdpPdu::decode(&data) {
                        self.handle_sdp_response(ctx, node, pdu);
                    }
                    self.sdp_streams.remove(&stream);
                }
                StreamEvent::Closed | StreamEvent::ConnectFailed => {
                    self.sdp_streams.remove(&stream);
                }
                _ => {}
            }
            return;
        }
        if self.hid_streams.contains_key(&stream) {
            match event {
                StreamEvent::Data(data) => self.handle_hid_data(ctx, stream, &data),
                StreamEvent::Closed | StreamEvent::ConnectFailed => {
                    self.hid_streams.remove(&stream);
                }
                _ => {}
            }
            return;
        }
        if self.obex_ops.contains_key(&stream) {
            match event {
                StreamEvent::Connected => {
                    // Kick off the operation. Each packet goes out as its
                    // own shared buffer — no concatenation copy.
                    let to_send: Vec<Payload> = match self.obex_ops.get_mut(&stream) {
                        Some(ObexOp::Shutter { .. }) => {
                            // PUT RemoteShutter (final, no body).
                            vec![ObexPacket::new(Opcode::PutFinal)
                                .with_header(platform_bluetooth::Header::Name(
                                    "RemoteShutter".to_owned(),
                                ))
                                .with_header(platform_bluetooth::Header::EndOfBody(Payload::new()))
                                .encode()]
                        }
                        Some(ObexOp::Pull { .. }) => vec![image_pull_request(None)],
                        Some(ObexOp::Push { packets, .. }) => std::mem::take(packets),
                        None => Vec::new(),
                    };
                    for bytes in to_send {
                        let _ = ctx.stream_send(stream, bytes);
                    }
                }
                StreamEvent::Data(data) => self.handle_obex_data(ctx, stream, &data),
                StreamEvent::Closed | StreamEvent::ConnectFailed => {
                    if let Some(op) = self.obex_ops.remove(&stream) {
                        match op {
                            ObexOp::Shutter {
                                translator,
                                connection,
                                ..
                            }
                            | ObexOp::Push {
                                translator,
                                connection,
                                ..
                            } => {
                                ack_input_done(ctx, self.runtime, connection, translator);
                            }
                            ObexOp::Pull { .. } => {}
                        }
                    }
                }
                _ => {}
            }
        }
    }

    fn on_local(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
        if handle_input_done_echo(ctx, &msg) {
            return;
        }
        let msg = match msg.downcast::<PendingEmit>() {
            Ok(pending) => {
                let mut stats = self.stats.borrow_mut();
                stats.events += 1;
                stats
                    .translation_latencies
                    .push(ctx.now().saturating_since(pending.started));
                drop(stats);
                ctx.bump("mapper.bt.hid_translated", 1);
                let client = self.client.as_ref().expect("client set");
                client.output(ctx, pending.translator, pending.port, pending.msg);
                return;
            }
            Err(original) => original,
        };
        if let Ok(event) = msg.downcast::<RuntimeEvent>() {
            self.handle_runtime_event(ctx, *event);
        }
    }
}
