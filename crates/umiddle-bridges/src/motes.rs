//! The Berkeley-motes mapper: base-station attachment and per-mote
//! translators.
//!
//! The mapper sits on the base-station node; the base station forwards
//! decoded readings as local messages. The first reading from a mote
//! creates a translator for it; readings are emitted on its
//! `temperature` and `light-level` output ports, and an `Input` on the
//! `sampling` port reconfigures the whole radio via the base station.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use platform_motes::{BaseStationCommand, BaseStationEvent};
use simnet::{Ctx, LocalMessage, ProcId, Process, SimDuration, SimTime};
use umiddle_core::{
    ack_input_done, handle_input_done_echo, ConnectionId, RuntimeClient, RuntimeEvent, Symbol,
    TranslatorId, UMessage,
};
use umiddle_usdl::UsdlLibrary;

use crate::calib;
use crate::upnp::MapperStats;

const TIMER_EXPIRE: u64 = 1;

#[derive(Debug)]
struct MappedMote {
    translator: Option<TranslatorId>,
    last_seen: SimTime,
    seen_at: SimTime,
}

/// The motes mapper process. Wire the base station's sink to this
/// process's id.
pub struct MotesMapper {
    runtime: ProcId,
    usdl: UsdlLibrary,
    /// The base-station process (for sampling reconfiguration).
    base_station: Option<ProcId>,
    client: Option<RuntimeClient>,
    motes: HashMap<u16, MappedMote>,
    pending_regs: HashMap<u64, u16>,
    by_translator: HashMap<TranslatorId, u16>,
    expiry: SimDuration,
    stats: Rc<RefCell<MapperStats>>,
}

impl std::fmt::Debug for MotesMapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MotesMapper")
            .field("motes", &self.motes.len())
            .finish_non_exhaustive()
    }
}

impl MotesMapper {
    /// Creates a mapper; `base_station` is the co-located base-station
    /// process (set after spawning it, or `None` for receive-only).
    pub fn new(runtime: ProcId, usdl: UsdlLibrary, base_station: Option<ProcId>) -> MotesMapper {
        MotesMapper {
            runtime,
            usdl,
            base_station,
            client: None,
            motes: HashMap::new(),
            pending_regs: HashMap::new(),
            by_translator: HashMap::new(),
            expiry: SimDuration::from_secs(30),
            stats: Rc::new(RefCell::new(MapperStats::default())),
        }
    }

    /// Shared statistics handle.
    pub fn stats_handle(&self) -> Rc<RefCell<MapperStats>> {
        Rc::clone(&self.stats)
    }

    fn handle_reading(&mut self, ctx: &mut Ctx<'_>, mote: u16, reading: platform_motes::Reading) {
        let now = ctx.now();
        let known = self.motes.contains_key(&mote);
        let entry = self.motes.entry(mote).or_insert_with(|| MappedMote {
            translator: None,
            last_seen: now,
            seen_at: now,
        });
        entry.last_seen = now;
        if !known {
            let Some(doc) = self.usdl.get("motes", "sensor-mote") else {
                ctx.bump("mapper.motes.missing_usdl", 1);
                return;
            };
            let doc = doc.clone();
            ctx.busy(calib::instantiation_cost(doc.ports().len(), 0));
            let profile = doc.profile(Some(&format!("Mote {mote}")));
            let client = self.client.as_mut().expect("client set");
            let me = ctx.me();
            let token = client.register(ctx, profile, me);
            self.pending_regs.insert(token, mote);
            return; // this first reading is consumed by discovery
        }
        let Some(translator) = entry.translator else {
            return;
        };
        ctx.busy(calib::EVENT_TRANSLATION);
        crate::obs::record_egress(ctx, "motes", calib::EVENT_TRANSLATION);
        self.stats.borrow_mut().events += 1;
        let client = self.client.as_ref().expect("client set");
        let temperature = format!("{:.1}", reading.temperature_decicelsius as f64 / 10.0);
        client.output(ctx, translator, "temperature", UMessage::text(temperature));
        client.output(
            ctx,
            translator,
            "light-level",
            UMessage::text(reading.light.to_string()),
        );
    }

    fn handle_runtime_event(&mut self, ctx: &mut Ctx<'_>, event: RuntimeEvent) {
        match event {
            RuntimeEvent::Registered { token, translator } => {
                let Some(mote) = self.pending_regs.remove(&token) else {
                    return;
                };
                let Some(entry) = self.motes.get_mut(&mote) else {
                    return;
                };
                entry.translator = Some(translator);
                self.by_translator.insert(translator, mote);
                let elapsed = ctx.now().saturating_since(entry.seen_at);
                self.stats.borrow_mut().mappings.push((
                    "sensor-mote".to_owned(),
                    format!("Mote {mote}"),
                    elapsed,
                ));
                ctx.bump("mapper.motes.mapped", 1);
            }
            RuntimeEvent::Input {
                translator,
                port,
                msg,
                connection,
            } => self.handle_input(ctx, translator, port, msg, connection),
            RuntimeEvent::InputBatch { inputs } => {
                for d in inputs {
                    self.handle_input(ctx, d.translator, d.port, d.msg, d.connection);
                }
            }
            _ => {}
        }
    }

    /// Translates one delivered input into a base-station command —
    /// called once per [`RuntimeEvent::Input`] and once per element of
    /// an [`RuntimeEvent::InputBatch`].
    fn handle_input(
        &mut self,
        ctx: &mut Ctx<'_>,
        translator: TranslatorId,
        port: Symbol,
        msg: UMessage,
        connection: ConnectionId,
    ) {
        if port == "sampling" {
            if let (Some(bs), Some(millis)) = (
                self.base_station,
                msg.body_text().and_then(|t| t.parse::<u16>().ok()),
            ) {
                ctx.busy(calib::CONTROL_TRANSLATION);
                crate::obs::record_hop(ctx, "motes", connection, &port, calib::CONTROL_TRANSLATION);
                ctx.send_local(bs, BaseStationCommand::SetSamplingInterval { millis });
                self.stats.borrow_mut().actions += 1;
            }
        }
        ack_input_done(ctx, self.runtime, connection, translator);
    }
}

impl Process for MotesMapper {
    fn name(&self) -> &str {
        "motes-mapper"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        crate::obs::announce(ctx, "motes");
        self.client = Some(RuntimeClient::new(self.runtime));
        let expiry = self.expiry;
        ctx.set_timer(expiry, TIMER_EXPIRE);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TIMER_EXPIRE {
            let now = ctx.now();
            let expiry = self.expiry;
            let dead: Vec<u16> = self
                .motes
                .iter()
                .filter(|(_, m)| now.saturating_since(m.last_seen) > expiry)
                .map(|(id, _)| *id)
                .collect();
            for id in dead {
                if let Some(m) = self.motes.remove(&id) {
                    if let Some(t) = m.translator {
                        self.by_translator.remove(&t);
                        if let Some(client) = self.client.as_ref() {
                            client.unregister(ctx, t);
                        }
                        ctx.bump("mapper.motes.expired", 1);
                    }
                }
            }
            ctx.set_timer(expiry, TIMER_EXPIRE);
        }
    }

    fn on_local(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
        if handle_input_done_echo(ctx, &msg) {
            return;
        }
        let msg = match msg.downcast::<RuntimeEvent>() {
            Ok(event) => {
                self.handle_runtime_event(ctx, *event);
                return;
            }
            Err(original) => original,
        };
        if let Ok(ev) = msg.downcast::<BaseStationEvent>() {
            let BaseStationEvent::Reading { mote, reading } = *ev;
            self.handle_reading(ctx, mote, reading);
        }
    }
}
