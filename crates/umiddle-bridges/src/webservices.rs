//! The web-services mapper: description probing and RPC translators.
//!
//! Web services have no multicast discovery; the mapper is configured
//! with endpoint addresses to probe. Each description's `kind` selects a
//! USDL document. Inputs invoke the bound operation; output ports with
//! polling bindings (`tail`, `current`) are refreshed on a timer and
//! emitted when their value changes.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use platform_webservices::{MethodCall, MethodResponse, WsClient, WsEvent};
use simnet::{
    Addr, Ctx, LocalMessage, ProcId, Process, SimDuration, SimTime, StreamEvent, StreamId,
};
use umiddle_core::{
    ack_input_done, handle_input_done_echo, ConnectionId, RuntimeClient, RuntimeEvent, Symbol,
    TranslatorId, UMessage,
};
use umiddle_usdl::{UsdlDocument, UsdlLibrary};

use crate::calib;
use crate::upnp::MapperStats;

const TIMER_POLL: u64 = 1;

#[derive(Debug)]
struct WsService {
    location: Addr,
    doc: Option<UsdlDocument>,
    translator: Option<TranslatorId>,
    seen_at: SimTime,
    /// Last emitted value per polled output port (dedup).
    last_values: HashMap<String, String>,
}

#[derive(Debug)]
enum WsCall {
    Input {
        translator: TranslatorId,
        connection: ConnectionId,
    },
    Poll {
        service_idx: usize,
        port: String,
    },
}

/// The web-services mapper process.
pub struct WsMapper {
    runtime: ProcId,
    usdl: UsdlLibrary,
    ws: WsClient,
    endpoints: Vec<Addr>,
    poll_interval: SimDuration,
    client: Option<RuntimeClient>,
    services: Vec<WsService>,
    calls: HashMap<u64, WsCall>,
    next_call: u64,
    pending_regs: HashMap<u64, usize>,
    by_translator: HashMap<TranslatorId, usize>,
    stats: Rc<RefCell<MapperStats>>,
}

impl std::fmt::Debug for WsMapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WsMapper")
            .field("services", &self.services.len())
            .finish_non_exhaustive()
    }
}

impl WsMapper {
    /// Creates a mapper probing the given endpoints.
    pub fn new(runtime: ProcId, usdl: UsdlLibrary, endpoints: Vec<Addr>) -> WsMapper {
        WsMapper {
            runtime,
            usdl,
            ws: WsClient::new(),
            endpoints,
            poll_interval: SimDuration::from_secs(10),
            client: None,
            services: Vec::new(),
            calls: HashMap::new(),
            next_call: 1,
            pending_regs: HashMap::new(),
            by_translator: HashMap::new(),
            stats: Rc::new(RefCell::new(MapperStats::default())),
        }
    }

    /// Shared statistics handle.
    pub fn stats_handle(&self) -> Rc<RefCell<MapperStats>> {
        Rc::clone(&self.stats)
    }

    fn poll_outputs(&mut self, ctx: &mut Ctx<'_>) {
        let polls: Vec<(usize, Addr, String, String)> = self
            .services
            .iter()
            .enumerate()
            .filter_map(|(idx, s)| {
                let doc = s.doc.as_ref()?;
                s.translator?;
                Some((idx, s.location, doc.clone()))
            })
            .flat_map(|(idx, location, doc)| {
                doc.ports()
                    .iter()
                    .filter(|p| p.spec.direction == umiddle_core::Direction::Output)
                    .filter_map(|p| {
                        let op = p.bindings.iter().find_map(|b| b.get("operation"))?;
                        Some((idx, location, p.spec.name.clone(), op.to_owned()))
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        for (idx, location, port, operation) in polls {
            let call_id = self.next_call;
            self.next_call += 1;
            self.calls.insert(
                call_id,
                WsCall::Poll {
                    service_idx: idx,
                    port,
                },
            );
            self.ws
                .call(ctx, location, &MethodCall::new(&operation, vec![]), call_id);
        }
    }

    fn handle_ws_event(&mut self, ctx: &mut Ctx<'_>, event: WsEvent) {
        match event {
            WsEvent::Description { location, desc } => {
                let Some(svc) = self
                    .services
                    .iter_mut()
                    .find(|s| s.location == location && s.doc.is_none())
                else {
                    return;
                };
                let Some(doc) = self.usdl.get("webservices", &desc.kind) else {
                    ctx.bump("mapper.ws.unknown_kind", 1);
                    return;
                };
                let doc = doc.clone();
                svc.doc = Some(doc.clone());
                svc.seen_at = ctx.now();
                ctx.busy(calib::instantiation_cost(doc.ports().len(), 0));
                let profile = doc.profile(Some(&desc.name));
                let client = self.client.as_mut().expect("client set");
                let me = ctx.me();
                let token = client.register(ctx, profile, me);
                let idx = self
                    .services
                    .iter()
                    .position(|s| s.location == location)
                    .expect("found above");
                self.pending_regs.insert(token, idx);
            }
            WsEvent::CallResult { call_id, response } => match self.calls.remove(&call_id) {
                Some(WsCall::Input {
                    translator,
                    connection,
                }) => {
                    self.stats.borrow_mut().actions += 1;
                    ack_input_done(ctx, self.runtime, connection, translator);
                }
                Some(WsCall::Poll { service_idx, port }) => {
                    let MethodResponse::Value(value) = response else {
                        return;
                    };
                    let Some(svc) = self.services.get_mut(service_idx) else {
                        return;
                    };
                    let Some(translator) = svc.translator else {
                        return;
                    };
                    if svc.last_values.get(&port) == Some(&value) || value.is_empty() {
                        return;
                    }
                    svc.last_values.insert(port.clone(), value.clone());
                    ctx.busy(calib::EVENT_TRANSLATION);
                    crate::obs::record_egress(ctx, "webservices", calib::EVENT_TRANSLATION);
                    self.stats.borrow_mut().events += 1;
                    let client = self.client.as_ref().expect("client set");
                    client.output(ctx, translator, port, UMessage::text(value));
                }
                None => {}
            },
            WsEvent::Failed { call_id } => {
                if let Some(WsCall::Input {
                    translator,
                    connection,
                }) = self.calls.remove(&call_id)
                {
                    ack_input_done(ctx, self.runtime, connection, translator);
                }
            }
        }
    }

    fn handle_runtime_event(&mut self, ctx: &mut Ctx<'_>, event: RuntimeEvent) {
        match event {
            RuntimeEvent::Registered { token, translator } => {
                let Some(idx) = self.pending_regs.remove(&token) else {
                    return;
                };
                let Some(svc) = self.services.get_mut(idx) else {
                    return;
                };
                svc.translator = Some(translator);
                self.by_translator.insert(translator, idx);
                let elapsed = ctx.now().saturating_since(svc.seen_at);
                let kind = svc
                    .doc
                    .as_ref()
                    .map(|d| d.device_type().to_owned())
                    .unwrap_or_default();
                self.stats.borrow_mut().mappings.push((
                    kind,
                    format!("ws@{}", svc.location),
                    elapsed,
                ));
                ctx.bump("mapper.ws.mapped", 1);
            }
            RuntimeEvent::Input {
                translator,
                port,
                msg,
                connection,
            } => self.handle_input(ctx, translator, port, msg, connection),
            RuntimeEvent::InputBatch { inputs } => {
                for d in inputs {
                    self.handle_input(ctx, d.translator, d.port, d.msg, d.connection);
                }
            }
            _ => {}
        }
    }

    /// Translates one delivered input into an XML-RPC method call —
    /// called once per [`RuntimeEvent::Input`] and once per element of
    /// an [`RuntimeEvent::InputBatch`].
    fn handle_input(
        &mut self,
        ctx: &mut Ctx<'_>,
        translator: TranslatorId,
        port: Symbol,
        msg: UMessage,
        connection: ConnectionId,
    ) {
        let Some(&idx) = self.by_translator.get(&translator) else {
            return;
        };
        let Some(svc) = self.services.get(idx) else {
            return;
        };
        let Some(doc) = svc.doc.as_ref() else { return };
        let Some(usdl_port) = doc.port(&port) else {
            ack_input_done(ctx, self.runtime, connection, translator);
            return;
        };
        let Some(operation) = usdl_port
            .bindings
            .iter()
            .find_map(|b| b.get("operation"))
            .map(str::to_owned)
        else {
            ack_input_done(ctx, self.runtime, connection, translator);
            return;
        };
        ctx.busy(calib::CONTROL_TRANSLATION);
        crate::obs::record_hop(
            ctx,
            "webservices",
            connection,
            &port,
            calib::CONTROL_TRANSLATION,
        );
        let call_id = self.next_call;
        self.next_call += 1;
        self.calls.insert(
            call_id,
            WsCall::Input {
                translator,
                connection,
            },
        );
        let param = msg.body_text().unwrap_or_default().to_owned();
        let location = svc.location;
        self.ws.call(
            ctx,
            location,
            &MethodCall::new(&operation, vec![param]),
            call_id,
        );
    }
}

impl Process for WsMapper {
    fn name(&self) -> &str {
        "ws-mapper"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        crate::obs::announce(ctx, "webservices");
        self.client = Some(RuntimeClient::new(self.runtime));
        self.services = self
            .endpoints
            .iter()
            .map(|&location| WsService {
                location,
                doc: None,
                translator: None,
                seen_at: ctx.now(),
                last_values: HashMap::new(),
            })
            .collect();
        for location in self.endpoints.clone() {
            self.ws.describe(ctx, location);
        }
        let interval = self.poll_interval;
        ctx.set_timer(interval, TIMER_POLL);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TIMER_POLL {
            self.poll_outputs(ctx);
            let interval = self.poll_interval;
            ctx.set_timer(interval, TIMER_POLL);
        }
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
        let events = self.ws.handle_stream(ctx, stream, event);
        for ev in events {
            self.handle_ws_event(ctx, ev);
        }
    }

    fn on_local(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
        if handle_input_done_echo(ctx, &msg) {
            return;
        }
        if let Ok(event) = msg.downcast::<RuntimeEvent>() {
            self.handle_runtime_event(ctx, *event);
        }
    }
}
