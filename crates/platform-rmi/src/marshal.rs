//! Java-serialization-style marshaling.
//!
//! Java RMI's wire format is notoriously verbose: every object carries
//! its full class name, field names and type tags. That verbosity (plus
//! per-call protocol chatter) is why the paper's RMI echo tops out at
//! 3.2 Mbps on a 10 Mbps hub (Figure 11) while MediaBroker reaches 6.2.
//! This codec reproduces the *structure* of that cost: self-describing
//! tagged values with embedded names.

use std::fmt;

use simnet::Payload;

/// A marshaled Java-ish value.
#[derive(Debug, Clone, PartialEq)]
pub enum JavaValue {
    /// `null`.
    Null,
    /// `int`.
    Int(i32),
    /// `long`.
    Long(i64),
    /// `java.lang.String`.
    Str(String),
    /// `byte[]` as a shared [`Payload`]: a `UMessage` body crosses the
    /// bridge into an RMI call argument without copying, and
    /// [`JavaValue::unmarshal_payload`] returns it as a zero-copy slice
    /// of the received frame.
    Bytes(Payload),
    /// An object: class name plus named fields.
    Object {
        /// Fully qualified class name.
        class: String,
        /// Field name/value pairs.
        fields: Vec<(String, JavaValue)>,
    },
    /// A list of values.
    List(Vec<JavaValue>),
}

impl fmt::Display for JavaValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JavaValue::Null => write!(f, "null"),
            JavaValue::Int(v) => write!(f, "{v}"),
            JavaValue::Long(v) => write!(f, "{v}L"),
            JavaValue::Str(s) => write!(f, "{s:?}"),
            JavaValue::Bytes(b) => write!(f, "byte[{}]", b.len()),
            JavaValue::Object { class, fields } => {
                write!(f, "{class}{{{} fields}}", fields.len())
            }
            JavaValue::List(items) => write!(f, "list[{}]", items.len()),
        }
    }
}

const TAG_NULL: u8 = 0x70;
const TAG_INT: u8 = 0x49;
const TAG_LONG: u8 = 0x4A;
const TAG_STR: u8 = 0x74;
const TAG_BYTES: u8 = 0x42;
const TAG_OBJECT: u8 = 0x73;
const TAG_LIST: u8 = 0x4C;
/// Stream magic, like JRMP's `0xACED`.
const MAGIC: u16 = 0xACED;
/// Recursion bound for hostile input.
const MAX_DEPTH: u32 = 64;

fn put_str(out: &mut Vec<u8>, s: &str) {
    let b = s.as_bytes();
    out.extend_from_slice(&(b.len().min(u16::MAX as usize) as u16).to_be_bytes());
    out.extend_from_slice(&b[..b.len().min(u16::MAX as usize)]);
}

impl JavaValue {
    /// Marshals the value, including the stream magic header.
    pub fn marshal(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC.to_be_bytes());
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut Vec<u8>) {
        match self {
            JavaValue::Null => out.push(TAG_NULL),
            JavaValue::Int(v) => {
                out.push(TAG_INT);
                // Self-describing: type name travels with the value.
                put_str(out, "int");
                out.extend_from_slice(&v.to_be_bytes());
            }
            JavaValue::Long(v) => {
                out.push(TAG_LONG);
                put_str(out, "long");
                out.extend_from_slice(&v.to_be_bytes());
            }
            JavaValue::Str(s) => {
                out.push(TAG_STR);
                put_str(out, "java.lang.String");
                put_str(out, s);
            }
            JavaValue::Bytes(b) => {
                out.push(TAG_BYTES);
                put_str(out, "[B");
                out.extend_from_slice(&(b.len() as u32).to_be_bytes());
                out.extend_from_slice(b);
            }
            JavaValue::Object { class, fields } => {
                out.push(TAG_OBJECT);
                put_str(out, class);
                out.extend_from_slice(&(fields.len() as u16).to_be_bytes());
                for (name, value) in fields {
                    put_str(out, name);
                    value.write(out);
                }
            }
            JavaValue::List(items) => {
                out.push(TAG_LIST);
                put_str(out, "java.util.ArrayList");
                out.extend_from_slice(&(items.len() as u32).to_be_bytes());
                for item in items {
                    item.write(out);
                }
            }
        }
    }

    /// Unmarshals a value.
    pub fn unmarshal(bytes: &[u8]) -> Option<JavaValue> {
        Self::unmarshal_inner(bytes, None)
    }

    /// Unmarshals from a shared buffer; `byte[]` values come back as
    /// zero-copy sub-slices of `payload`.
    pub fn unmarshal_payload(payload: &Payload) -> Option<JavaValue> {
        Self::unmarshal_inner(payload, Some(payload))
    }

    fn unmarshal_inner(bytes: &[u8], backing: Option<&Payload>) -> Option<JavaValue> {
        let mut c = Cursor {
            buf: bytes,
            pos: 0,
            backing,
        };
        if c.u16()? != MAGIC {
            return None;
        }
        let v = c.value(0)?;
        if c.pos == bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    /// Size in bytes when marshaled (used for CPU-cost accounting).
    pub fn marshaled_len(&self) -> usize {
        self.marshal().len()
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    backing: Option<&'a Payload>,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u16(&mut self) -> Option<u16> {
        let b = self.take(2)?;
        Some(u16::from_be_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn str(&mut self) -> Option<String> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }
    fn value(&mut self, depth: u32) -> Option<JavaValue> {
        if depth > MAX_DEPTH {
            return None;
        }
        Some(match self.u8()? {
            TAG_NULL => JavaValue::Null,
            TAG_INT => {
                let _ty = self.str()?;
                let b = self.take(4)?;
                JavaValue::Int(i32::from_be_bytes([b[0], b[1], b[2], b[3]]))
            }
            TAG_LONG => {
                let _ty = self.str()?;
                let b = self.take(8)?;
                JavaValue::Long(i64::from_be_bytes([
                    b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
                ]))
            }
            TAG_STR => {
                let _ty = self.str()?;
                JavaValue::Str(self.str()?)
            }
            TAG_BYTES => {
                let _ty = self.str()?;
                let n = self.u32()? as usize;
                let start = self.pos;
                let s = self.take(n)?;
                JavaValue::Bytes(match self.backing {
                    Some(p) => p.slice(start..start + n),
                    None => Payload::copy_from_slice(s),
                })
            }
            TAG_OBJECT => {
                let class = self.str()?;
                let n = self.u16()? as usize;
                let mut fields = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    let name = self.str()?;
                    let value = self.value(depth + 1)?;
                    fields.push((name, value));
                }
                JavaValue::Object { class, fields }
            }
            TAG_LIST => {
                let _class = self.str()?;
                let n = self.u32()? as usize;
                let mut items = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    items.push(self.value(depth + 1)?);
                }
                JavaValue::List(items)
            }
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JavaValue {
        JavaValue::Object {
            class: "edu.gatech.Echo$Message".to_owned(),
            fields: vec![
                ("seq".to_owned(), JavaValue::Long(42)),
                ("payload".to_owned(), JavaValue::Bytes(vec![7; 1400].into())),
                ("note".to_owned(), JavaValue::Str("hello".to_owned())),
                ("next".to_owned(), JavaValue::Null),
            ],
        }
    }

    #[test]
    fn round_trip() {
        let v = sample();
        assert_eq!(JavaValue::unmarshal(&v.marshal()), Some(v));
    }

    #[test]
    fn verbosity_overhead_is_substantial() {
        // 1400 payload bytes marshal to noticeably more: the RMI cost.
        let v = sample();
        let len = v.marshaled_len();
        assert!(len > 1400 + 60, "marshal adds names and tags: {len}");
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut bytes = sample().marshal();
        bytes[0] = 0;
        assert_eq!(JavaValue::unmarshal(&bytes), None);
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().marshal();
        for cut in 0..bytes.len().min(64) {
            assert!(JavaValue::unmarshal(&bytes[..cut]).is_none());
        }
    }

    fn arb_value(rng: &mut simnet::SimRng, depth: u32) -> JavaValue {
        let leaf = depth == 0 || rng.gen_bool(0.5);
        if leaf {
            match rng.gen_range(0u8..5) {
                0 => JavaValue::Null,
                1 => JavaValue::Int(rng.gen_range(i32::MIN..=i32::MAX)),
                2 => JavaValue::Long(rng.gen_range(i64::MIN..=i64::MAX)),
                3 => {
                    let len = rng.gen_range(0usize..=32);
                    JavaValue::Str(rng.gen_string(
                        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ",
                        len,
                    ))
                }
                _ => {
                    let len = rng.gen_range(0usize..64);
                    JavaValue::Bytes(rng.gen_bytes(len).into())
                }
            }
        } else if rng.gen_bool(0.5) {
            let n = rng.gen_range(0usize..4);
            JavaValue::List((0..n).map(|_| arb_value(rng, depth - 1)).collect())
        } else {
            let clen = rng.gen_range(1usize..=24);
            let class = rng.gen_string(
                "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ.$",
                clen,
            );
            let n = rng.gen_range(0usize..4);
            let fields = (0..n)
                .map(|_| {
                    let flen = rng.gen_range(1usize..=8);
                    let name = rng.gen_string("abcdefghijklmnopqrstuvwxyz", flen);
                    (name, arb_value(rng, depth - 1))
                })
                .collect();
            JavaValue::Object { class, fields }
        }
    }

    #[test]
    fn arbitrary_values_round_trip() {
        simnet::check_cases("rmi_arbitrary_values_round_trip", 256, |_, rng| {
            let v = arb_value(rng, 3);
            assert_eq!(JavaValue::unmarshal(&v.marshal()), Some(v));
        });
    }

    #[test]
    fn unmarshal_never_panics() {
        simnet::check_cases("rmi_unmarshal_never_panics", 256, |_, rng| {
            let len = rng.gen_range(0usize..256);
            let bytes = rng.gen_bytes(len);
            let _ = JavaValue::unmarshal(&bytes);
        });
    }
}
