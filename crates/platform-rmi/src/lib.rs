//! # platform-rmi — a simulated Java RMI platform
//!
//! One of the paper's benchmark platforms (§5.3): a registry
//! ([`RmiRegistry`], port 1099), remote object servers
//! ([`RmiObjectServer`], including the `EchoService` used by the
//! transport-level benchmark), a chatty JRMP-like call protocol with a
//! DGC ping handshake per call ([`RmiFrame`]), and verbose
//! Java-serialization-style marshaling ([`JavaValue`]). The verbosity and
//! chatter reproduce RMI's low bridged throughput in Figure 11.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calib;
mod marshal;
mod protocol;
mod service;

pub use marshal::JavaValue;
pub use protocol::{FrameAccumulator, RmiFrame};
pub use service::{
    MethodHandler, RmiClient, RmiClientEvent, RmiObjectServer, RmiRegistry, REGISTRY_PORT,
};
