//! CPU-cost calibration for the simulated RMI stack.
//!
//! Java serialization on 2006-era hardware was slow: object graphs
//! traverse reflectively, strings copy, and every value is boxed. The
//! constants below make the RMI echo land near the paper's 3.2 Mbps on a
//! 10 Mbps hub (Figure 11): per-call fixed cost plus per-byte marshal
//! cost, applied on both marshal and unmarshal, on both sides.

use simnet::SimDuration;

/// Fixed per-marshal-operation cost (reflection, stream headers).
pub const MARSHAL_FIXED: SimDuration = SimDuration::from_micros(180);

/// Per-byte marshal/unmarshal cost (~1 µs/B ≈ 1 MB/s, Java 1.4-era
/// object serialization with reflection). Calibrated so the bridged RMI
/// echo lands near the paper's 3.2 Mbps (Figure 11).
pub const MARSHAL_PER_BYTE_NANOS: u64 = 1_000;

/// Registry request processing.
pub const REGISTRY_PROCESS: SimDuration = SimDuration::from_micros(500);

/// Computes the marshal/unmarshal cost for a value of `bytes` wire size.
pub fn marshal_cost(bytes: usize) -> SimDuration {
    MARSHAL_FIXED + SimDuration::from_nanos(bytes as u64 * MARSHAL_PER_BYTE_NANOS)
}
