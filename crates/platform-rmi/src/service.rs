//! The RMI registry, object servers, and the client engine.

use std::collections::HashMap;

use simnet::{Addr, Ctx, NodeId, Process, StreamEvent, StreamId};

use crate::calib;
use crate::marshal::JavaValue;
use crate::protocol::{FrameAccumulator, RmiFrame};

/// The registry's well-known stream port.
pub const REGISTRY_PORT: u16 = 1099;

/// A remote method implementation.
pub type MethodHandler = Box<dyn FnMut(&str, &[JavaValue]) -> Result<JavaValue, String>>;

/// The RMI registry process (`rmiregistry`): name → endpoint bindings.
#[derive(Default)]
pub struct RmiRegistry {
    bindings: HashMap<String, (u32, u16)>,
    conns: HashMap<StreamId, FrameAccumulator>,
}

impl std::fmt::Debug for RmiRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RmiRegistry")
            .field("bindings", &self.bindings.len())
            .finish_non_exhaustive()
    }
}

impl RmiRegistry {
    /// Creates an empty registry.
    pub fn new() -> RmiRegistry {
        RmiRegistry::default()
    }
}

impl Process for RmiRegistry {
    fn name(&self) -> &str {
        "rmi-registry"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(REGISTRY_PORT).expect("registry port free");
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
        match event {
            StreamEvent::Accepted { .. } => {
                self.conns.insert(stream, FrameAccumulator::new());
            }
            StreamEvent::Data(data) => {
                let Some(acc) = self.conns.get_mut(&stream) else {
                    return;
                };
                acc.push_payload(data);
                loop {
                    let frame = match self.conns.get_mut(&stream).map(|a| a.next()) {
                        Some(Ok(Some(f))) => f,
                        Some(Ok(None)) | None => break,
                        Some(Err(_)) => {
                            ctx.stream_close(stream);
                            break;
                        }
                    };
                    ctx.busy(calib::REGISTRY_PROCESS);
                    match frame {
                        RmiFrame::Bind { name, node, port } => {
                            self.bindings.insert(name, (node, port));
                            ctx.bump("rmi.binds", 1);
                        }
                        RmiFrame::Lookup { call_id, name } => {
                            let reply = match self.bindings.get(&name) {
                                Some(&(node, port)) => RmiFrame::LookupResult {
                                    call_id,
                                    node,
                                    port,
                                },
                                None => RmiFrame::Exception {
                                    call_id,
                                    message: format!("java.rmi.NotBoundException: {name}"),
                                },
                            };
                            let _ = ctx.stream_send(stream, reply.encode_framed());
                        }
                        RmiFrame::Ping => {
                            let _ = ctx.stream_send(stream, RmiFrame::PingAck.encode_framed());
                        }
                        _ => {}
                    }
                }
            }
            StreamEvent::Closed | StreamEvent::ConnectFailed => {
                self.conns.remove(&stream);
            }
            _ => {}
        }
    }
}

/// A server hosting one named remote object.
pub struct RmiObjectServer {
    object_name: String,
    port: u16,
    registry: Addr,
    handler: MethodHandler,
    conns: HashMap<StreamId, FrameAccumulator>,
    registry_stream: Option<StreamId>,
}

impl std::fmt::Debug for RmiObjectServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RmiObjectServer")
            .field("object_name", &self.object_name)
            .field("port", &self.port)
            .finish_non_exhaustive()
    }
}

impl RmiObjectServer {
    /// Creates a server for `object_name`, serving on `port` and binding
    /// itself at the registry.
    pub fn new(
        object_name: &str,
        port: u16,
        registry: Addr,
        handler: MethodHandler,
    ) -> RmiObjectServer {
        RmiObjectServer {
            object_name: object_name.to_owned(),
            port,
            registry,
            handler,
            conns: HashMap::new(),
            registry_stream: None,
        }
    }

    /// An echo service: `echo(x)` returns its argument — the paper's §5.3
    /// benchmark endpoint.
    pub fn echo(port: u16, registry: Addr) -> RmiObjectServer {
        RmiObjectServer::new(
            "EchoService",
            port,
            registry,
            Box::new(|method, args| {
                if method == "echo" {
                    Ok(args.first().cloned().unwrap_or(JavaValue::Null))
                } else {
                    Err(format!("java.rmi.ServerException: no method {method}"))
                }
            }),
        )
    }

    /// A consuming variant of the echo service: `echo(x)` acknowledges
    /// with the received length instead of returning the payload. Used
    /// for one-way delivery measurements (the RMI-MB bridged test), where
    /// echoing the full payload back would triple the medium load.
    pub fn echo_ack(port: u16, registry: Addr) -> RmiObjectServer {
        RmiObjectServer::new(
            "EchoService",
            port,
            registry,
            Box::new(|method, args| {
                if method == "echo" {
                    let len = match args.first() {
                        Some(JavaValue::Bytes(b)) => b.len() as i64,
                        _ => 0,
                    };
                    Ok(JavaValue::Long(len))
                } else {
                    Err(format!("java.rmi.ServerException: no method {method}"))
                }
            }),
        )
    }
}

impl Process for RmiObjectServer {
    fn name(&self) -> &str {
        "rmi-object-server"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(self.port).expect("object port free");
        if let Ok(stream) = ctx.connect(self.registry) {
            self.registry_stream = Some(stream);
        }
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
        if Some(stream) == self.registry_stream {
            if let StreamEvent::Connected = event {
                let bind = RmiFrame::Bind {
                    name: self.object_name.clone(),
                    node: ctx.node().index() as u32,
                    port: self.port,
                };
                let _ = ctx.stream_send(stream, bind.encode_framed());
                ctx.stream_close(stream);
            }
            return;
        }
        match event {
            StreamEvent::Accepted { .. } => {
                self.conns.insert(stream, FrameAccumulator::new());
            }
            StreamEvent::Data(data) => {
                let Some(acc) = self.conns.get_mut(&stream) else {
                    return;
                };
                acc.push_payload(data);
                loop {
                    let frame = match self.conns.get_mut(&stream).map(|a| a.next()) {
                        Some(Ok(Some(f))) => f,
                        Some(Ok(None)) | None => break,
                        Some(Err(_)) => {
                            ctx.stream_close(stream);
                            break;
                        }
                    };
                    match frame {
                        RmiFrame::Ping => {
                            let _ = ctx.stream_send(stream, RmiFrame::PingAck.encode_framed());
                        }
                        RmiFrame::Call {
                            call_id,
                            object,
                            method,
                            args,
                        } => {
                            // Unmarshal cost: proportional to argument size.
                            let arg_bytes: usize = args.iter().map(JavaValue::marshaled_len).sum();
                            ctx.busy(calib::marshal_cost(arg_bytes));
                            let reply = if object != self.object_name {
                                RmiFrame::Exception {
                                    call_id,
                                    message: format!("java.rmi.NoSuchObjectException: {object}"),
                                }
                            } else {
                                match (self.handler)(&method, &args) {
                                    Ok(result) => {
                                        ctx.busy(calib::marshal_cost(result.marshaled_len()));
                                        RmiFrame::Return { call_id, result }
                                    }
                                    Err(message) => RmiFrame::Exception { call_id, message },
                                }
                            };
                            ctx.bump("rmi.calls", 1);
                            let _ = ctx.stream_send(stream, reply.encode_framed());
                        }
                        _ => {}
                    }
                }
            }
            StreamEvent::Closed | StreamEvent::ConnectFailed => {
                self.conns.remove(&stream);
            }
            _ => {}
        }
    }
}

/// Client-side call outcomes.
#[derive(Debug, Clone, PartialEq)]
pub enum RmiClientEvent {
    /// A lookup resolved.
    Resolved {
        /// Correlation id.
        call_id: u64,
        /// The object server's address.
        addr: Addr,
    },
    /// A call returned.
    Returned {
        /// Correlation id.
        call_id: u64,
        /// The result value.
        result: JavaValue,
    },
    /// A call or lookup raised.
    Raised {
        /// Correlation id.
        call_id: u64,
        /// Exception message.
        message: String,
    },
    /// Transport-level failure.
    Failed {
        /// Correlation id.
        call_id: u64,
    },
}

/// One pending operation awaiting a reply frame.
#[derive(Debug)]
enum ClientOp {
    Lookup,
    Call,
}

/// A persistent JRMP-style connection to one endpoint.
struct Conn {
    stream: StreamId,
    up: bool,
    /// DGC handshake completed.
    pinged: bool,
    /// Frames queued until the connection is ready.
    queue: Vec<RmiFrame>,
    acc: FrameAccumulator,
}

impl std::fmt::Debug for Conn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Conn")
            .field("stream", &self.stream)
            .field("up", &self.up)
            .field("pinged", &self.pinged)
            .finish_non_exhaustive()
    }
}

/// The client engine embedded in host processes (the uMiddle RMI mapper,
/// benchmark drivers). Connections are persistent and pipelined, like
/// JRMP: one stream per endpoint, a DGC ping handshake when it opens,
/// then calls multiplexed by id.
#[derive(Debug, Default)]
pub struct RmiClient {
    conns: HashMap<Addr, Conn>,
    by_stream: HashMap<StreamId, Addr>,
    ops: HashMap<u64, ClientOp>,
}

impl RmiClient {
    /// Creates a client.
    pub fn new() -> RmiClient {
        RmiClient::default()
    }

    /// Number of in-flight operations.
    pub fn in_flight(&self) -> usize {
        self.ops.len()
    }

    fn send_or_queue(&mut self, ctx: &mut Ctx<'_>, addr: Addr, frame: RmiFrame) {
        if !self.conns.contains_key(&addr) {
            match ctx.connect(addr) {
                Ok(stream) => {
                    self.by_stream.insert(stream, addr);
                    self.conns.insert(
                        addr,
                        Conn {
                            stream,
                            up: false,
                            pinged: false,
                            queue: vec![frame],
                            acc: FrameAccumulator::new(),
                        },
                    );
                }
                Err(_) => {
                    // Unroutable: fail every queued op immediately is
                    // handled by the Closed path; here just drop.
                }
            }
            return;
        }
        let conn = self.conns.get_mut(&addr).expect("checked");
        if conn.up && conn.pinged {
            let _ = ctx.stream_send(conn.stream, frame.encode_framed());
        } else {
            conn.queue.push(frame);
        }
    }

    /// Starts a registry lookup.
    pub fn lookup(&mut self, ctx: &mut Ctx<'_>, registry: Addr, name: &str, call_id: u64) {
        self.ops.insert(call_id, ClientOp::Lookup);
        self.send_or_queue(
            ctx,
            registry,
            RmiFrame::Lookup {
                call_id,
                name: name.to_owned(),
            },
        );
    }

    /// Starts a remote call.
    pub fn call(
        &mut self,
        ctx: &mut Ctx<'_>,
        addr: Addr,
        object: &str,
        method: &str,
        args: Vec<JavaValue>,
        call_id: u64,
    ) {
        // Marshal cost on the caller.
        let arg_bytes: usize = args.iter().map(JavaValue::marshaled_len).sum();
        ctx.busy(calib::marshal_cost(arg_bytes));
        self.ops.insert(call_id, ClientOp::Call);
        self.send_or_queue(
            ctx,
            addr,
            RmiFrame::Call {
                call_id,
                object: object.to_owned(),
                method: method.to_owned(),
                args,
            },
        );
    }

    /// Feeds a stream event; returns completed operations.
    pub fn handle_stream(
        &mut self,
        ctx: &mut Ctx<'_>,
        stream: StreamId,
        event: StreamEvent,
    ) -> Vec<RmiClientEvent> {
        let mut out = Vec::new();
        let Some(&addr) = self.by_stream.get(&stream) else {
            return out;
        };
        match event {
            StreamEvent::Connected => {
                if let Some(conn) = self.conns.get_mut(&addr) {
                    conn.up = true;
                    // DGC handshake once per connection.
                    let _ = ctx.stream_send(stream, RmiFrame::Ping.encode_framed());
                }
            }
            StreamEvent::Data(data) => {
                let Some(conn) = self.conns.get_mut(&addr) else {
                    return out;
                };
                conn.acc.push_payload(data);
                loop {
                    let frame = match self.conns.get_mut(&addr).map(|c| c.acc.next()) {
                        Some(Ok(Some(f))) => f,
                        Some(Ok(None)) | None => break,
                        Some(Err(_)) => {
                            out.extend(self.fail_all(addr));
                            ctx.stream_close(stream);
                            break;
                        }
                    };
                    match frame {
                        RmiFrame::PingAck => {
                            let queued = {
                                let conn = self.conns.get_mut(&addr).expect("present");
                                conn.pinged = true;
                                std::mem::take(&mut conn.queue)
                            };
                            for f in queued {
                                let _ = ctx.stream_send(stream, f.encode_framed());
                            }
                        }
                        RmiFrame::Return { call_id, result } => {
                            ctx.busy(calib::marshal_cost(result.marshaled_len()));
                            self.ops.remove(&call_id);
                            out.push(RmiClientEvent::Returned { call_id, result });
                        }
                        RmiFrame::Exception { call_id, message } => {
                            self.ops.remove(&call_id);
                            out.push(RmiClientEvent::Raised { call_id, message });
                        }
                        RmiFrame::LookupResult {
                            call_id,
                            node,
                            port,
                        } => {
                            self.ops.remove(&call_id);
                            out.push(RmiClientEvent::Resolved {
                                call_id,
                                addr: Addr::new(NodeId::from_index(node as usize), port),
                            });
                        }
                        _ => {}
                    }
                }
            }
            StreamEvent::Closed | StreamEvent::ConnectFailed => {
                out.extend(self.fail_all(addr));
            }
            _ => {}
        }
        out
    }

    /// Fails every op associated with a dead connection.
    fn fail_all(&mut self, addr: Addr) -> Vec<RmiClientEvent> {
        let Some(conn) = self.conns.remove(&addr) else {
            return Vec::new();
        };
        self.by_stream.remove(&conn.stream);
        // All outstanding ops fail: we cannot tell which belonged to this
        // connection without extra bookkeeping, so fail the queued ones
        // (the common case: the whole endpoint died).
        let mut out = Vec::new();
        for f in &conn.queue {
            if let RmiFrame::Call { call_id, .. } | RmiFrame::Lookup { call_id, .. } = f {
                self.ops.remove(call_id);
                out.push(RmiClientEvent::Failed { call_id: *call_id });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{SegmentConfig, SimTime, World};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Looks up the echo service, calls it, records the result.
    struct Driver {
        client: RmiClient,
        registry: Addr,
        results: Rc<RefCell<Vec<RmiClientEvent>>>,
    }
    impl Process for Driver {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.client.lookup(ctx, self.registry, "EchoService", 1);
        }
        fn on_stream(&mut self, ctx: &mut Ctx<'_>, s: StreamId, e: StreamEvent) {
            for ev in self.client.handle_stream(ctx, s, e) {
                if let RmiClientEvent::Resolved { addr, .. } = &ev {
                    self.client.call(
                        ctx,
                        *addr,
                        "EchoService",
                        "echo",
                        vec![JavaValue::Bytes(vec![9; 1400].into())],
                        2,
                    );
                }
                self.results.borrow_mut().push(ev);
            }
        }
    }

    #[test]
    fn lookup_and_echo_call() {
        let mut world = World::new(31);
        let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
        let reg_node = world.add_node("registry");
        let srv_node = world.add_node("server");
        let cli_node = world.add_node("client");
        for n in [reg_node, srv_node, cli_node] {
            world.attach(n, hub).unwrap();
        }
        world.add_process(reg_node, Box::new(RmiRegistry::new()));
        let registry = Addr::new(reg_node, REGISTRY_PORT);
        world.add_process(srv_node, Box::new(RmiObjectServer::echo(2099, registry)));
        let results = Rc::new(RefCell::new(Vec::new()));
        world.add_process(
            cli_node,
            Box::new(Driver {
                client: RmiClient::new(),
                registry,
                results: Rc::clone(&results),
            }),
        );
        world.run_until(SimTime::from_secs(5));
        let results = results.borrow();
        assert!(matches!(
            results.first(),
            Some(RmiClientEvent::Resolved { call_id: 1, .. })
        ));
        match results.get(1) {
            Some(RmiClientEvent::Returned { call_id: 2, result }) => {
                assert_eq!(*result, JavaValue::Bytes(vec![9; 1400].into()));
            }
            other => panic!("expected echo return, got {other:?}"),
        }
    }

    #[test]
    fn lookup_of_unbound_name_raises() {
        let mut world = World::new(32);
        let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
        let reg_node = world.add_node("registry");
        let cli_node = world.add_node("client");
        world.attach(reg_node, hub).unwrap();
        world.attach(cli_node, hub).unwrap();
        world.add_process(reg_node, Box::new(RmiRegistry::new()));
        let results = Rc::new(RefCell::new(Vec::new()));
        struct Only {
            client: RmiClient,
            registry: Addr,
            results: Rc<RefCell<Vec<RmiClientEvent>>>,
        }
        impl Process for Only {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                self.client.lookup(ctx, self.registry, "Ghost", 7);
            }
            fn on_stream(&mut self, ctx: &mut Ctx<'_>, s: StreamId, e: StreamEvent) {
                self.results
                    .borrow_mut()
                    .extend(self.client.handle_stream(ctx, s, e));
            }
        }
        world.add_process(
            cli_node,
            Box::new(Only {
                client: RmiClient::new(),
                registry: Addr::new(reg_node, REGISTRY_PORT),
                results: Rc::clone(&results),
            }),
        );
        world.run_until(SimTime::from_secs(3));
        assert!(matches!(
            results.borrow().first(),
            Some(RmiClientEvent::Raised { call_id: 7, .. })
        ));
    }
}
