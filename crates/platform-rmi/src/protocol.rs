//! The JRMP-like call protocol and the registry wire format.
//!
//! Every remote call is a length-prefixed frame over a stream, preceded by
//! a distributed-garbage-collection ping/ack pair (the chatter that,
//! together with marshaling verbosity, keeps RMI throughput low in the
//! paper's Figure 11).

use simnet::{ChunkQueue, Payload};

use crate::marshal::JavaValue;

/// Frames exchanged with RMI endpoints (object servers and the registry).
#[derive(Debug, Clone, PartialEq)]
pub enum RmiFrame {
    /// DGC liveness ping sent before each call.
    Ping,
    /// DGC ping acknowledgment.
    PingAck,
    /// A remote method invocation.
    Call {
        /// Correlation id.
        call_id: u64,
        /// Bound object name.
        object: String,
        /// Method name.
        method: String,
        /// Marshaled arguments.
        args: Vec<JavaValue>,
    },
    /// A normal return.
    Return {
        /// Correlation id from the call.
        call_id: u64,
        /// The marshaled result.
        result: JavaValue,
    },
    /// A remote exception.
    Exception {
        /// Correlation id from the call.
        call_id: u64,
        /// Exception message.
        message: String,
    },
    /// Registry: bind a name to an object endpoint `(node index, port)`.
    Bind {
        /// The name to bind.
        name: String,
        /// Node index of the object server.
        node: u32,
        /// Stream port of the object server.
        port: u16,
    },
    /// Registry: look up a name.
    Lookup {
        /// Correlation id.
        call_id: u64,
        /// The name to resolve.
        name: String,
    },
    /// Registry: lookup result (`None` encoded as a `NotBound` exception).
    LookupResult {
        /// Correlation id from the lookup.
        call_id: u64,
        /// Node index of the object server.
        node: u32,
        /// Stream port of the object server.
        port: u16,
    },
}

const TAG_PING: u8 = 1;
const TAG_PING_ACK: u8 = 2;
const TAG_CALL: u8 = 3;
const TAG_RETURN: u8 = 4;
const TAG_EXCEPTION: u8 = 5;
const TAG_BIND: u8 = 6;
const TAG_LOOKUP: u8 = 7;
const TAG_LOOKUP_RESULT: u8 = 8;

fn put_str(out: &mut Vec<u8>, s: &str) {
    let b = s.as_bytes();
    out.extend_from_slice(&(b.len().min(u16::MAX as usize) as u16).to_be_bytes());
    out.extend_from_slice(&b[..b.len().min(u16::MAX as usize)]);
}

fn put_value(out: &mut Vec<u8>, v: &JavaValue) {
    let m = v.marshal();
    out.extend_from_slice(&(m.len() as u32).to_be_bytes());
    out.extend_from_slice(&m);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    backing: Option<&'a Payload>,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u16(&mut self) -> Option<u16> {
        let b = self.take(2)?;
        Some(u16::from_be_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        Some(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    fn str(&mut self) -> Option<String> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }
    fn value(&mut self) -> Option<JavaValue> {
        let n = self.u32()? as usize;
        let start = self.pos;
        let s = self.take(n)?;
        match self.backing {
            Some(p) => JavaValue::unmarshal_payload(&p.slice(start..start + n)),
            None => JavaValue::unmarshal(s),
        }
    }
}

impl RmiFrame {
    /// Encodes the frame body (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            RmiFrame::Ping => out.push(TAG_PING),
            RmiFrame::PingAck => out.push(TAG_PING_ACK),
            RmiFrame::Call {
                call_id,
                object,
                method,
                args,
            } => {
                out.push(TAG_CALL);
                out.extend_from_slice(&call_id.to_be_bytes());
                put_str(out, object);
                put_str(out, method);
                out.extend_from_slice(&(args.len() as u16).to_be_bytes());
                for a in args {
                    put_value(out, a);
                }
            }
            RmiFrame::Return { call_id, result } => {
                out.push(TAG_RETURN);
                out.extend_from_slice(&call_id.to_be_bytes());
                put_value(out, result);
            }
            RmiFrame::Exception { call_id, message } => {
                out.push(TAG_EXCEPTION);
                out.extend_from_slice(&call_id.to_be_bytes());
                put_str(out, message);
            }
            RmiFrame::Bind { name, node, port } => {
                out.push(TAG_BIND);
                put_str(out, name);
                out.extend_from_slice(&node.to_be_bytes());
                out.extend_from_slice(&port.to_be_bytes());
            }
            RmiFrame::Lookup { call_id, name } => {
                out.push(TAG_LOOKUP);
                out.extend_from_slice(&call_id.to_be_bytes());
                put_str(out, name);
            }
            RmiFrame::LookupResult {
                call_id,
                node,
                port,
            } => {
                out.push(TAG_LOOKUP_RESULT);
                out.extend_from_slice(&call_id.to_be_bytes());
                out.extend_from_slice(&node.to_be_bytes());
                out.extend_from_slice(&port.to_be_bytes());
            }
        }
    }

    /// Encodes with a `u32` length prefix for stream framing. Prefix and
    /// body share one buffer: the prefix is reserved up front and patched
    /// once the body length is known, so framing costs no extra copy.
    pub fn encode_framed(&self) -> Payload {
        let mut out = vec![0u8; 4];
        self.encode_into(&mut out);
        let body_len = (out.len() - 4) as u32;
        out[..4].copy_from_slice(&body_len.to_be_bytes());
        Payload::from_vec(out)
    }

    /// Decodes a frame body from a shared buffer; marshaled `byte[]`
    /// arguments come back as zero-copy sub-slices of `frame`.
    pub fn decode_payload(frame: &Payload) -> Option<RmiFrame> {
        Self::decode_inner(frame, Some(frame))
    }

    /// Decodes a frame body.
    pub fn decode(bytes: &[u8]) -> Option<RmiFrame> {
        Self::decode_inner(bytes, None)
    }

    fn decode_inner(bytes: &[u8], backing: Option<&Payload>) -> Option<RmiFrame> {
        let mut c = Cursor {
            buf: bytes,
            pos: 0,
            backing,
        };
        let frame = match c.u8()? {
            TAG_PING => RmiFrame::Ping,
            TAG_PING_ACK => RmiFrame::PingAck,
            TAG_CALL => {
                let call_id = c.u64()?;
                let object = c.str()?;
                let method = c.str()?;
                let n = c.u16()? as usize;
                let mut args = Vec::with_capacity(n.min(16));
                for _ in 0..n {
                    args.push(c.value()?);
                }
                RmiFrame::Call {
                    call_id,
                    object,
                    method,
                    args,
                }
            }
            TAG_RETURN => RmiFrame::Return {
                call_id: c.u64()?,
                result: c.value()?,
            },
            TAG_EXCEPTION => RmiFrame::Exception {
                call_id: c.u64()?,
                message: c.str()?,
            },
            TAG_BIND => RmiFrame::Bind {
                name: c.str()?,
                node: c.u32()?,
                port: c.u16()?,
            },
            TAG_LOOKUP => RmiFrame::Lookup {
                call_id: c.u64()?,
                name: c.str()?,
            },
            TAG_LOOKUP_RESULT => RmiFrame::LookupResult {
                call_id: c.u64()?,
                node: c.u32()?,
                port: c.u16()?,
            },
            _ => return None,
        };
        if c.pos == bytes.len() {
            Some(frame)
        } else {
            None
        }
    }
}

/// Accumulates stream bytes into frames.
///
/// Built on [`ChunkQueue`]: stream chunks are queued without
/// concatenation and each frame is extracted in O(frame) time, so a
/// burst of buffered calls decodes linearly instead of quadratically.
#[derive(Debug, Default)]
pub struct FrameAccumulator {
    buf: ChunkQueue,
}

impl FrameAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> FrameAccumulator {
        FrameAccumulator::default()
    }

    /// Feeds borrowed bytes (one copy into a fresh chunk).
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.push_slice(bytes);
    }

    /// Feeds a shared chunk without copying — the path stream handlers
    /// use with `StreamEvent::Data` payloads.
    pub fn push_payload(&mut self, chunk: Payload) {
        self.buf.push(chunk);
    }

    /// Pops the next complete frame.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed frames (buffer is cleared).
    #[allow(clippy::should_implement_trait)] // framer convention, not an Iterator
    pub fn next(&mut self) -> Result<Option<RmiFrame>, String> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let mut hdr = [0u8; 4];
        self.buf.peek_into(&mut hdr);
        let len = u32::from_be_bytes(hdr) as usize;
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let _prefix = self.buf.take(4);
        let body = self.buf.take(len);
        match RmiFrame::decode_payload(&body) {
            Some(f) => Ok(Some(f)),
            None => {
                self.buf.clear();
                Err("malformed RMI frame".to_owned())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames() -> Vec<RmiFrame> {
        vec![
            RmiFrame::Ping,
            RmiFrame::PingAck,
            RmiFrame::Call {
                call_id: 9,
                object: "EchoService".to_owned(),
                method: "echo".to_owned(),
                args: vec![JavaValue::Bytes(vec![1; 64].into()), JavaValue::Int(5)],
            },
            RmiFrame::Return {
                call_id: 9,
                result: JavaValue::Str("ok".to_owned()),
            },
            RmiFrame::Exception {
                call_id: 9,
                message: "java.rmi.NotBoundException".to_owned(),
            },
            RmiFrame::Bind {
                name: "EchoService".to_owned(),
                node: 3,
                port: 2099,
            },
            RmiFrame::Lookup {
                call_id: 1,
                name: "EchoService".to_owned(),
            },
            RmiFrame::LookupResult {
                call_id: 1,
                node: 3,
                port: 2099,
            },
        ]
    }

    #[test]
    fn all_frames_round_trip() {
        for f in frames() {
            assert_eq!(RmiFrame::decode(&f.encode()), Some(f));
        }
    }

    #[test]
    fn accumulator_reassembles_chunked_frames() {
        let mut wire = Vec::new();
        for f in frames() {
            wire.extend(f.encode_framed());
        }
        let mut acc = FrameAccumulator::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(3) {
            acc.push(chunk);
            while let Some(f) = acc.next().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames());
    }

    #[test]
    fn malformed_frame_is_an_error() {
        let mut acc = FrameAccumulator::new();
        acc.push(&[0, 0, 0, 1, 0xEE]);
        assert!(acc.next().is_err());
    }

    #[test]
    fn decode_never_panics() {
        simnet::check_cases("rmi_decode_never_panics", 256, |_, rng| {
            let len = rng.gen_range(0usize..256);
            let bytes = rng.gen_bytes(len);
            let _ = RmiFrame::decode(&bytes);
        });
    }
}
