//! # platform-motes — simulated Berkeley sensor motes
//!
//! The paper lists "the Berkeley Motes platform" among the platforms
//! uMiddle bridges. We model TinyOS-era motes: tiny Active Message frames
//! ([`ActiveMessage`]) on a 38.4 kbps shared radio channel (simnet's
//! `mote_radio` segment, with loss), sensor motes ([`Mote`]) that
//! broadcast periodic readings, and a [`BaseStation`] that collects them
//! for the attached host — where the uMiddle motes mapper picks them up.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use simnet::{Ctx, Datagram, LocalMessage, Payload, PayloadBuilder, ProcId, Process, SimDuration};

/// The radio broadcast group all motes share.
pub const RADIO_GROUP: u16 = 100;

/// AM type of a sensor reading.
pub const AM_READING: u8 = 10;
/// AM type of a sampling-configuration command.
pub const AM_CONFIG: u8 = 11;

/// A TinyOS-style Active Message: type, source mote id, tiny payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveMessage {
    /// AM dispatch type.
    pub am_type: u8,
    /// Source mote id.
    pub src: u16,
    /// Payload (at most 29 bytes, like the classic TOSMsg). Shared
    /// [`Payload`] so a received radio frame's bytes are not re-copied
    /// per hop.
    pub payload: Payload,
}

/// Maximum AM payload.
pub const AM_MAX_PAYLOAD: usize = 29;

impl ActiveMessage {
    /// Creates a message, truncating the payload to [`AM_MAX_PAYLOAD`].
    pub fn new(am_type: u8, src: u16, payload: impl Into<Payload>) -> ActiveMessage {
        let mut payload = payload.into();
        if payload.len() > AM_MAX_PAYLOAD {
            payload = payload.slice(0..AM_MAX_PAYLOAD);
        }
        ActiveMessage {
            am_type,
            src,
            payload,
        }
    }

    /// Encodes: `type (1) | src (2 LE) | len (1) | payload`.
    pub fn encode(&self) -> Payload {
        let mut out = PayloadBuilder::with_capacity(4 + self.payload.len());
        out.push(self.am_type);
        out.u16_le(self.src);
        out.push(self.payload.len() as u8);
        out.extend_from_slice(&self.payload);
        out.freeze()
    }

    /// Decodes a message from a shared radio frame; the payload is a
    /// zero-copy sub-slice of `frame`.
    pub fn decode_payload(frame: &Payload) -> Option<ActiveMessage> {
        Self::decode_inner(frame, Some(frame))
    }

    /// Decodes a message; `None` on garbage.
    pub fn decode(bytes: &[u8]) -> Option<ActiveMessage> {
        Self::decode_inner(bytes, None)
    }

    fn decode_inner(bytes: &[u8], backing: Option<&Payload>) -> Option<ActiveMessage> {
        if bytes.len() < 4 {
            return None;
        }
        let len = bytes[3] as usize;
        if len > AM_MAX_PAYLOAD || bytes.len() != 4 + len {
            return None;
        }
        Some(ActiveMessage {
            am_type: bytes[0],
            src: u16::from_le_bytes([bytes[1], bytes[2]]),
            payload: match backing {
                Some(p) => p.slice(4..4 + len),
                None => Payload::copy_from_slice(&bytes[4..]),
            },
        })
    }
}

/// A sensor reading carried in an [`AM_READING`] message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reading {
    /// Sequence number (wraps).
    pub seq: u16,
    /// Temperature in tenths of a degree Celsius.
    pub temperature_decicelsius: i16,
    /// Light level, 0–1023 ADC counts.
    pub light: u16,
}

impl Reading {
    /// Encodes into an AM payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(6);
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.temperature_decicelsius.to_le_bytes());
        out.extend_from_slice(&self.light.to_le_bytes());
        out
    }

    /// Decodes from an AM payload.
    pub fn decode(payload: &[u8]) -> Option<Reading> {
        if payload.len() != 6 {
            return None;
        }
        Some(Reading {
            seq: u16::from_le_bytes([payload[0], payload[1]]),
            temperature_decicelsius: i16::from_le_bytes([payload[2], payload[3]]),
            light: u16::from_le_bytes([payload[4], payload[5]]),
        })
    }
}

/// A sensor mote: broadcasts a reading every sampling interval; accepts
/// [`AM_CONFIG`] commands changing the interval (payload = interval in
/// milliseconds, u16 LE).
#[derive(Debug)]
pub struct Mote {
    id: u16,
    interval: SimDuration,
    seq: u16,
    temperature: i16,
    light: u16,
}

impl Mote {
    /// Creates a mote with the given id and sampling interval.
    pub fn new(id: u16, interval: SimDuration) -> Mote {
        Mote {
            id,
            interval,
            seq: 0,
            temperature: 220,
            light: 500,
        }
    }
}

impl Process for Mote {
    fn name(&self) -> &str {
        "mote"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx.join_group(RADIO_GROUP);
        // Desynchronize motes a little.
        let jitter = SimDuration::from_millis(ctx.rng().gen_range(0..200));
        ctx.set_timer(self.interval + jitter, 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        // Random-walk the sensors.
        self.temperature += ctx.rng().gen_range(-3i16..=3);
        self.light = self
            .light
            .saturating_add_signed(ctx.rng().gen_range(-20i16..=20));
        self.seq = self.seq.wrapping_add(1);
        let reading = Reading {
            seq: self.seq,
            temperature_decicelsius: self.temperature,
            light: self.light.min(1023),
        };
        let msg = ActiveMessage::new(AM_READING, self.id, reading.encode());
        let _ = ctx.multicast(RADIO_GROUP, RADIO_GROUP, msg.encode());
        ctx.bump("motes.readings_sent", 1);
        ctx.set_timer(self.interval, 0);
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        let Some(am) = ActiveMessage::decode_payload(&dgram.data) else {
            return;
        };
        if am.am_type == AM_CONFIG && am.payload.len() == 2 {
            let ms = u16::from_le_bytes([am.payload[0], am.payload[1]]);
            self.interval = SimDuration::from_millis(u64::from(ms.max(50)));
            ctx.bump("motes.configs_applied", 1);
        }
    }
}

/// Messages a base station forwards to its attached host process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaseStationEvent {
    /// A reading arrived from a mote.
    Reading {
        /// The mote that sent it.
        mote: u16,
        /// The decoded reading.
        reading: Reading,
    },
}

/// Commands a host process can send to the base station (as local
/// messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaseStationCommand {
    /// Broadcast a sampling-interval change to all motes.
    SetSamplingInterval {
        /// New interval in milliseconds.
        millis: u16,
    },
}

/// A base station: bridges the radio to a host process on the same node
/// (the uMiddle motes mapper).
#[derive(Debug)]
pub struct BaseStation {
    /// Host process that receives [`BaseStationEvent`]s.
    sink: Option<ProcId>,
    last_seq: std::collections::HashMap<u16, u16>,
}

impl BaseStation {
    /// Creates a base station forwarding to `sink`.
    pub fn new(sink: Option<ProcId>) -> BaseStation {
        BaseStation {
            sink,
            last_seq: std::collections::HashMap::new(),
        }
    }

    /// Points the base station at a (new) sink process.
    pub fn set_sink(&mut self, sink: ProcId) {
        self.sink = Some(sink);
    }
}

impl Process for BaseStation {
    fn name(&self) -> &str {
        "mote-base-station"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx.join_group(RADIO_GROUP);
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        let Some(am) = ActiveMessage::decode_payload(&dgram.data) else {
            return;
        };
        if am.am_type != AM_READING {
            return;
        }
        let Some(reading) = Reading::decode(&am.payload) else {
            return;
        };
        // Drop radio duplicates.
        if self.last_seq.get(&am.src) == Some(&reading.seq) {
            return;
        }
        self.last_seq.insert(am.src, reading.seq);
        ctx.bump("motes.readings_received", 1);
        if let Some(sink) = self.sink {
            ctx.send_local(
                sink,
                BaseStationEvent::Reading {
                    mote: am.src,
                    reading,
                },
            );
        }
    }

    fn on_local(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
        let Ok(cmd) = msg.downcast::<BaseStationCommand>() else {
            return;
        };
        match *cmd {
            BaseStationCommand::SetSamplingInterval { millis } => {
                let am = ActiveMessage::new(AM_CONFIG, 0, millis.to_le_bytes().to_vec());
                let _ = ctx.multicast(RADIO_GROUP, RADIO_GROUP, am.encode());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{SegmentConfig, SimTime, World};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn am_round_trip() {
        let m = ActiveMessage::new(AM_READING, 7, vec![1, 2, 3]);
        assert_eq!(ActiveMessage::decode(&m.encode()), Some(m));
    }

    #[test]
    fn oversized_payload_truncated() {
        let m = ActiveMessage::new(1, 1, vec![0; 100]);
        assert_eq!(m.payload.len(), AM_MAX_PAYLOAD);
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(ActiveMessage::decode(&[]), None);
        assert_eq!(ActiveMessage::decode(&[1, 0, 0, 31]), None);
        assert_eq!(ActiveMessage::decode(&[1, 0, 0, 2, 9]), None);
    }

    #[test]
    fn reading_round_trip() {
        let r = Reading {
            seq: 42,
            temperature_decicelsius: -15,
            light: 900,
        };
        assert_eq!(Reading::decode(&r.encode()), Some(r));
        assert_eq!(Reading::decode(&[1, 2, 3]), None);
    }

    struct Sink {
        got: Rc<RefCell<Vec<BaseStationEvent>>>,
    }
    impl Process for Sink {
        fn on_local(&mut self, _ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
            if let Ok(ev) = msg.downcast::<BaseStationEvent>() {
                self.got.borrow_mut().push(*ev);
            }
        }
    }

    #[test]
    fn motes_report_to_base_station_over_lossy_radio() {
        let mut world = World::new(51);
        let radio = world.add_segment(SegmentConfig::mote_radio());
        let bs_node = world.add_node("base");
        world.attach(bs_node, radio).unwrap();
        let got = Rc::new(RefCell::new(Vec::new()));
        let sink = world.add_process(
            bs_node,
            Box::new(Sink {
                got: Rc::clone(&got),
            }),
        );
        world.add_process(bs_node, Box::new(BaseStation::new(Some(sink))));
        for i in 0..3 {
            let m_node = world.add_node(format!("mote{i}"));
            world.attach(m_node, radio).unwrap();
            world.add_process(
                m_node,
                Box::new(Mote::new(i as u16 + 1, SimDuration::from_secs(1))),
            );
        }
        world.run_until(SimTime::from_secs(30));
        let got = got.borrow();
        // 3 motes * ~30 readings, minus ~2% radio loss.
        assert!(got.len() > 60, "received {} readings", got.len());
        let motes: std::collections::HashSet<u16> = got
            .iter()
            .map(|BaseStationEvent::Reading { mote, .. }| *mote)
            .collect();
        assert_eq!(motes.len(), 3, "heard every mote");
    }

    #[test]
    fn config_command_changes_sampling_rate() {
        let mut world = World::new(52);
        let radio = world.add_segment(SegmentConfig::mote_radio());
        let bs_node = world.add_node("base");
        let m_node = world.add_node("mote");
        world.attach(bs_node, radio).unwrap();
        world.attach(m_node, radio).unwrap();
        let got = Rc::new(RefCell::new(Vec::new()));
        let sink = world.add_process(
            bs_node,
            Box::new(Sink {
                got: Rc::clone(&got),
            }),
        );
        let bs = world.add_process(bs_node, Box::new(BaseStation::new(Some(sink))));
        world.add_process(m_node, Box::new(Mote::new(1, SimDuration::from_secs(5))));

        // A driver that speeds the mote up to 500 ms after 10 s.
        struct Driver {
            bs: ProcId,
        }
        impl Process for Driver {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_secs(10), 0);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
                ctx.send_local(
                    self.bs,
                    BaseStationCommand::SetSamplingInterval { millis: 500 },
                );
            }
        }
        world.add_process(bs_node, Box::new(Driver { bs }));
        world.run_until(SimTime::from_secs(10));
        let before = got.borrow().len();
        world.run_until(SimTime::from_secs(20));
        let after = got.borrow().len() - before;
        assert!(
            after > before * 3,
            "faster sampling after reconfiguration: {before} then {after}"
        );
    }
}
