//! Property-based tests: arbitrary USDL documents survive the
//! XML round trip, and shapes derived from them behave consistently.

use proptest::prelude::*;
use umiddle_core::{Direction, PortKind};
use umiddle_usdl::{Element, UsdlDocument};

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,12}"
}

fn arb_mime() -> impl Strategy<Value = String> {
    ("[a-z]{2,8}", "[a-z0-9.+-]{1,10}").prop_map(|(a, b)| format!("{a}/{b}"))
}

#[derive(Debug, Clone)]
struct PortGen {
    name: String,
    direction: &'static str,
    digital_mime: Option<String>,
    perception: &'static str,
    media: String,
    bindings: Vec<Vec<(String, String)>>,
}

fn arb_port(idx: usize) -> impl Strategy<Value = PortGen> {
    (
        arb_name(),
        prop_oneof![Just("input"), Just("output")],
        proptest::option::of(arb_mime()),
        prop_oneof![Just("visible"), Just("audible"), Just("tangible")],
        "[a-z]{1,8}",
        proptest::collection::vec(
            proptest::collection::vec(("[a-z]{1,6}", "[a-zA-Z0-9 ]{0,12}"), 1..3),
            0..3,
        ),
    )
        .prop_map(move |(name, direction, digital_mime, perception, media, bindings)| PortGen {
            // Guarantee unique port names by suffixing the index.
            name: format!("{name}-{idx}"),
            direction,
            digital_mime,
            perception,
            media,
            bindings,
        })
}

fn build_xml(device: &str, platform: &str, name: &str, ports: &[PortGen]) -> String {
    let mut root = Element::new("usdl")
        .with_attr("device", device)
        .with_attr("platform", platform)
        .with_attr("name", name);
    for p in ports {
        let mut e = Element::new("port")
            .with_attr("name", &p.name)
            .with_attr("direction", p.direction);
        match &p.digital_mime {
            Some(m) => {
                e = e.with_attr("kind", "digital").with_attr("mime", m);
            }
            None => {
                e = e
                    .with_attr("kind", "physical")
                    .with_attr("perception", p.perception)
                    .with_attr("media", &p.media);
            }
        }
        for b in &p.bindings {
            let mut be = Element::new("bind");
            // Deduplicate binding keys (attribute keys must be unique).
            let mut seen = std::collections::BTreeSet::new();
            for (k, v) in b {
                if seen.insert(k.clone()) {
                    be = be.with_attr(k, v);
                }
            }
            e = e.with_child(be);
        }
        root = root.with_child(e);
    }
    root.to_document()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parse → serialize → parse is the identity on USDL documents.
    #[test]
    fn usdl_round_trip(
        device in "[a-z:.-]{1,24}",
        platform in "[a-z]{2,12}",
        name in "[a-zA-Z0-9 ]{1,24}",
        ports in proptest::collection::vec(any::<u8>(), 0..6)
            .prop_flat_map(|v| {
                let strategies: Vec<_> = (0..v.len()).map(arb_port).collect();
                strategies
            }),
    ) {
        let xml = build_xml(&device, &platform, &name, &ports);
        let doc = UsdlDocument::parse(&xml).unwrap();
        prop_assert_eq!(doc.device_type(), device.as_str());
        prop_assert_eq!(doc.platform(), platform.as_str());
        prop_assert_eq!(doc.ports().len(), ports.len());
        let again = UsdlDocument::parse(&doc.to_xml()).unwrap();
        prop_assert_eq!(&doc, &again);

        // The derived shape matches the declarations.
        let shape = doc.shape();
        for p in &ports {
            let spec = shape.port(&p.name).expect("port present");
            prop_assert_eq!(
                spec.direction,
                if p.direction == "input" { Direction::Input } else { Direction::Output }
            );
            match (&p.digital_mime, &spec.kind) {
                (Some(m), PortKind::Digital(mime)) => {
                    prop_assert_eq!(&mime.to_string(), m);
                }
                (None, PortKind::Physical { media, .. }) => {
                    prop_assert_eq!(media, &p.media);
                }
                other => prop_assert!(false, "kind mismatch: {:?}", other),
            }
        }

        // Profiles built from the document carry the shape and identity.
        let profile = doc.profile(None);
        prop_assert_eq!(profile.name(), doc.name());
        prop_assert_eq!(profile.shape(), &shape);
        prop_assert_eq!(profile.attr("device-type"), Some(device.as_str()));
    }

    /// The XML parser and USDL validator never panic on arbitrary text.
    #[test]
    fn usdl_parse_never_panics(s in "\\PC{0,300}") {
        let _ = UsdlDocument::parse(&s);
        let _ = Element::parse(&s);
    }
}
