//! Property-based tests: arbitrary USDL documents survive the
//! XML round trip, and shapes derived from them behave consistently.

use simnet::SimRng;
use umiddle_core::{Direction, PortKind};
use umiddle_usdl::{Element, UsdlDocument};

const LOWER: &str = "abcdefghijklmnopqrstuvwxyz";
const LOWER_NUM_DASH: &str = "abcdefghijklmnopqrstuvwxyz0123456789-";
const ALNUM_SPACE: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";

fn arb_name(rng: &mut SimRng) -> String {
    let tail = rng.gen_range(0usize..=12);
    rng.gen_string(LOWER, 1) + &rng.gen_string(LOWER_NUM_DASH, tail)
}

fn arb_mime(rng: &mut SimRng) -> String {
    let a_len = rng.gen_range(2usize..=8);
    let b_len = rng.gen_range(1usize..=10);
    let a = rng.gen_string(LOWER, a_len);
    let b = rng.gen_string("abcdefghijklmnopqrstuvwxyz0123456789.+-", b_len);
    format!("{a}/{b}")
}

#[derive(Debug, Clone)]
struct PortGen {
    name: String,
    direction: &'static str,
    digital_mime: Option<String>,
    perception: &'static str,
    media: String,
    bindings: Vec<Vec<(String, String)>>,
}

fn arb_port(rng: &mut SimRng, idx: usize) -> PortGen {
    let name = arb_name(rng);
    let direction = if rng.gen_bool(0.5) { "input" } else { "output" };
    let digital_mime = if rng.gen_bool(0.5) {
        Some(arb_mime(rng))
    } else {
        None
    };
    let perception = match rng.gen_range(0u8..3) {
        0 => "visible",
        1 => "audible",
        _ => "tangible",
    };
    let media_len = rng.gen_range(1usize..=8);
    let media = rng.gen_string(LOWER, media_len);
    let n_bindings = rng.gen_range(0usize..3);
    let bindings = (0..n_bindings)
        .map(|_| {
            let n_pairs = rng.gen_range(1usize..3);
            (0..n_pairs)
                .map(|_| {
                    let klen = rng.gen_range(1usize..=6);
                    let vlen = rng.gen_range(0usize..=12);
                    let k = rng.gen_string(LOWER, klen);
                    let v = rng.gen_string(ALNUM_SPACE, vlen);
                    (k, v)
                })
                .collect()
        })
        .collect();
    PortGen {
        // Guarantee unique port names by suffixing the index.
        name: format!("{name}-{idx}"),
        direction,
        digital_mime,
        perception,
        media,
        bindings,
    }
}

fn build_xml(device: &str, platform: &str, name: &str, ports: &[PortGen]) -> String {
    let mut root = Element::new("usdl")
        .with_attr("device", device)
        .with_attr("platform", platform)
        .with_attr("name", name);
    for p in ports {
        let mut e = Element::new("port")
            .with_attr("name", &p.name)
            .with_attr("direction", p.direction);
        match &p.digital_mime {
            Some(m) => {
                e = e.with_attr("kind", "digital").with_attr("mime", m);
            }
            None => {
                e = e
                    .with_attr("kind", "physical")
                    .with_attr("perception", p.perception)
                    .with_attr("media", &p.media);
            }
        }
        for b in &p.bindings {
            let mut be = Element::new("bind");
            // Deduplicate binding keys (attribute keys must be unique).
            let mut seen = std::collections::BTreeSet::new();
            for (k, v) in b {
                if seen.insert(k.clone()) {
                    be = be.with_attr(k, v);
                }
            }
            e = e.with_child(be);
        }
        root = root.with_child(e);
    }
    root.to_document()
}

/// Parse → serialize → parse is the identity on USDL documents.
#[test]
fn usdl_round_trip() {
    simnet::check_cases("usdl_round_trip", 64, |_, rng| {
        let dev_len = rng.gen_range(1usize..=24);
        let device = rng.gen_string("abcdefghijklmnopqrstuvwxyz:.-", dev_len);
        let plat_len = rng.gen_range(2usize..=12);
        let platform = rng.gen_string(LOWER, plat_len);
        let name_len = rng.gen_range(1usize..=24);
        let name = rng.gen_string(ALNUM_SPACE, name_len);
        let n_ports = rng.gen_range(0usize..6);
        let ports: Vec<PortGen> = (0..n_ports).map(|i| arb_port(rng, i)).collect();

        let xml = build_xml(&device, &platform, &name, &ports);
        let doc = UsdlDocument::parse(&xml).unwrap();
        assert_eq!(doc.device_type(), device.as_str());
        assert_eq!(doc.platform(), platform.as_str());
        assert_eq!(doc.ports().len(), ports.len());
        let again = UsdlDocument::parse(&doc.to_xml()).unwrap();
        assert_eq!(&doc, &again);

        // The derived shape matches the declarations.
        let shape = doc.shape();
        for p in &ports {
            let spec = shape.port(&p.name).expect("port present");
            assert_eq!(
                spec.direction,
                if p.direction == "input" {
                    Direction::Input
                } else {
                    Direction::Output
                }
            );
            match (&p.digital_mime, &spec.kind) {
                (Some(m), PortKind::Digital(mime)) => {
                    assert_eq!(&mime.to_string(), m);
                }
                (None, PortKind::Physical { media, .. }) => {
                    assert_eq!(media, &p.media);
                }
                other => panic!("kind mismatch: {other:?}"),
            }
        }

        // Profiles built from the document carry the shape and identity.
        let profile = doc.profile(None);
        assert_eq!(profile.name(), doc.name());
        assert_eq!(profile.shape(), &shape);
        assert_eq!(profile.attr("device-type"), Some(device.as_str()));
    });
}

/// The XML parser and USDL validator never panic on arbitrary text.
#[test]
fn usdl_parse_never_panics() {
    simnet::check_cases("usdl_parse_never_panics", 64, |_, rng| {
        let len = rng.gen_range(0usize..300);
        let s = String::from_utf8_lossy(&rng.gen_bytes(len)).into_owned();
        let _ = UsdlDocument::parse(&s);
        let _ = Element::parse(&s);
    });
}
