//! The USDL document model and its XML schema.
//!
//! USDL ("Universal Service Description Language", paper §3.4) describes
//! how a *generic* per-platform translator is parameterized for a concrete
//! device type: which ports the device's shape has, and how each port
//! binds to native actions, state variables, OBEX operations, RMI methods
//! and so on. "Therefore the implementation of translators can be generic,
//! assuming such a document-based runtime configuration."
//!
//! Document format:
//!
//! ```xml
//! <usdl device="urn:upnp:BinaryLight:1" platform="upnp" name="UPnP Light">
//!   <translator generic="upnp"/>
//!   <attr key="category" value="lighting"/>
//!   <port name="switch-on" kind="digital" direction="input" mime="text/plain">
//!     <bind action="SetPower" argument="Power" value="1"/>
//!   </port>
//!   <port name="light" kind="physical" direction="output"
//!         perception="visible" media="air"/>
//! </usdl>
//! ```
//!
//! `<bind>` attributes are platform-specific and surfaced as key/value
//! maps — the schema does not interpret them; the platform's generic
//! translator does.

use std::collections::BTreeMap;
use std::fmt;

use umiddle_core::{
    CoreError, CoreResult, Direction, PerceptionType, PortKind, PortSpec, RuntimeId, Shape,
    TranslatorId, TranslatorProfile,
};

use crate::xml::Element;

/// One platform-specific port binding: an opaque attribute map consumed
/// by the platform's generic translator.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Binding(BTreeMap<String, String>);

impl Binding {
    /// Creates a binding from key/value pairs.
    pub fn from_pairs<I, K, V>(pairs: I) -> Binding
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        Binding(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Looks up a binding attribute.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    /// All attributes, sorted by key.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Returns `true` if the binding has no attributes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// One port declaration: its common-space spec plus native bindings.
#[derive(Debug, Clone, PartialEq)]
pub struct UsdlPort {
    /// The port's common-space specification.
    pub spec: PortSpec,
    /// Native bindings (zero or more `<bind>` children).
    pub bindings: Vec<Binding>,
}

/// A parsed and validated USDL document.
#[derive(Debug, Clone, PartialEq)]
pub struct UsdlDocument {
    device_type: String,
    platform: String,
    name: String,
    generic: String,
    attrs: BTreeMap<String, String>,
    ports: Vec<UsdlPort>,
}

impl UsdlDocument {
    /// Parses and validates a USDL document.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] on schema violations (missing
    /// required attributes, bad kinds/directions/MIME types, duplicate
    /// port names) and on XML syntax errors.
    pub fn parse(xml: &str) -> CoreResult<UsdlDocument> {
        let root = Element::parse(xml).map_err(|e| CoreError::Invalid(e.to_string()))?;
        UsdlDocument::from_element(&root)
    }

    /// Builds a document from an already-parsed element.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] on schema violations.
    pub fn from_element(root: &Element) -> CoreResult<UsdlDocument> {
        if root.local_name() != "usdl" {
            return Err(CoreError::Invalid(format!(
                "root element must be <usdl>, found <{}>",
                root.name()
            )));
        }
        let required = |key: &str| -> CoreResult<String> {
            root.attr(key)
                .map(str::to_owned)
                .ok_or_else(|| CoreError::Invalid(format!("<usdl> missing {key:?} attribute")))
        };
        let device_type = required("device")?;
        let platform = required("platform")?;
        let name = required("name")?;
        let generic = root
            .child("translator")
            .and_then(|t| t.attr("generic"))
            .map(str::to_owned)
            .unwrap_or_else(|| platform.clone());

        let mut attrs = BTreeMap::new();
        for a in root.children_named("attr") {
            let key = a
                .attr("key")
                .ok_or_else(|| CoreError::Invalid("<attr> missing key".to_owned()))?;
            let value = a
                .attr("value")
                .ok_or_else(|| CoreError::Invalid("<attr> missing value".to_owned()))?;
            attrs.insert(key.to_owned(), value.to_owned());
        }

        let mut ports = Vec::new();
        for p in root.children_named("port") {
            ports.push(parse_port(p)?);
        }
        // Validate uniqueness via shape construction.
        Shape::from_ports(ports.iter().map(|p| p.spec.clone()).collect())?;
        Ok(UsdlDocument {
            device_type,
            platform,
            name,
            generic,
            attrs,
            ports,
        })
    }

    /// The native device type this document describes (a UPnP URN, a
    /// Bluetooth profile name, an RMI interface, …).
    pub fn device_type(&self) -> &str {
        &self.device_type
    }

    /// The platform the device lives on.
    pub fn platform(&self) -> &str {
        &self.platform
    }

    /// Default human-readable name for instantiated translators.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The generic translator implementation to parameterize.
    pub fn generic(&self) -> &str {
        &self.generic
    }

    /// Document-level attributes copied onto instantiated profiles.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// The declared ports.
    pub fn ports(&self) -> &[UsdlPort] {
        &self.ports
    }

    /// Looks up a port by name.
    pub fn port(&self, name: &str) -> Option<&UsdlPort> {
        self.ports.iter().find(|p| p.spec.name == name)
    }

    /// The device's shape (all port specs).
    pub fn shape(&self) -> Shape {
        Shape::from_ports(self.ports.iter().map(|p| p.spec.clone()).collect())
            .expect("validated at parse time")
    }

    /// Builds a translator profile for a concrete device instance.
    /// `instance_name` overrides the document's default name (e.g. the
    /// device's friendly name from discovery); the id is a placeholder
    /// replaced at registration.
    pub fn profile(&self, instance_name: Option<&str>) -> TranslatorProfile {
        let mut b = TranslatorProfile::builder(
            TranslatorId::new(RuntimeId(u32::MAX), 0),
            instance_name.unwrap_or(&self.name),
        )
        .platform(self.platform.clone())
        .shape(self.shape())
        .attr("device-type", self.device_type.clone());
        for (k, v) in &self.attrs {
            b = b.attr(k.clone(), v.clone());
        }
        b.build()
    }

    /// Serializes back to USDL XML.
    pub fn to_xml(&self) -> String {
        let mut root = Element::new("usdl")
            .with_attr("device", &self.device_type)
            .with_attr("platform", &self.platform)
            .with_attr("name", &self.name);
        root = root.with_child(Element::new("translator").with_attr("generic", &self.generic));
        for (k, v) in &self.attrs {
            root = root.with_child(
                Element::new("attr")
                    .with_attr("key", k)
                    .with_attr("value", v),
            );
        }
        for p in &self.ports {
            let mut e = Element::new("port")
                .with_attr("name", &p.spec.name)
                .with_attr(
                    "direction",
                    match p.spec.direction {
                        Direction::Input => "input",
                        Direction::Output => "output",
                    },
                );
            match &p.spec.kind {
                PortKind::Digital(m) => {
                    e = e
                        .with_attr("kind", "digital")
                        .with_attr("mime", m.to_string());
                }
                PortKind::Physical { perception, media } => {
                    e = e
                        .with_attr("kind", "physical")
                        .with_attr("perception", perception.to_string())
                        .with_attr("media", media);
                }
            }
            for b in &p.bindings {
                let mut be = Element::new("bind");
                for (k, v) in b.iter() {
                    be = be.with_attr(k, v);
                }
                e = e.with_child(be);
            }
            root = root.with_child(e);
        }
        root.to_document()
    }
}

impl fmt::Display for UsdlDocument {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "usdl {:?} ({} on {}, {} ports)",
            self.name,
            self.device_type,
            self.platform,
            self.ports.len()
        )
    }
}

fn parse_port(p: &Element) -> CoreResult<UsdlPort> {
    let name = p
        .attr("name")
        .ok_or_else(|| CoreError::Invalid("<port> missing name".to_owned()))?;
    let direction: Direction = p
        .attr("direction")
        .ok_or_else(|| CoreError::Invalid(format!("port {name:?} missing direction")))?
        .parse()?;
    let kind = match p.attr("kind") {
        Some("digital") => {
            let mime = p
                .attr("mime")
                .ok_or_else(|| CoreError::Invalid(format!("digital port {name:?} missing mime")))?;
            PortKind::Digital(mime.parse()?)
        }
        Some("physical") => {
            let perception: PerceptionType = p
                .attr("perception")
                .ok_or_else(|| {
                    CoreError::Invalid(format!("physical port {name:?} missing perception"))
                })?
                .parse()?;
            let media = p.attr("media").ok_or_else(|| {
                CoreError::Invalid(format!("physical port {name:?} missing media"))
            })?;
            PortKind::physical(perception, media)
        }
        other => {
            return Err(CoreError::Invalid(format!(
                "port {name:?} has invalid kind {other:?}"
            )))
        }
    };
    let mut bindings = Vec::new();
    for b in p.children_named("bind") {
        bindings.push(Binding::from_pairs(
            b.attrs().map(|(k, v)| (k.to_owned(), v.to_owned())),
        ));
    }
    Ok(UsdlPort {
        spec: PortSpec {
            name: name.to_owned(),
            direction,
            kind,
        },
        bindings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIGHT: &str = r#"
        <usdl device="urn:upnp:BinaryLight:1" platform="upnp" name="UPnP Light">
          <translator generic="upnp"/>
          <attr key="category" value="lighting"/>
          <port name="switch-on" kind="digital" direction="input" mime="text/plain">
            <bind action="SetPower" argument="Power" value="1"/>
          </port>
          <port name="switch-off" kind="digital" direction="input" mime="text/plain">
            <bind action="SetPower" argument="Power" value="0"/>
          </port>
          <port name="power-state" kind="digital" direction="output" mime="text/plain">
            <bind statevar="Power"/>
          </port>
          <port name="light" kind="physical" direction="output"
                perception="visible" media="air"/>
        </usdl>"#;

    #[test]
    fn parses_the_paper_light_example() {
        let doc = UsdlDocument::parse(LIGHT).unwrap();
        assert_eq!(doc.device_type(), "urn:upnp:BinaryLight:1");
        assert_eq!(doc.platform(), "upnp");
        assert_eq!(doc.generic(), "upnp");
        assert_eq!(doc.ports().len(), 4);
        // The paper's two digital input ports: "1" switches on, "0" off.
        let on = doc.port("switch-on").unwrap();
        assert_eq!(on.bindings[0].get("action"), Some("SetPower"));
        assert_eq!(on.bindings[0].get("value"), Some("1"));
        let off = doc.port("switch-off").unwrap();
        assert_eq!(off.bindings[0].get("value"), Some("0"));
        assert_eq!(doc.shape().ports().len(), 4);
    }

    #[test]
    fn profile_carries_attrs_and_shape() {
        let doc = UsdlDocument::parse(LIGHT).unwrap();
        let p = doc.profile(Some("Hallway Light"));
        assert_eq!(p.name(), "Hallway Light");
        assert_eq!(p.platform(), "upnp");
        assert_eq!(p.attr("category"), Some("lighting"));
        assert_eq!(p.attr("device-type"), Some("urn:upnp:BinaryLight:1"));
        assert_eq!(p.shape().ports().len(), 4);
        let default = doc.profile(None);
        assert_eq!(default.name(), "UPnP Light");
    }

    #[test]
    fn xml_round_trip() {
        let doc = UsdlDocument::parse(LIGHT).unwrap();
        let back = UsdlDocument::parse(&doc.to_xml()).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn schema_violations_rejected() {
        // Missing platform.
        assert!(UsdlDocument::parse(r#"<usdl device="d" name="n"/>"#).is_err());
        // Wrong root.
        assert!(UsdlDocument::parse(r#"<wsdl device="d" platform="p" name="n"/>"#).is_err());
        // Bad direction.
        assert!(UsdlDocument::parse(
            r#"<usdl device="d" platform="p" name="n">
                 <port name="x" kind="digital" direction="sideways" mime="a/b"/>
               </usdl>"#
        )
        .is_err());
        // Digital without mime.
        assert!(UsdlDocument::parse(
            r#"<usdl device="d" platform="p" name="n">
                 <port name="x" kind="digital" direction="input"/>
               </usdl>"#
        )
        .is_err());
        // Duplicate port names.
        assert!(UsdlDocument::parse(
            r#"<usdl device="d" platform="p" name="n">
                 <port name="x" kind="digital" direction="input" mime="a/b"/>
                 <port name="x" kind="digital" direction="output" mime="a/b"/>
               </usdl>"#
        )
        .is_err());
        // Physical without media.
        assert!(UsdlDocument::parse(
            r#"<usdl device="d" platform="p" name="n">
                 <port name="x" kind="physical" direction="output" perception="visible"/>
               </usdl>"#
        )
        .is_err());
    }

    #[test]
    fn generic_defaults_to_platform() {
        let doc =
            UsdlDocument::parse(r#"<usdl device="d" platform="motes" name="Mote"/>"#).unwrap();
        assert_eq!(doc.generic(), "motes");
    }
}
