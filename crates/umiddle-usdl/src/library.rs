//! A registry of USDL documents keyed by `(platform, device type)`.
//!
//! Mappers consult the library when a native device is discovered: the
//! document tells them how to parameterize their generic translator for
//! that device type. New device types are supported by adding documents —
//! no code changes, which is the paper's first extensibility dimension.

use std::collections::BTreeMap;
use std::fmt;

use umiddle_core::{CoreError, CoreResult};

use crate::schema::UsdlDocument;

/// The USDL document registry.
#[derive(Debug, Clone, Default)]
pub struct UsdlLibrary {
    docs: BTreeMap<(String, String), UsdlDocument>,
}

impl UsdlLibrary {
    /// Creates an empty library.
    pub fn new() -> UsdlLibrary {
        UsdlLibrary::default()
    }

    /// A library pre-loaded with every bundled device description.
    pub fn bundled() -> UsdlLibrary {
        let mut lib = UsdlLibrary::new();
        for xml in crate::builtin::BUNDLED_DOCUMENTS {
            lib.register_xml(xml)
                .expect("bundled USDL documents are valid");
        }
        lib
    }

    /// Registers a parsed document, replacing any previous document for
    /// the same `(platform, device type)`.
    pub fn register(&mut self, doc: UsdlDocument) {
        self.docs.insert(
            (doc.platform().to_owned(), doc.device_type().to_owned()),
            doc,
        );
    }

    /// Parses and registers a document.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] if the document fails validation.
    pub fn register_xml(&mut self, xml: &str) -> CoreResult<()> {
        let doc = UsdlDocument::parse(xml)?;
        self.register(doc);
        Ok(())
    }

    /// Looks up the document for a device type on a platform.
    pub fn get(&self, platform: &str, device_type: &str) -> Option<&UsdlDocument> {
        self.docs
            .get(&(platform.to_owned(), device_type.to_owned()))
    }

    /// Like [`UsdlLibrary::get`], but returns a descriptive error.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Invalid`] naming the missing document.
    pub fn require(&self, platform: &str, device_type: &str) -> CoreResult<&UsdlDocument> {
        self.get(platform, device_type).ok_or_else(|| {
            CoreError::Invalid(format!(
                "no USDL document for device type {device_type:?} on platform {platform:?}"
            ))
        })
    }

    /// All documents for one platform.
    pub fn for_platform<'a>(&'a self, platform: &'a str) -> impl Iterator<Item = &'a UsdlDocument> {
        self.docs
            .iter()
            .filter(move |((p, _), _)| p == platform)
            .map(|(_, d)| d)
    }

    /// Every document, ordered by platform then device type.
    pub fn iter(&self) -> impl Iterator<Item = &UsdlDocument> {
        self.docs.values()
    }

    /// Number of registered documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Returns `true` if the library has no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

impl fmt::Display for UsdlLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "usdl library ({} documents)", self.docs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundled_library_loads_and_indexes() {
        let lib = UsdlLibrary::bundled();
        assert!(lib.len() >= 10, "bundled count: {}", lib.len());
        // Every platform the paper bridges is represented.
        for platform in [
            "upnp",
            "bluetooth",
            "rmi",
            "mediabroker",
            "motes",
            "webservices",
        ] {
            assert!(
                lib.for_platform(platform).count() > 0,
                "missing platform {platform}"
            );
        }
    }

    #[test]
    fn clock_has_fourteen_ports_like_the_paper() {
        let lib = UsdlLibrary::bundled();
        let clock = lib.require("upnp", "urn:umiddle:device:Clock:1").unwrap();
        assert_eq!(
            clock.ports().len(),
            14,
            "paper: clock translator has 14 ports"
        );
    }

    #[test]
    fn require_reports_missing() {
        let lib = UsdlLibrary::new();
        let err = lib.require("upnp", "nope").unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn register_replaces() {
        let mut lib = UsdlLibrary::new();
        lib.register_xml(r#"<usdl device="d" platform="p" name="First"/>"#)
            .unwrap();
        lib.register_xml(r#"<usdl device="d" platform="p" name="Second"/>"#)
            .unwrap();
        assert_eq!(lib.len(), 1);
        assert_eq!(lib.get("p", "d").unwrap().name(), "Second");
    }
}
