//! A small, dependency-free XML subset parser and writer.
//!
//! uMiddle's ecosystem is XML-heavy: USDL documents, UPnP device
//! descriptions, SOAP envelopes, GENA notifications and web-service
//! descriptions all share this codec. The supported subset is: elements
//! with attributes, text content, CDATA sections, comments, processing
//! instructions/XML declarations (skipped), and the five predefined
//! entities (`&lt; &gt; &amp; &quot; &apos;`) plus decimal/hex character
//! references. Namespaces are treated lexically (prefixes are part of the
//! name; [`Element::local_name`] strips them).
//!
//! The parser is total: any input either yields a document or an
//! [`XmlError`] with a byte offset — it never panics.

use std::error::Error;
use std::fmt;

/// An XML element: name, attributes, and children (elements and text).
///
/// # Examples
///
/// ```
/// use umiddle_usdl::Element;
///
/// let doc = Element::parse(r#"<root a="1"><child>hi</child></root>"#)?;
/// assert_eq!(doc.name(), "root");
/// assert_eq!(doc.attr("a"), Some("1"));
/// assert_eq!(doc.child("child").unwrap().text(), "hi");
/// # Ok::<(), umiddle_usdl::XmlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    name: String,
    attrs: Vec<(String, String)>,
    children: Vec<Node>,
}

/// A child node of an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Text content (entity-decoded).
    Text(String),
}

/// Errors produced by the XML parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "xml parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl Error for XmlError {}

impl Element {
    /// Creates an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Element {
        Element {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// The element's full name, including any namespace prefix.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The name with any namespace prefix stripped (`s:Envelope` →
    /// `Envelope`).
    pub fn local_name(&self) -> &str {
        self.name.rsplit(':').next().unwrap_or(&self.name)
    }

    /// Adds an attribute (builder style).
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Element {
        self.attrs.push((key.into(), value.into()));
        self
    }

    /// Adds a child element (builder style).
    pub fn with_child(mut self, child: Element) -> Element {
        self.children.push(Node::Element(child));
        self
    }

    /// Adds text content (builder style).
    pub fn with_text(mut self, text: impl Into<String>) -> Element {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Looks up an attribute value.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// All attributes in document order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// All child nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.children
    }

    /// Child elements, in document order.
    pub fn children(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// First child element with the given local name.
    pub fn child(&self, local_name: &str) -> Option<&Element> {
        self.children().find(|e| e.local_name() == local_name)
    }

    /// All child elements with the given local name.
    pub fn children_named<'a>(
        &'a self,
        local_name: &'a str,
    ) -> impl Iterator<Item = &'a Element> + 'a {
        self.children()
            .filter(move |e| e.local_name() == local_name)
    }

    /// Concatenated text content of this element (direct text children
    /// only), trimmed.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out.trim().to_owned()
    }

    /// Finds the first descendant element (depth-first) with the given
    /// local name, including `self`.
    pub fn find(&self, local_name: &str) -> Option<&Element> {
        if self.local_name() == local_name {
            return Some(self);
        }
        self.children().find_map(|c| c.find(local_name))
    }

    /// Parses a document and returns its root element.
    ///
    /// # Errors
    ///
    /// Returns [`XmlError`] on malformed input (unterminated tags,
    /// mismatched close tags, bad entities, trailing garbage).
    pub fn parse(input: &str) -> Result<Element, XmlError> {
        let mut p = Parser {
            input: input.as_bytes(),
            pos: 0,
        };
        p.skip_prolog()?;
        let root = p.parse_element()?;
        p.skip_misc()?;
        if p.pos != p.input.len() {
            return Err(p.err("trailing content after document element"));
        }
        Ok(root)
    }

    /// Serializes to a compact XML string (no declaration).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with an XML declaration, as protocols like SOAP expect.
    pub fn to_document(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"utf-8\"?>");
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            escape_into(v, out, true);
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for n in &self.children {
            match n {
                Node::Element(e) => e.write(out),
                Node::Text(t) => escape_into(t, out, false),
            }
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }
}

fn escape_into(s: &str, out: &mut String, in_attr: bool) {
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if in_attr => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips the XML declaration, processing instructions, comments and
    /// whitespace before the root element.
    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                // Skip to the matching '>' (no internal subset support).
                self.skip_until(">")?;
            } else {
                return Ok(());
            }
        }
    }

    /// Skips comments/PIs/whitespace after the root element.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<(), XmlError> {
        let bytes = end.as_bytes();
        while self.pos < self.input.len() {
            if self.input[self.pos..].starts_with(bytes) {
                self.pos += bytes.len();
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.err(format!("unterminated construct, expected {end:?}")))
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn expect(&mut self, c: u8) -> Result<(), XmlError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", c as char)))
        }
    }

    fn parse_element(&mut self) -> Result<Element, XmlError> {
        self.expect(b'<')?;
        let name = self.parse_name()?;
        let mut element = Element::new(name.clone());
        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.parse_name()?;
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let quote = self.peek().ok_or_else(|| self.err("eof in attribute"))?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(self.err("attribute value must be quoted"));
                    }
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek() != Some(quote) {
                        if self.peek().is_none() {
                            return Err(self.err("unterminated attribute value"));
                        }
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    self.pos += 1;
                    let value = decode_entities(&raw).map_err(|m| self.err(m))?;
                    element.attrs.push((key, value));
                }
                None => return Err(self.err("eof in start tag")),
            }
        }
        // Content.
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != name {
                    return Err(self.err(format!(
                        "mismatched close tag: expected </{name}>, found </{close}>"
                    )));
                }
                self.skip_ws();
                self.expect(b'>')?;
                return Ok(element);
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<![CDATA[") {
                self.pos += 9;
                let start = self.pos;
                let end = self.find_str("]]>")?;
                let text = String::from_utf8_lossy(&self.input[start..end]).into_owned();
                self.pos = end + 3;
                element.children.push(Node::Text(text));
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element()?;
                element.children.push(Node::Element(child));
            } else if self.peek().is_none() {
                return Err(self.err(format!("eof inside <{name}>")));
            } else {
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                let text = decode_entities(&raw).map_err(|m| self.err(m))?;
                if !text.is_empty() {
                    element.children.push(Node::Text(text));
                }
            }
        }
    }

    fn find_str(&self, needle: &str) -> Result<usize, XmlError> {
        let bytes = needle.as_bytes();
        let mut i = self.pos;
        while i + bytes.len() <= self.input.len() {
            if self.input[i..].starts_with(bytes) {
                return Ok(i);
            }
            i += 1;
        }
        Err(self.err(format!("expected {needle:?}")))
    }
}

/// Decodes the five predefined entities and numeric character references.
fn decode_entities(s: &str) -> Result<String, String> {
    if !s.contains('&') {
        return Ok(s.to_owned());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let end = rest
            .find(';')
            .ok_or_else(|| "unterminated entity".to_owned())?;
        let entity = &rest[1..end];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16)
                    .map_err(|_| format!("bad character reference &{entity};"))?;
                out.push(
                    char::from_u32(code).ok_or_else(|| format!("invalid codepoint &{entity};"))?,
                );
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..]
                    .parse()
                    .map_err(|_| format!("bad character reference &{entity};"))?;
                out.push(
                    char::from_u32(code).ok_or_else(|| format!("invalid codepoint &{entity};"))?,
                );
            }
            other => return Err(format!("unknown entity &{other};")),
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document_with_declaration() {
        let doc = Element::parse(
            r#"<?xml version="1.0"?>
            <!-- a comment -->
            <device type="clock">
              <service id="time">
                <action>GetTime</action>
                <action>SetTime</action>
              </service>
            </device>"#,
        )
        .unwrap();
        assert_eq!(doc.name(), "device");
        assert_eq!(doc.attr("type"), Some("clock"));
        let actions: Vec<String> = doc
            .child("service")
            .unwrap()
            .children_named("action")
            .map(|a| a.text())
            .collect();
        assert_eq!(actions, vec!["GetTime", "SetTime"]);
    }

    #[test]
    fn entities_decode_and_encode() {
        let doc = Element::parse(r#"<t a="&lt;&amp;&gt;">x &#60; y &#x26; z</t>"#).unwrap();
        assert_eq!(doc.attr("a"), Some("<&>"));
        assert_eq!(doc.text(), "x < y & z");
        let round = Element::parse(&doc.to_xml()).unwrap();
        assert_eq!(doc, round);
    }

    #[test]
    fn cdata_preserved_verbatim() {
        let doc = Element::parse("<t><![CDATA[a <b> & c]]></t>").unwrap();
        assert_eq!(doc.text(), "a <b> & c");
    }

    #[test]
    fn namespace_prefixes_strip() {
        let doc = Element::parse(
            r#"<s:Envelope xmlns:s="http://schemas.xmlsoap.org/soap/envelope/">
                 <s:Body><u:SetPower><Power>1</Power></u:SetPower></s:Body>
               </s:Envelope>"#,
        )
        .unwrap();
        assert_eq!(doc.local_name(), "Envelope");
        let body = doc.child("Body").unwrap();
        let action = body.children().next().unwrap();
        assert_eq!(action.local_name(), "SetPower");
        assert_eq!(action.child("Power").unwrap().text(), "1");
    }

    #[test]
    fn find_searches_depth_first() {
        let doc = Element::parse("<a><b><c>deep</c></b><c>shallow</c></a>").unwrap();
        assert_eq!(doc.find("c").unwrap().text(), "deep");
    }

    #[test]
    fn errors_carry_offsets() {
        for bad in [
            "<a>",
            "<a></b>",
            "<a x=1></a>",
            "<a>&unknown;</a>",
            "<a></a><b></b>",
            "",
            "< a></a>",
        ] {
            let e = Element::parse(bad).unwrap_err();
            assert!(!e.to_string().is_empty(), "{bad:?}");
        }
    }

    #[test]
    fn self_closing_and_empty_equivalent() {
        let a = Element::parse("<x/>").unwrap();
        let b = Element::parse("<x></x>").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_xml(), "<x/>");
    }

    #[test]
    fn builder_round_trips() {
        let e = Element::new("root")
            .with_attr("id", "1")
            .with_child(Element::new("leaf").with_text("value & more"))
            .with_child(Element::new("empty"));
        let parsed = Element::parse(&e.to_xml()).unwrap();
        assert_eq!(e, parsed);
        assert!(e.to_document().starts_with("<?xml"));
        assert_eq!(Element::parse(&e.to_document()).unwrap(), e);
    }

    const NAME_HEAD: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    const NAME_TAIL: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-";
    // Printable ASCII including characters that require escaping.
    const TEXT_CHARS: &str = " !\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`\
         abcdefghijklmnopqrstuvwxyz{|}~";

    fn arb_name(rng: &mut simnet::SimRng) -> String {
        let len = rng.gen_range(0usize..=8);
        rng.gen_string(NAME_HEAD, 1) + &rng.gen_string(NAME_TAIL, len)
    }

    fn arb_text(rng: &mut simnet::SimRng) -> String {
        let len = rng.gen_range(0usize..=24);
        rng.gen_string(TEXT_CHARS, len)
    }

    fn arb_element(rng: &mut simnet::SimRng, depth: u32) -> Element {
        if depth == 0 || rng.gen_bool(0.4) {
            let mut e = Element::new(arb_name(rng));
            let n_attrs = rng.gen_range(0usize..3);
            for _ in 0..n_attrs {
                let k = arb_name(rng);
                // Attribute keys must be unique for equality after parse.
                if e.attr(&k).is_none() {
                    let v = arb_text(rng);
                    e = e.with_attr(k, v);
                }
            }
            let text = arb_text(rng);
            if !text.trim().is_empty() {
                e = e.with_text(text.trim().to_owned());
            }
            e
        } else {
            let mut e = Element::new(arb_name(rng));
            let n_kids = rng.gen_range(0usize..3);
            for _ in 0..n_kids {
                let kid = arb_element(rng, depth - 1);
                e = e.with_child(kid);
            }
            e
        }
    }

    /// Any built element serializes and parses back to itself.
    #[test]
    fn write_parse_round_trip() {
        simnet::check_cases("xml_write_parse_round_trip", 256, |_, rng| {
            let e = arb_element(rng, 3);
            let xml = e.to_xml();
            let parsed = Element::parse(&xml).unwrap();
            assert_eq!(e, parsed);
        });
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_never_panics() {
        simnet::check_cases("xml_parser_never_panics", 256, |_, rng| {
            // Half the cases: printable soup; other half: raw bytes
            // (lossily decoded) to hit non-ASCII paths.
            let len = rng.gen_range(0usize..256);
            let s = if rng.gen_bool(0.5) {
                rng.gen_string(TEXT_CHARS, len)
            } else {
                String::from_utf8_lossy(&rng.gen_bytes(len)).into_owned()
            };
            let _ = Element::parse(&s);
        });
    }
}
