//! # umiddle-usdl — the Universal Service Description Language
//!
//! USDL is the XML-based language the paper introduces (§3.4) "to support
//! the representation of semantics of native devices in uMiddle's
//! intermediary semantic space for both humans and machines". A mapper
//! creates a translator (and its shape) for a native device from the USDL
//! document describing that device type, so translator *implementations*
//! stay generic per platform and are mechanically parameterized per
//! device.
//!
//! This crate provides:
//!
//! * [`Element`]: a small, total XML subset parser/writer shared by USDL,
//!   SOAP, UPnP device descriptions, GENA and the web-services platform.
//! * [`UsdlDocument`]: the validated document model ([`UsdlPort`]s with
//!   platform-specific [`Binding`]s).
//! * [`UsdlLibrary`]: the registry mappers consult at discovery time,
//!   including [`UsdlLibrary::bundled`] with descriptions for the paper's
//!   whole device corpus (UPnP clock/light/air-conditioner/MediaRenderer,
//!   Bluetooth BIP camera & printer and HIDP mouse, RMI echo,
//!   MediaBroker endpoints, sensor motes, web services).
//!
//! # Examples
//!
//! ```
//! use umiddle_usdl::UsdlLibrary;
//!
//! let lib = UsdlLibrary::bundled();
//! let clock = lib.require("upnp", "urn:umiddle:device:Clock:1")?;
//! assert_eq!(clock.ports().len(), 14); // the paper's 14-port clock
//! let profile = clock.profile(Some("Kitchen Clock"));
//! assert_eq!(profile.platform(), "upnp");
//! # Ok::<(), umiddle_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builtin;
mod library;
mod schema;
mod xml;

pub use library::UsdlLibrary;
pub use schema::{Binding, UsdlDocument, UsdlPort};
pub use xml::{Element, Node, XmlError};
