//! Bundled USDL documents for every device type the reproduction ships.
//!
//! These mirror the device corpus of the paper's evaluation: the UPnP
//! clock (fourteen ports — the paper calls out its mapping cost), light
//! and air conditioner from the CyberLink samples, the UPnP MediaRenderer
//! TV, the Bluetooth BIP camera/printer and HIDP mouse, a Java RMI echo
//! service, MediaBroker sources/sinks, a Berkeley sensor mote and a web
//! service logger.

/// UPnP binary light (the paper's §3.4 SetPower example: `1` switches the
/// light on, `0` off).
pub const UPNP_LIGHT: &str = r#"
<usdl device="urn:umiddle:device:BinaryLight:1" platform="upnp" name="UPnP Light">
  <translator generic="upnp"/>
  <attr key="category" value="lighting"/>
  <port name="switch-on" kind="digital" direction="input" mime="text/plain">
    <bind service="SwitchPower" action="SetPower" argument="Power" value="1"/>
  </port>
  <port name="switch-off" kind="digital" direction="input" mime="text/plain">
    <bind service="SwitchPower" action="SetPower" argument="Power" value="0"/>
  </port>
  <port name="power-state" kind="digital" direction="output" mime="text/plain">
    <bind service="SwitchPower" statevar="Power"/>
  </port>
  <port name="light" kind="physical" direction="output" perception="visible" media="air"/>
</usdl>"#;

/// UPnP clock. Fourteen ports, matching the paper's description of the
/// most expensive translator to instantiate in Figure 10.
pub const UPNP_CLOCK: &str = r#"
<usdl device="urn:umiddle:device:Clock:1" platform="upnp" name="UPnP Clock">
  <translator generic="upnp"/>
  <attr key="category" value="time"/>
  <port name="set-time" kind="digital" direction="input" mime="text/plain">
    <bind service="TimeKeeping" action="SetTime" argument="NewTime"/>
  </port>
  <port name="time" kind="digital" direction="output" mime="text/plain">
    <bind service="TimeKeeping" statevar="Time"/>
  </port>
  <port name="set-date" kind="digital" direction="input" mime="text/plain">
    <bind service="TimeKeeping" action="SetDate" argument="NewDate"/>
  </port>
  <port name="date" kind="digital" direction="output" mime="text/plain">
    <bind service="TimeKeeping" statevar="Date"/>
  </port>
  <port name="set-timezone" kind="digital" direction="input" mime="text/plain">
    <bind service="TimeKeeping" action="SetTimeZone" argument="NewTimeZone"/>
  </port>
  <port name="timezone" kind="digital" direction="output" mime="text/plain">
    <bind service="TimeKeeping" statevar="TimeZone"/>
  </port>
  <port name="set-alarm" kind="digital" direction="input" mime="text/plain">
    <bind service="Alarm" action="SetAlarm" argument="AlarmTime"/>
  </port>
  <port name="alarm" kind="digital" direction="output" mime="text/plain">
    <bind service="Alarm" statevar="AlarmTime"/>
  </port>
  <port name="alarm-enable" kind="digital" direction="input" mime="text/plain">
    <bind service="Alarm" action="SetAlarmEnabled" argument="Enabled"/>
  </port>
  <port name="set-format" kind="digital" direction="input" mime="text/plain">
    <bind service="TimeKeeping" action="SetFormat" argument="Format"/>
  </port>
  <port name="format" kind="digital" direction="output" mime="text/plain">
    <bind service="TimeKeeping" statevar="Format"/>
  </port>
  <port name="tick" kind="digital" direction="output" mime="text/plain">
    <bind service="TimeKeeping" statevar="Tick"/>
  </port>
  <port name="display" kind="physical" direction="output" perception="visible" media="screen"/>
  <port name="alarm-ring" kind="physical" direction="output" perception="audible" media="air"/>
</usdl>"#;

/// UPnP air conditioner (one of the CyberLink sample devices used in
/// Figure 10).
pub const UPNP_AIRCON: &str = r#"
<usdl device="urn:umiddle:device:AirConditioner:1" platform="upnp" name="UPnP Air Conditioner">
  <translator generic="upnp"/>
  <attr key="category" value="hvac"/>
  <port name="set-mode" kind="digital" direction="input" mime="text/plain">
    <bind service="Hvac" action="SetMode" argument="Mode"/>
  </port>
  <port name="set-temperature" kind="digital" direction="input" mime="text/plain">
    <bind service="Hvac" action="SetTarget" argument="Target"/>
  </port>
  <port name="temperature" kind="digital" direction="output" mime="text/plain">
    <bind service="Hvac" statevar="Temperature"/>
  </port>
  <port name="mode" kind="digital" direction="output" mime="text/plain">
    <bind service="Hvac" statevar="Mode"/>
  </port>
  <port name="airflow" kind="physical" direction="output" perception="tangible" media="air"/>
</usdl>"#;

/// UPnP MediaRenderer — the TV in the paper's flagship camera-to-TV
/// scenario.
pub const UPNP_MEDIA_RENDERER: &str = r#"
<usdl device="urn:umiddle:device:MediaRenderer:1" platform="upnp" name="UPnP MediaRenderer TV">
  <translator generic="upnp"/>
  <attr key="category" value="av"/>
  <port name="media-in" kind="digital" direction="input" mime="image/*">
    <bind service="AVTransport" action="RenderMedia" argument="Media"/>
  </port>
  <port name="play-control" kind="digital" direction="input" mime="text/plain">
    <bind service="AVTransport" action="SetTransportState" argument="State"/>
  </port>
  <port name="transport-state" kind="digital" direction="output" mime="text/plain">
    <bind service="AVTransport" statevar="TransportState"/>
  </port>
  <port name="screen" kind="physical" direction="output" perception="visible" media="screen"/>
  <port name="speaker" kind="physical" direction="output" perception="audible" media="air"/>
</usdl>"#;

/// Bluetooth Basic Imaging Profile camera (the paper's running example).
pub const BT_BIP_CAMERA: &str = r#"
<usdl device="bip-camera" platform="bluetooth" name="BIP Camera">
  <translator generic="bluetooth-bip"/>
  <attr key="category" value="imaging"/>
  <port name="image-out" kind="digital" direction="output" mime="image/jpeg">
    <bind obex="get" operation="ImagePull"/>
  </port>
  <port name="capture" kind="digital" direction="input" mime="text/plain">
    <bind obex="put" operation="RemoteShutter"/>
  </port>
  <port name="viewfinder" kind="physical" direction="output" perception="visible" media="screen"/>
</usdl>"#;

/// Bluetooth BIP printer: same profile as the camera, different role —
/// the paper's point that BIP roles are determined at runtime by
/// different USDL documents over one generic translator.
pub const BT_BIP_PRINTER: &str = r#"
<usdl device="bip-printer" platform="bluetooth" name="BIP Photo Printer">
  <translator generic="bluetooth-bip"/>
  <attr key="category" value="imaging"/>
  <port name="image-in" kind="digital" direction="input" mime="image/jpeg">
    <bind obex="put" operation="ImagePush"/>
  </port>
  <port name="print" kind="physical" direction="output" perception="visible" media="paper"/>
</usdl>"#;

/// Bluetooth HIDP mouse (benchmarked in Figure 10 and §5.2; signals are
/// translated to small vector-markup documents per the paper).
pub const BT_HIDP_MOUSE: &str = r#"
<usdl device="hidp-mouse" platform="bluetooth" name="HIDP Mouse">
  <translator generic="bluetooth-hidp"/>
  <attr key="category" value="input"/>
  <port name="pointer" kind="digital" direction="output" mime="application/vml">
    <bind report="motion"/>
  </port>
  <port name="clicks" kind="digital" direction="output" mime="text/plain">
    <bind report="button"/>
  </port>
  <port name="grip" kind="physical" direction="input" perception="tangible" media="hand"/>
</usdl>"#;

/// Java RMI echo service (the §5.3 transport benchmark endpoint).
pub const RMI_ECHO: &str = r#"
<usdl device="EchoService" platform="rmi" name="RMI Echo Service">
  <translator generic="rmi"/>
  <port name="request" kind="digital" direction="input" mime="application/octet-stream">
    <bind method="echo"/>
  </port>
  <port name="response" kind="digital" direction="output" mime="application/octet-stream">
    <bind method="echo" result="true"/>
  </port>
</usdl>"#;

/// MediaBroker producer endpoint (§5.3).
pub const MB_SOURCE: &str = r#"
<usdl device="mb-source" platform="mediabroker" name="MediaBroker Source">
  <translator generic="mediabroker"/>
  <port name="media-out" kind="digital" direction="output" mime="application/octet-stream">
    <bind channel="produce"/>
  </port>
</usdl>"#;

/// MediaBroker consumer endpoint (§5.3).
pub const MB_SINK: &str = r#"
<usdl device="mb-sink" platform="mediabroker" name="MediaBroker Sink">
  <translator generic="mediabroker"/>
  <port name="media-in" kind="digital" direction="input" mime="application/octet-stream">
    <bind channel="consume"/>
  </port>
</usdl>"#;

/// Berkeley sensor mote (temperature + light sensing).
pub const MOTE_SENSOR: &str = r#"
<usdl device="sensor-mote" platform="motes" name="Sensor Mote">
  <translator generic="motes"/>
  <attr key="category" value="sensing"/>
  <port name="temperature" kind="digital" direction="output" mime="text/plain">
    <bind am-type="10" field="temperature"/>
  </port>
  <port name="light-level" kind="digital" direction="output" mime="text/plain">
    <bind am-type="10" field="light"/>
  </port>
  <port name="sampling" kind="digital" direction="input" mime="text/plain">
    <bind am-type="11" field="interval"/>
  </port>
</usdl>"#;

/// A web-service event logger.
pub const WS_LOGGER: &str = r#"
<usdl device="logger" platform="webservices" name="Event Log Service">
  <translator generic="webservices"/>
  <port name="log-in" kind="digital" direction="input" mime="text/plain">
    <bind operation="append"/>
  </port>
  <port name="entries" kind="digital" direction="output" mime="text/plain">
    <bind operation="tail"/>
  </port>
</usdl>"#;

/// A web-service weather feed.
pub const WS_WEATHER: &str = r#"
<usdl device="weather" platform="webservices" name="Weather Service">
  <translator generic="webservices"/>
  <port name="conditions" kind="digital" direction="output" mime="text/plain">
    <bind operation="current"/>
  </port>
  <port name="set-location" kind="digital" direction="input" mime="text/plain">
    <bind operation="locate"/>
  </port>
</usdl>"#;

/// Every bundled document, in registration order.
pub const BUNDLED_DOCUMENTS: &[&str] = &[
    UPNP_LIGHT,
    UPNP_CLOCK,
    UPNP_AIRCON,
    UPNP_MEDIA_RENDERER,
    BT_BIP_CAMERA,
    BT_BIP_PRINTER,
    BT_HIDP_MOUSE,
    RMI_ECHO,
    MB_SOURCE,
    MB_SINK,
    MOTE_SENSOR,
    WS_LOGGER,
    WS_WEATHER,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::UsdlDocument;

    #[test]
    fn every_bundled_document_parses_and_round_trips() {
        for xml in BUNDLED_DOCUMENTS {
            let doc = UsdlDocument::parse(xml).unwrap_or_else(|e| panic!("{e}: {xml}"));
            let back = UsdlDocument::parse(&doc.to_xml()).unwrap();
            assert_eq!(doc, back);
            assert!(!doc.ports().is_empty() || doc.device_type() == "unused");
        }
    }

    #[test]
    fn camera_and_tv_are_connectable() {
        let cam = UsdlDocument::parse(BT_BIP_CAMERA).unwrap();
        let tv = UsdlDocument::parse(UPNP_MEDIA_RENDERER).unwrap();
        let (cam_shape, tv_shape) = (cam.shape(), tv.shape());
        let pairs = cam_shape.connectable_to(&tv_shape);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0.name, "image-out");
        assert_eq!(pairs[0].1.name, "media-in");
    }

    #[test]
    fn camera_and_printer_are_connectable_too() {
        // Fine-grained polymorphism: the same camera feeds the printer.
        let cam = UsdlDocument::parse(BT_BIP_CAMERA).unwrap();
        let printer = UsdlDocument::parse(BT_BIP_PRINTER).unwrap();
        let (cam_shape, printer_shape) = (cam.shape(), printer.shape());
        assert_eq!(cam_shape.connectable_to(&printer_shape).len(), 1);
    }

    #[test]
    fn bip_camera_and_printer_share_generic_translator() {
        let cam = UsdlDocument::parse(BT_BIP_CAMERA).unwrap();
        let printer = UsdlDocument::parse(BT_BIP_PRINTER).unwrap();
        assert_eq!(cam.generic(), printer.generic());
        assert_ne!(cam.device_type(), printer.device_type());
    }
}
