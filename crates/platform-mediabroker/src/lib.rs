//! # platform-mediabroker — a simulated MediaBroker
//!
//! MediaBroker (Modahl et al., IEEE PerCom 2004) is the Georgia Tech
//! "architecture for pervasive computing": a distributed media
//! transformation infrastructure. The paper uses an MB service as the
//! fast endpoint of its transport-level benchmark (6.2 Mbps vs RMI's
//! 3.2, Figure 11) — its advantage is lean binary framing ([`MbFrame`])
//! and a type lattice ([`TypeLattice`]) that lets the broker
//! ([`MediaBroker`]) downgrade streams to what consumers accept.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod broker;
mod types;

pub use broker::{MbAccumulator, MbFrame, MediaBroker, BROKER_PORT, FORWARD_COST};
pub use types::TypeLattice;
