//! The MediaBroker broker process and its compact wire protocol.
//!
//! Unlike RMI's verbose marshaling, MediaBroker frames are lean binary —
//! that is why the paper's MB echo reaches 6.2 Mbps where RMI manages
//! 3.2 (Figure 11). Producers register typed channels; consumers attach
//! to channels (possibly with a downgraded type); the broker forwards and
//! transforms frames.

use std::collections::HashMap;

use simnet::{
    Addr, ChunkQueue, Ctx, Payload, PayloadBuilder, Process, SimDuration, StreamEvent, StreamId,
};

use crate::types::TypeLattice;

/// The broker's well-known stream port.
pub const BROKER_PORT: u16 = 2000;

/// Fixed broker-side processing per forwarded frame (lean C-style stack).
pub const FORWARD_COST: SimDuration = SimDuration::from_micros(120);

/// MediaBroker wire frames (compact binary; `u32` length prefix).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MbFrame {
    /// Producer registers a channel.
    Produce {
        /// Channel name.
        channel: String,
        /// Media type of the stream.
        media_type: String,
    },
    /// Consumer attaches to a channel.
    Consume {
        /// Channel name.
        channel: String,
        /// Media type the consumer accepts.
        media_type: String,
    },
    /// Broker acknowledges a registration.
    Ack,
    /// Broker rejects a registration (unknown channel / untransformable).
    Nack {
        /// Why.
        reason: String,
    },
    /// Media data on the sender's channel. The payload is a shared
    /// [`Payload`] so the broker can fan one buffer out to N consumers
    /// without copying.
    Data {
        /// Payload bytes.
        payload: Payload,
    },
    /// Broker asks for the channel roster (monitoring).
    ListChannels,
    /// Channel roster: `(name, type, consumers)`.
    Channels(Vec<(String, String, u32)>),
}

const TAG_PRODUCE: u8 = 1;
const TAG_CONSUME: u8 = 2;
const TAG_ACK: u8 = 3;
const TAG_NACK: u8 = 4;
const TAG_DATA: u8 = 5;
const TAG_LIST: u8 = 6;
const TAG_CHANNELS: u8 = 7;

fn put_str(out: &mut PayloadBuilder, s: &str) {
    let b = s.as_bytes();
    out.u16_le(b.len().min(u16::MAX as usize) as u16);
    out.extend_from_slice(&b[..b.len().min(u16::MAX as usize)]);
}

impl MbFrame {
    fn encode_into(&self, out: &mut PayloadBuilder) {
        match self {
            MbFrame::Produce {
                channel,
                media_type,
            } => {
                out.push(TAG_PRODUCE);
                put_str(out, channel);
                put_str(out, media_type);
            }
            MbFrame::Consume {
                channel,
                media_type,
            } => {
                out.push(TAG_CONSUME);
                put_str(out, channel);
                put_str(out, media_type);
            }
            MbFrame::Ack => out.push(TAG_ACK),
            MbFrame::Nack { reason } => {
                out.push(TAG_NACK);
                put_str(out, reason);
            }
            MbFrame::Data { payload } => {
                out.push(TAG_DATA);
                out.u32_le(payload.len() as u32);
                out.extend_from_slice(payload);
            }
            MbFrame::ListChannels => out.push(TAG_LIST),
            MbFrame::Channels(entries) => {
                out.push(TAG_CHANNELS);
                out.u16_le(entries.len() as u16);
                for (name, ty, consumers) in entries {
                    put_str(out, name);
                    put_str(out, ty);
                    out.u32_le(*consumers);
                }
            }
        }
    }

    /// Encodes the frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = PayloadBuilder::new();
        self.encode_into(&mut out);
        out.into_vec()
    }

    /// Encodes with a `u32` length prefix. Prefix and body go into one
    /// buffer (the prefix slot is reserved up front and patched), so
    /// framing costs no second allocation or copy.
    pub fn encode_framed(&self) -> Payload {
        let mut out = PayloadBuilder::new();
        let slot = out.reserve_u32_le();
        self.encode_into(&mut out);
        let body_len = (out.len() - 4) as u32;
        out.patch_u32_le(slot, body_len);
        out.freeze()
    }

    /// Decodes a frame body from a shared buffer. A `Data` frame's
    /// payload is returned as a zero-copy sub-slice of `frame`.
    pub fn decode_payload(frame: &Payload) -> Option<MbFrame> {
        Self::decode_inner(frame, Some(frame))
    }

    /// Decodes a frame body.
    pub fn decode(bytes: &[u8]) -> Option<MbFrame> {
        Self::decode_inner(bytes, None)
    }

    fn decode_inner(bytes: &[u8], backing: Option<&Payload>) -> Option<MbFrame> {
        struct C<'a> {
            b: &'a [u8],
            p: usize,
        }
        impl<'a> C<'a> {
            fn take(&mut self, n: usize) -> Option<&'a [u8]> {
                if self.p + n > self.b.len() {
                    return None;
                }
                let s = &self.b[self.p..self.p + n];
                self.p += n;
                Some(s)
            }
            fn u16(&mut self) -> Option<u16> {
                let b = self.take(2)?;
                Some(u16::from_le_bytes([b[0], b[1]]))
            }
            fn u32(&mut self) -> Option<u32> {
                let b = self.take(4)?;
                Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            }
            fn str(&mut self) -> Option<String> {
                let n = self.u16()? as usize;
                String::from_utf8(self.take(n)?.to_vec()).ok()
            }
        }
        let mut c = C { b: bytes, p: 1 };
        let frame = match *bytes.first()? {
            TAG_PRODUCE => MbFrame::Produce {
                channel: c.str()?,
                media_type: c.str()?,
            },
            TAG_CONSUME => MbFrame::Consume {
                channel: c.str()?,
                media_type: c.str()?,
            },
            TAG_ACK => MbFrame::Ack,
            TAG_NACK => MbFrame::Nack { reason: c.str()? },
            TAG_DATA => {
                let n = c.u32()? as usize;
                let start = c.p;
                let s = c.take(n)?;
                let payload = match backing {
                    Some(p) => p.slice(start..start + n),
                    None => Payload::copy_from_slice(s),
                };
                MbFrame::Data { payload }
            }
            TAG_LIST => MbFrame::ListChannels,
            TAG_CHANNELS => {
                let n = c.u16()? as usize;
                let mut entries = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    let name = c.str()?;
                    let ty = c.str()?;
                    let consumers = c.u32()?;
                    entries.push((name, ty, consumers));
                }
                MbFrame::Channels(entries)
            }
            _ => return None,
        };
        if c.p == bytes.len() {
            Some(frame)
        } else {
            None
        }
    }
}

/// Accumulates length-prefixed MB frames from a stream.
///
/// Built on [`ChunkQueue`]: arriving stream chunks are queued without
/// concatenation, extraction is O(frame) rather than O(buffered), and a
/// `Data` frame contained in one chunk is decoded as a zero-copy slice
/// of that chunk.
#[derive(Debug, Default)]
pub struct MbAccumulator {
    buf: ChunkQueue,
}

impl MbAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> MbAccumulator {
        MbAccumulator::default()
    }

    /// Feeds borrowed bytes (one copy into a fresh chunk).
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.push_slice(bytes);
    }

    /// Feeds a shared chunk without copying — the path stream handlers
    /// use with [`StreamEvent::Data`] payloads.
    pub fn push_payload(&mut self, chunk: Payload) {
        self.buf.push(chunk);
    }

    /// Pops the next complete frame.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed frames (buffer cleared).
    #[allow(clippy::should_implement_trait)] // framer convention, not an Iterator
    pub fn next(&mut self) -> Result<Option<MbFrame>, String> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let mut hdr = [0u8; 4];
        self.buf.peek_into(&mut hdr);
        let len = u32::from_le_bytes(hdr) as usize;
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let _prefix = self.buf.take(4);
        let body = self.buf.take(len);
        match MbFrame::decode_payload(&body) {
            Some(f) => Ok(Some(f)),
            None => {
                self.buf.clear();
                Err("malformed MB frame".to_owned())
            }
        }
    }
}

#[derive(Debug)]
struct Channel {
    media_type: String,
    producer: StreamId,
    /// Consumers and their accepted type.
    consumers: Vec<(StreamId, String)>,
}

/// The broker process.
pub struct MediaBroker {
    port: u16,
    lattice: TypeLattice,
    conns: HashMap<StreamId, MbAccumulator>,
    /// Channel registry.
    channels: HashMap<String, Channel>,
    /// Which channel a producer stream feeds.
    producer_of: HashMap<StreamId, String>,
}

impl std::fmt::Debug for MediaBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MediaBroker")
            .field("port", &self.port)
            .field("channels", &self.channels.len())
            .finish_non_exhaustive()
    }
}

impl MediaBroker {
    /// Creates a broker on the standard port with the standard lattice.
    pub fn new() -> MediaBroker {
        MediaBroker::with_port(BROKER_PORT)
    }

    /// Creates a broker on a custom port.
    pub fn with_port(port: u16) -> MediaBroker {
        MediaBroker {
            port,
            lattice: TypeLattice::standard(),
            conns: HashMap::new(),
            channels: HashMap::new(),
            producer_of: HashMap::new(),
        }
    }

    /// The broker's address on `node`.
    pub fn addr(node: simnet::NodeId) -> Addr {
        Addr::new(node, BROKER_PORT)
    }

    fn handle_frame(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, frame: MbFrame) {
        match frame {
            MbFrame::Produce {
                channel,
                media_type,
            } => {
                self.channels.insert(
                    channel.clone(),
                    Channel {
                        media_type,
                        producer: stream,
                        consumers: Vec::new(),
                    },
                );
                self.producer_of.insert(stream, channel);
                let _ = ctx.stream_send(stream, MbFrame::Ack.encode_framed());
                ctx.bump("mb.channels", 1);
            }
            MbFrame::Consume {
                channel,
                media_type,
            } => {
                let reply = match self.channels.get_mut(&channel) {
                    Some(ch) if self.lattice.convertible(&ch.media_type, &media_type) => {
                        ch.consumers.push((stream, media_type));
                        MbFrame::Ack
                    }
                    Some(ch) => MbFrame::Nack {
                        reason: format!("cannot transform {} to {}", ch.media_type, media_type),
                    },
                    None => MbFrame::Nack {
                        reason: format!("no such channel {channel:?}"),
                    },
                };
                let _ = ctx.stream_send(stream, reply.encode_framed());
            }
            MbFrame::Data { payload } => {
                let Some(channel_name) = self.producer_of.get(&stream).cloned() else {
                    return;
                };
                let Some(ch) = self.channels.get(&channel_name) else {
                    return;
                };
                if ch.producer != stream {
                    return; // stale registration
                }
                ctx.busy(FORWARD_COST);
                let src_type = ch.media_type.clone();
                let targets: Vec<(StreamId, String)> = ch.consumers.clone();
                for (consumer, want_type) in targets {
                    // Transformation cost along the lattice.
                    if let Some(cost_per_kib) = self.lattice.conversion_cost(&src_type, &want_type)
                    {
                        if !cost_per_kib.is_zero() {
                            let kib = payload.len().div_ceil(1024) as u64;
                            ctx.busy(cost_per_kib * kib);
                        }
                        let frame = MbFrame::Data {
                            payload: payload.clone(),
                        };
                        let _ = ctx.stream_send(consumer, frame.encode_framed());
                        ctx.bump("mb.frames_forwarded", 1);
                    }
                }
            }
            MbFrame::ListChannels => {
                let entries: Vec<(String, String, u32)> = self
                    .channels
                    .iter()
                    .map(|(name, ch)| {
                        (
                            name.clone(),
                            ch.media_type.clone(),
                            ch.consumers.len() as u32,
                        )
                    })
                    .collect();
                let _ = ctx.stream_send(stream, MbFrame::Channels(entries).encode_framed());
            }
            _ => {}
        }
    }
}

impl Default for MediaBroker {
    fn default() -> MediaBroker {
        MediaBroker::new()
    }
}

impl Process for MediaBroker {
    fn name(&self) -> &str {
        "mediabroker"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(self.port).expect("broker port free");
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
        match event {
            StreamEvent::Accepted { .. } => {
                self.conns.insert(stream, MbAccumulator::new());
            }
            StreamEvent::Data(data) => {
                let Some(acc) = self.conns.get_mut(&stream) else {
                    return;
                };
                acc.push_payload(data);
                loop {
                    let frame = match self.conns.get_mut(&stream).map(|a| a.next()) {
                        Some(Ok(Some(f))) => f,
                        Some(Ok(None)) | None => break,
                        Some(Err(_)) => {
                            ctx.stream_close(stream);
                            break;
                        }
                    };
                    self.handle_frame(ctx, stream, frame);
                }
            }
            StreamEvent::Closed | StreamEvent::ConnectFailed => {
                self.conns.remove(&stream);
                if let Some(channel) = self.producer_of.remove(&stream) {
                    self.channels.remove(&channel);
                }
                for ch in self.channels.values_mut() {
                    ch.consumers.retain(|(s, _)| *s != stream);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{SegmentConfig, SimTime, World};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn frames_round_trip() {
        for f in [
            MbFrame::Produce {
                channel: "cam1".to_owned(),
                media_type: "video/raw".to_owned(),
            },
            MbFrame::Consume {
                channel: "cam1".to_owned(),
                media_type: "image/jpeg".to_owned(),
            },
            MbFrame::Ack,
            MbFrame::Nack {
                reason: "nope".to_owned(),
            },
            MbFrame::Data {
                payload: vec![1; 1400].into(),
            },
            MbFrame::ListChannels,
            MbFrame::Channels(vec![("a".to_owned(), "t".to_owned(), 2)]),
        ] {
            assert_eq!(MbFrame::decode(&f.encode()), Some(f));
        }
    }

    #[test]
    fn framing_is_lean() {
        // A 1400-byte payload adds only 9 bytes of framing — contrast with
        // RMI's marshaling overhead.
        let f = MbFrame::Data {
            payload: vec![0; 1400].into(),
        };
        assert_eq!(f.encode_framed().len(), 1400 + 9);
    }

    #[test]
    fn decode_never_panics() {
        simnet::check_cases("mb_decode_never_panics", 256, |_, rng| {
            let len = rng.gen_range(0usize..128);
            let bytes = rng.gen_bytes(len);
            let _ = MbFrame::decode(&bytes);
        });
    }

    /// Producer registers a channel and sends frames.
    struct Producer {
        broker: Addr,
        acc: MbAccumulator,
        stream: Option<StreamId>,
        acked: bool,
        to_send: u32,
    }
    impl Process for Producer {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.stream = Some(ctx.connect(self.broker).unwrap());
        }
        fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
            match event {
                StreamEvent::Connected => {
                    let _ = ctx.stream_send(
                        stream,
                        MbFrame::Produce {
                            channel: "cam".to_owned(),
                            media_type: "image/jpeg".to_owned(),
                        }
                        .encode_framed(),
                    );
                }
                StreamEvent::Data(data) => {
                    self.acc.push_payload(data);
                    while let Ok(Some(f)) = self.acc.next() {
                        if f == MbFrame::Ack && !self.acked {
                            self.acked = true;
                            // Give the consumer time to attach.
                            ctx.set_timer(simnet::SimDuration::from_millis(500), 1);
                        }
                    }
                }
                _ => {}
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            let stream = self.stream.unwrap();
            for _ in 0..self.to_send {
                let _ = ctx.stream_send(
                    stream,
                    MbFrame::Data {
                        payload: vec![7; 1000].into(),
                    }
                    .encode_framed(),
                );
            }
        }
    }

    /// Consumer attaches (retrying while the channel does not exist yet)
    /// and records payloads.
    struct Consumer {
        broker: Addr,
        acc: MbAccumulator,
        want: String,
        got: Rc<RefCell<Vec<usize>>>,
        nack: Rc<RefCell<Option<String>>>,
        stream: Option<StreamId>,
    }
    impl Consumer {
        fn attach(&mut self, ctx: &mut Ctx<'_>) {
            if let Some(stream) = self.stream {
                let _ = ctx.stream_send(
                    stream,
                    MbFrame::Consume {
                        channel: "cam".to_owned(),
                        media_type: self.want.clone(),
                    }
                    .encode_framed(),
                );
            }
        }
    }
    impl Process for Consumer {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.connect(self.broker).unwrap();
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            self.attach(ctx);
        }
        fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
            match event {
                StreamEvent::Connected => {
                    self.stream = Some(stream);
                    self.attach(ctx);
                }
                StreamEvent::Data(data) => {
                    self.acc.push_payload(data);
                    while let Ok(Some(f)) = self.acc.next() {
                        match f {
                            MbFrame::Data { payload } => self.got.borrow_mut().push(payload.len()),
                            MbFrame::Nack { reason } => {
                                if reason.contains("no such channel") {
                                    // The producer has not registered yet.
                                    ctx.set_timer(simnet::SimDuration::from_millis(100), 1);
                                } else {
                                    *self.nack.borrow_mut() = Some(reason)
                                }
                            }
                            _ => {}
                        }
                    }
                }
                _ => {}
            }
        }
    }

    fn broker_world() -> (World, Addr, simnet::NodeId, simnet::NodeId, simnet::NodeId) {
        let mut world = World::new(41);
        let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
        let b = world.add_node("broker");
        let p = world.add_node("producer");
        let c = world.add_node("consumer");
        for n in [b, p, c] {
            world.attach(n, hub).unwrap();
        }
        world.add_process(b, Box::new(MediaBroker::new()));
        (world, Addr::new(b, BROKER_PORT), b, p, c)
    }

    #[test]
    fn produce_consume_forwarding() {
        let (mut world, broker, _, p, c) = broker_world();
        let got = Rc::new(RefCell::new(Vec::new()));
        let nack = Rc::new(RefCell::new(None));
        world.add_process(
            c,
            Box::new(Consumer {
                broker,
                acc: MbAccumulator::new(),
                want: "image/thumbnail".to_owned(), // downgrade via lattice
                got: Rc::clone(&got),
                nack: Rc::clone(&nack),
                stream: None,
            }),
        );
        world.add_process(
            p,
            Box::new(Producer {
                broker,
                acc: MbAccumulator::new(),
                stream: None,
                acked: false,
                to_send: 5,
            }),
        );
        world.run_until(SimTime::from_secs(5));
        assert_eq!(nack.borrow().clone(), None);
        assert_eq!(got.borrow().len(), 5);
        assert!(got.borrow().iter().all(|n| *n == 1000));
    }

    #[test]
    fn untransformable_consumer_is_nacked() {
        let (mut world, broker, _, p, c) = broker_world();
        let got = Rc::new(RefCell::new(Vec::new()));
        let nack = Rc::new(RefCell::new(None));
        world.add_process(
            c,
            Box::new(Consumer {
                broker,
                acc: MbAccumulator::new(),
                want: "video/raw".to_owned(), // upgrade: impossible
                got: Rc::clone(&got),
                nack: Rc::clone(&nack),
                stream: None,
            }),
        );
        world.add_process(
            p,
            Box::new(Producer {
                broker,
                acc: MbAccumulator::new(),
                stream: None,
                acked: false,
                to_send: 1,
            }),
        );
        world.run_until(SimTime::from_secs(5));
        assert!(nack
            .borrow()
            .as_deref()
            .unwrap_or("")
            .contains("cannot transform"));
        assert!(got.borrow().is_empty());
    }
}
