//! The MediaBroker type lattice.
//!
//! MediaBroker (Modahl et al., PerCom 2004) is "a distributed media
//! transformation infrastructure": producers publish typed media streams
//! and the broker can *downgrade* a stream along a type lattice to what a
//! consumer can accept (raw video → JPEG frames → thumbnails, PCM audio
//! → compressed, …). We model the lattice as a forest of named types with
//! explicit edges and per-edge transformation costs.

use std::collections::BTreeMap;

use simnet::SimDuration;

/// A media-type lattice: nodes are type names, edges are allowed
/// downgrades with a CPU cost per kilobyte transformed.
#[derive(Debug, Clone, Default)]
pub struct TypeLattice {
    /// child -> parent (downgrade target) edges with cost per KiB.
    edges: BTreeMap<String, Vec<(String, SimDuration)>>,
}

impl TypeLattice {
    /// Creates an empty lattice.
    pub fn new() -> TypeLattice {
        TypeLattice::default()
    }

    /// The default lattice used by the bundled broker.
    pub fn standard() -> TypeLattice {
        let mut l = TypeLattice::new();
        l.add_edge(
            "video/raw",
            "video/jpeg-frames",
            SimDuration::from_micros(900),
        );
        l.add_edge(
            "video/jpeg-frames",
            "image/jpeg",
            SimDuration::from_micros(150),
        );
        l.add_edge(
            "image/jpeg",
            "image/thumbnail",
            SimDuration::from_micros(400),
        );
        l.add_edge(
            "audio/pcm",
            "audio/compressed",
            SimDuration::from_micros(600),
        );
        l.add_edge(
            "application/octet-stream",
            "application/octet-stream",
            SimDuration::ZERO,
        );
        l
    }

    /// Adds a downgrade edge.
    pub fn add_edge(&mut self, from: &str, to: &str, cost_per_kib: SimDuration) {
        self.edges
            .entry(from.to_owned())
            .or_default()
            .push((to.to_owned(), cost_per_kib));
    }

    /// Finds the cheapest downgrade path from `from` to `to`; returns the
    /// total cost per KiB, or `None` if unreachable. Identical types cost
    /// nothing.
    pub fn conversion_cost(&self, from: &str, to: &str) -> Option<SimDuration> {
        if from == to {
            return Some(SimDuration::ZERO);
        }
        // Dijkstra over a tiny graph.
        let mut best: BTreeMap<&str, SimDuration> = BTreeMap::new();
        let mut frontier = vec![(from, SimDuration::ZERO)];
        while let Some((node, cost)) = frontier.pop() {
            if let Some(prev) = best.get(node) {
                if *prev <= cost {
                    continue;
                }
            }
            best.insert(node, cost);
            if let Some(edges) = self.edges.get(node) {
                for (next, edge_cost) in edges {
                    frontier.push((next, cost + *edge_cost));
                }
            }
        }
        best.get(to).copied()
    }

    /// Returns `true` if a stream of type `from` can serve a consumer
    /// wanting `to`.
    pub fn convertible(&self, from: &str, to: &str) -> bool {
        self.conversion_cost(from, to).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_free() {
        let l = TypeLattice::standard();
        assert_eq!(
            l.conversion_cost("video/raw", "video/raw"),
            Some(SimDuration::ZERO)
        );
    }

    #[test]
    fn multi_hop_downgrade_accumulates_cost() {
        let l = TypeLattice::standard();
        let direct = l.conversion_cost("video/raw", "video/jpeg-frames").unwrap();
        let two_hop = l.conversion_cost("video/raw", "image/jpeg").unwrap();
        assert!(two_hop > direct);
        assert!(l.convertible("video/raw", "image/thumbnail"));
    }

    #[test]
    fn upgrades_are_impossible() {
        let l = TypeLattice::standard();
        assert!(!l.convertible("image/jpeg", "video/raw"));
        assert!(!l.convertible("audio/compressed", "audio/pcm"));
        assert!(!l.convertible("image/jpeg", "audio/pcm"));
    }
}
