//! # platform-bluetooth — a simulated Bluetooth platform
//!
//! The second native platform of the paper's running example: a piconet
//! (simnet's `bluetooth_piconet` segment: 723 kbps shared medium, at most
//! eight devices) carrying:
//!
//! * **Inquiry** ([`InquiryMessage`], [`INQUIRY_GROUP`]): device
//!   discovery with scan-window response delays.
//! * **SDP** ([`SdpPdu`], [`ServiceRecord`]): binary service-discovery
//!   PDUs; records carry the profile id the uMiddle mapper keys USDL
//!   lookups on.
//! * **OBEX** ([`ObexPacket`], [`ObexAccumulator`]): object exchange with
//!   chunked bodies.
//! * **BIP** ([`BipCamera`], [`BipPrinter`]): the paper's digital camera
//!   (ImagePull / RemoteShutter) and photo printer (ImagePush).
//! * **HIDP** ([`HidpMouse`], [`HidReport`]): the mouse whose click
//!   translation §5.2 benchmarks at 23 ms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bip;
pub mod calib;
mod device;
mod hidp;
mod obex;
mod sdp;

pub use bip::{
    image_pull_request, image_push_packets, synthetic_jpeg, BipCamera, BipPrinter, ObexGetClient,
    StoredImage, OBEX_CHUNK, PSM_OBEX,
};
pub use device::{BtDeviceCore, InquiryMessage, INQUIRY_GROUP};
pub use hidp::{HidReport, HidpMouse, MouseConfig, ReportAccumulator, COD_MOUSE, PSM_HID};
pub use obex::{put_packets, Header, ObexAccumulator, ObexPacket, Opcode};
pub use sdp::{SdpPdu, ServiceRecord, PSM_SDP};
