//! Inquiry (device discovery) and the shared device-side plumbing.
//!
//! Bluetooth discovery is *inquiry*: a host broadcasts on the inquiry
//! channel; devices in inquiry-scan mode answer after a scan-window delay
//! with their address, name and class. We model the channel as a
//! multicast group on the piconet segment.

use simnet::{Addr, Ctx, Datagram, SimDuration, StreamEvent, StreamId};

use crate::calib;
use crate::sdp::{SdpPdu, ServiceRecord, PSM_SDP};

/// The inquiry multicast group on a piconet segment.
pub const INQUIRY_GROUP: u16 = 4096;

/// Inquiry channel messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InquiryMessage {
    /// A host looks for devices; responses go to the datagram source.
    Inquiry,
    /// A device answers with its identity.
    Response {
        /// Device name.
        name: String,
        /// Class-of-device bits (`0x2540` keyboard, `0x2580` mouse,
        /// `0x0680` imaging, …).
        class: u32,
    },
}

impl InquiryMessage {
    /// Encodes the message.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            InquiryMessage::Inquiry => vec![0x01],
            InquiryMessage::Response { name, class } => {
                let mut out = vec![0x02];
                out.extend_from_slice(&class.to_be_bytes());
                out.extend_from_slice(name.as_bytes());
                out
            }
        }
    }

    /// Decodes a message; `None` on garbage.
    pub fn decode(bytes: &[u8]) -> Option<InquiryMessage> {
        match bytes.first()? {
            0x01 if bytes.len() == 1 => Some(InquiryMessage::Inquiry),
            0x02 if bytes.len() >= 5 => Some(InquiryMessage::Response {
                class: u32::from_be_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]),
                name: String::from_utf8(bytes[5..].to_vec()).ok()?,
            }),
            _ => None,
        }
    }
}

/// Shared device-side behaviour: inquiry-scan responses and the SDP
/// server. Device processes (mouse, camera, printer) embed one and
/// forward their events.
#[derive(Debug)]
pub struct BtDeviceCore {
    /// Device name reported in inquiry responses.
    pub name: String,
    /// Class-of-device bits.
    pub class: u32,
    /// SDP records describing the device's services.
    pub records: Vec<ServiceRecord>,
    /// Timer token base reserved for deferred inquiry responses.
    inquiry_timer_base: u64,
    pending_responses: Vec<Addr>,
}

impl BtDeviceCore {
    /// Creates the core. `inquiry_timer_base` is the first timer token the
    /// core may use; it consumes tokens `base..base+2^16`.
    pub fn new(
        name: &str,
        class: u32,
        records: Vec<ServiceRecord>,
        inquiry_timer_base: u64,
    ) -> BtDeviceCore {
        BtDeviceCore {
            name: name.to_owned(),
            class,
            records,
            inquiry_timer_base,
            pending_responses: Vec::new(),
        }
    }

    /// Joins the inquiry channel and starts the SDP listener; call from
    /// `on_start`.
    pub fn start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx.join_group(INQUIRY_GROUP);
        ctx.listen(PSM_SDP).expect("sdp psm free");
    }

    /// Handles an inquiry datagram; call from `on_datagram`. Responses
    /// are deferred by a random scan-window delay.
    pub fn handle_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) {
        if InquiryMessage::decode(&dgram.data) != Some(InquiryMessage::Inquiry) {
            return;
        }
        let min = calib::INQUIRY_RESPONSE_MIN.as_nanos();
        let max = calib::INQUIRY_RESPONSE_MAX.as_nanos();
        let delay = SimDuration::from_nanos(ctx.rng().gen_range(min..=max));
        self.pending_responses.push(dgram.src);
        let token = self.inquiry_timer_base + (self.pending_responses.len() as u64 - 1);
        ctx.set_timer(delay, token);
    }

    /// Handles a timer; returns `true` if it was an inquiry-response
    /// token. Call from `on_timer` before device-specific tokens.
    pub fn handle_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) -> bool {
        let Some(idx) = token.checked_sub(self.inquiry_timer_base) else {
            return false;
        };
        let Some(&target) = self.pending_responses.get(idx as usize) else {
            return false;
        };
        let resp = InquiryMessage::Response {
            name: self.name.clone(),
            class: self.class,
        };
        let _ = ctx.send_to(PSM_SDP, target, resp.encode());
        true
    }

    /// Handles SDP traffic on an accepted stream; returns `true` if the
    /// event was consumed (i.e. it was SDP data). Devices call this first
    /// from `on_stream`; other streams belong to their profiles.
    pub fn handle_sdp_stream(
        &mut self,
        ctx: &mut Ctx<'_>,
        stream: StreamId,
        event: &StreamEvent,
    ) -> bool {
        match event {
            StreamEvent::Data(data) => {
                let Some(SdpPdu::SearchRequest {
                    transaction,
                    pattern,
                }) = SdpPdu::decode(data)
                else {
                    return false;
                };
                ctx.busy(calib::SDP_PROCESS);
                let records: Vec<ServiceRecord> = self
                    .records
                    .iter()
                    .filter(|r| SdpPdu::pattern_matches(&pattern, r))
                    .cloned()
                    .collect();
                let resp = SdpPdu::SearchResponse {
                    transaction,
                    records,
                };
                let _ = ctx.stream_send(stream, resp.encode());
                ctx.stream_close(stream);
                ctx.bump("bt.sdp_searches", 1);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inquiry_messages_round_trip() {
        for m in [
            InquiryMessage::Inquiry,
            InquiryMessage::Response {
                name: "Pocket Camera".to_owned(),
                class: 0x0680,
            },
        ] {
            assert_eq!(InquiryMessage::decode(&m.encode()), Some(m));
        }
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(InquiryMessage::decode(&[]), None);
        assert_eq!(InquiryMessage::decode(&[0x03]), None);
        assert_eq!(InquiryMessage::decode(&[0x02, 1]), None);
        assert_eq!(InquiryMessage::decode(&[0x01, 0x01]), None);
    }

    #[test]
    fn decode_never_panics() {
        simnet::check_cases("inquiry_decode_never_panics", 256, |_, rng| {
            let len = rng.gen_range(0usize..64);
            let bytes = rng.gen_bytes(len);
            let _ = InquiryMessage::decode(&bytes);
        });
    }
}
