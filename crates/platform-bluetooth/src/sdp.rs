//! SDP — the Bluetooth Service Discovery Protocol, as binary PDUs.
//!
//! After inquiry finds a device, a host connects to its SDP server (PSM 1
//! in real Bluetooth; a well-known stream port here) and asks which
//! services it offers. Records carry the profile identifier the uMiddle
//! mapper keys its USDL lookup on ("bip-camera", "hidp-mouse", …).

use std::fmt;

/// The well-known stream port of the SDP server on every device
/// (stands in for L2CAP PSM 0x0001).
pub const PSM_SDP: u16 = 1;

/// One SDP service record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceRecord {
    /// Record handle, unique per device.
    pub handle: u32,
    /// Profile identifier (`bip-camera`, `hidp-mouse`, …); maps to a
    /// USDL device type.
    pub profile: String,
    /// Human-readable service name.
    pub name: String,
    /// The stream port (PSM/RFCOMM channel analogue) the service listens
    /// on.
    pub psm: u16,
    /// Additional attributes as `(id, value)` pairs.
    pub attributes: Vec<(u16, String)>,
}

impl ServiceRecord {
    /// Creates a record.
    pub fn new(handle: u32, profile: &str, name: &str, psm: u16) -> ServiceRecord {
        ServiceRecord {
            handle,
            profile: profile.to_owned(),
            name: name.to_owned(),
            psm,
            attributes: Vec::new(),
        }
    }

    /// Adds an attribute (builder style).
    pub fn with_attribute(mut self, id: u16, value: impl Into<String>) -> ServiceRecord {
        self.attributes.push((id, value.into()));
        self
    }
}

impl fmt::Display for ServiceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sdp#{} {} ({}) psm {}",
            self.handle, self.profile, self.name, self.psm
        )
    }
}

/// SDP protocol data units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SdpPdu {
    /// Asks for all records whose profile contains the pattern (empty
    /// pattern = all records).
    SearchRequest {
        /// Transaction id echoed in the response.
        transaction: u16,
        /// Substring pattern over profile identifiers.
        pattern: String,
    },
    /// The matching records.
    SearchResponse {
        /// Transaction id from the request.
        transaction: u16,
        /// Matching records.
        records: Vec<ServiceRecord>,
    },
    /// Protocol error.
    Error {
        /// Transaction id from the request.
        transaction: u16,
        /// Error code.
        code: u16,
    },
}

const PDU_SEARCH_REQ: u8 = 0x02;
const PDU_SEARCH_RSP: u8 = 0x03;
const PDU_ERROR: u8 = 0x01;

fn put_str(out: &mut Vec<u8>, s: &str) {
    let b = s.as_bytes();
    let n = b.len().min(u16::MAX as usize);
    out.extend_from_slice(&(n as u16).to_be_bytes());
    out.extend_from_slice(&b[..n]);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u16(&mut self) -> Option<u16> {
        let b = self.take(2)?;
        Some(u16::from_be_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn str(&mut self) -> Option<String> {
        let n = self.u16()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).ok()
    }
}

impl SdpPdu {
    /// Encodes the PDU (big-endian, like real Bluetooth).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            SdpPdu::SearchRequest {
                transaction,
                pattern,
            } => {
                out.push(PDU_SEARCH_REQ);
                out.extend_from_slice(&transaction.to_be_bytes());
                put_str(&mut out, pattern);
            }
            SdpPdu::SearchResponse {
                transaction,
                records,
            } => {
                out.push(PDU_SEARCH_RSP);
                out.extend_from_slice(&transaction.to_be_bytes());
                out.extend_from_slice(&(records.len() as u16).to_be_bytes());
                for r in records {
                    out.extend_from_slice(&r.handle.to_be_bytes());
                    put_str(&mut out, &r.profile);
                    put_str(&mut out, &r.name);
                    out.extend_from_slice(&r.psm.to_be_bytes());
                    out.extend_from_slice(&(r.attributes.len() as u16).to_be_bytes());
                    for (id, v) in &r.attributes {
                        out.extend_from_slice(&id.to_be_bytes());
                        put_str(&mut out, v);
                    }
                }
            }
            SdpPdu::Error { transaction, code } => {
                out.push(PDU_ERROR);
                out.extend_from_slice(&transaction.to_be_bytes());
                out.extend_from_slice(&code.to_be_bytes());
            }
        }
        out
    }

    /// Decodes a PDU. Returns `None` on malformed input.
    pub fn decode(bytes: &[u8]) -> Option<SdpPdu> {
        let mut c = Cursor { buf: bytes, pos: 0 };
        let pdu = match c.u8()? {
            PDU_SEARCH_REQ => SdpPdu::SearchRequest {
                transaction: c.u16()?,
                pattern: c.str()?,
            },
            PDU_SEARCH_RSP => {
                let transaction = c.u16()?;
                let n = c.u16()? as usize;
                let mut records = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    let handle = c.u32()?;
                    let profile = c.str()?;
                    let name = c.str()?;
                    let psm = c.u16()?;
                    let n_attrs = c.u16()? as usize;
                    let mut attributes = Vec::with_capacity(n_attrs.min(64));
                    for _ in 0..n_attrs {
                        let id = c.u16()?;
                        let v = c.str()?;
                        attributes.push((id, v));
                    }
                    records.push(ServiceRecord {
                        handle,
                        profile,
                        name,
                        psm,
                        attributes,
                    });
                }
                SdpPdu::SearchResponse {
                    transaction,
                    records,
                }
            }
            PDU_ERROR => SdpPdu::Error {
                transaction: c.u16()?,
                code: c.u16()?,
            },
            _ => return None,
        };
        if c.pos == bytes.len() {
            Some(pdu)
        } else {
            None
        }
    }

    /// Evaluates a search pattern against a record.
    pub fn pattern_matches(pattern: &str, record: &ServiceRecord) -> bool {
        pattern.is_empty() || record.profile.contains(pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> ServiceRecord {
        ServiceRecord::new(0x10000, "bip-camera", "Pocket Camera", 9)
            .with_attribute(0x0100, "imaging")
            .with_attribute(0x0200, "jpeg")
    }

    #[test]
    fn all_pdus_round_trip() {
        let pdus = vec![
            SdpPdu::SearchRequest {
                transaction: 7,
                pattern: "bip".to_owned(),
            },
            SdpPdu::SearchResponse {
                transaction: 7,
                records: vec![sample_record()],
            },
            SdpPdu::SearchResponse {
                transaction: 8,
                records: vec![],
            },
            SdpPdu::Error {
                transaction: 9,
                code: 0x0003,
            },
        ];
        for p in pdus {
            assert_eq!(SdpPdu::decode(&p.encode()), Some(p));
        }
    }

    #[test]
    fn truncation_rejected() {
        let bytes = SdpPdu::SearchResponse {
            transaction: 1,
            records: vec![sample_record()],
        }
        .encode();
        for cut in 0..bytes.len() {
            assert!(SdpPdu::decode(&bytes[..cut]).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = SdpPdu::Error {
            transaction: 1,
            code: 2,
        }
        .encode();
        bytes.push(0xaa);
        assert!(SdpPdu::decode(&bytes).is_none());
    }

    #[test]
    fn pattern_matching() {
        let r = sample_record();
        assert!(SdpPdu::pattern_matches("", &r));
        assert!(SdpPdu::pattern_matches("bip", &r));
        assert!(SdpPdu::pattern_matches("bip-camera", &r));
        assert!(!SdpPdu::pattern_matches("hidp", &r));
    }

    #[test]
    fn decode_never_panics() {
        simnet::check_cases("sdp_decode_never_panics", 256, |_, rng| {
            let len = rng.gen_range(0usize..128);
            let bytes = rng.gen_bytes(len);
            let _ = SdpPdu::decode(&bytes);
        });
    }

    #[test]
    fn record_round_trip() {
        simnet::check_cases("sdp_record_round_trip", 256, |_, rng| {
            let handle = rng.gen_range(0u32..=u32::MAX);
            let plen = rng.gen_range(1usize..=16);
            let profile = rng.gen_string("abcdefghijklmnopqrstuvwxyz-", plen);
            let nlen = rng.gen_range(0usize..=24);
            let printable: String = (b' '..=b'~').map(char::from).collect();
            let name = rng.gen_string(&printable, nlen);
            let psm = rng.gen_range(0u16..=u16::MAX);
            let pdu = SdpPdu::SearchResponse {
                transaction: 1,
                records: vec![ServiceRecord::new(handle, &profile, &name, psm)],
            };
            assert_eq!(SdpPdu::decode(&pdu.encode()), Some(pdu));
        });
    }
}
