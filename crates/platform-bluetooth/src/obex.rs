//! OBEX — the object exchange protocol Bluetooth profiles like BIP build
//! on.
//!
//! The paper's BIP translator "implements the OBEX protocol using the
//! base-protocol support provided by the Bluetooth mapper". We model the
//! packet layer (connect / put / get with headers, chunked bodies,
//! continue responses) as a binary codec plus accumulation over streams.

use simnet::{ChunkQueue, Payload, PayloadBuilder};

/// OBEX opcodes (final-bit variants included where used).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Session setup.
    Connect,
    /// Push data (non-final packet).
    Put,
    /// Push data, final packet.
    PutFinal,
    /// Pull data.
    Get,
    /// Success, more packets follow.
    Continue,
    /// Final success.
    Success,
    /// Failure.
    BadRequest,
}

impl Opcode {
    fn to_byte(self) -> u8 {
        match self {
            Opcode::Connect => 0x80,
            Opcode::Put => 0x02,
            Opcode::PutFinal => 0x82,
            Opcode::Get => 0x83,
            Opcode::Continue => 0x90,
            Opcode::Success => 0xA0,
            Opcode::BadRequest => 0xC0,
        }
    }

    fn from_byte(b: u8) -> Option<Opcode> {
        Some(match b {
            0x80 => Opcode::Connect,
            0x02 => Opcode::Put,
            0x82 => Opcode::PutFinal,
            0x83 => Opcode::Get,
            0x90 => Opcode::Continue,
            0xA0 => Opcode::Success,
            0xC0 => Opcode::BadRequest,
            _ => return None,
        })
    }
}

/// OBEX header identifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Header {
    /// Object name (UTF-8 here; real OBEX uses UTF-16).
    Name(String),
    /// MIME type of the object.
    Type(String),
    /// Total length of the object being transferred.
    Length(u32),
    /// A body chunk (more follow). Shared [`Payload`]: chunking an
    /// object into PUT packets slices one buffer instead of copying.
    Body(Payload),
    /// The final body chunk.
    EndOfBody(Payload),
    /// Application-specific parameters.
    AppParams(Payload),
}

const HI_NAME: u8 = 0x01;
const HI_TYPE: u8 = 0x42;
const HI_LENGTH: u8 = 0xC3;
const HI_BODY: u8 = 0x48;
const HI_END_OF_BODY: u8 = 0x49;
const HI_APP_PARAMS: u8 = 0x4C;

/// One OBEX packet: opcode plus headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObexPacket {
    /// The operation or response code.
    pub opcode: Opcode,
    /// Headers in order.
    pub headers: Vec<Header>,
}

impl ObexPacket {
    /// Creates a packet.
    pub fn new(opcode: Opcode) -> ObexPacket {
        ObexPacket {
            opcode,
            headers: Vec::new(),
        }
    }

    /// Adds a header (builder style).
    pub fn with_header(mut self, header: Header) -> ObexPacket {
        self.headers.push(header);
        self
    }

    /// First `Name` header, if any.
    pub fn name(&self) -> Option<&str> {
        self.headers.iter().find_map(|h| match h {
            Header::Name(n) => Some(n.as_str()),
            _ => None,
        })
    }

    /// First `Type` header, if any.
    pub fn mime_type(&self) -> Option<&str> {
        self.headers.iter().find_map(|h| match h {
            Header::Type(t) => Some(t.as_str()),
            _ => None,
        })
    }

    /// Concatenated body bytes (Body + EndOfBody headers). When the
    /// packet carries a single body header — the common case — this is
    /// an O(1) clone of its shared buffer.
    pub fn body(&self) -> Payload {
        let mut chunks = self.headers.iter().filter_map(|h| match h {
            Header::Body(b) | Header::EndOfBody(b) => Some(b),
            _ => None,
        });
        let Some(first) = chunks.next() else {
            return Payload::new();
        };
        let Some(second) = chunks.next() else {
            return first.clone();
        };
        let mut out = Vec::with_capacity(first.len() + second.len());
        out.extend_from_slice(first);
        out.extend_from_slice(second);
        for b in chunks {
            out.extend_from_slice(b);
        }
        Payload::from_vec(out)
    }

    /// Returns `true` if the packet carries an `EndOfBody` header.
    pub fn is_final_body(&self) -> bool {
        self.headers
            .iter()
            .any(|h| matches!(h, Header::EndOfBody(_)))
    }

    /// Encodes the packet: `opcode (1) | length (2, BE) | headers`.
    /// Everything goes into one buffer: the length field is written as a
    /// placeholder and patched once the headers are in, so there is no
    /// second assemble-then-copy pass.
    pub fn encode(&self) -> Payload {
        let mut out = PayloadBuilder::new();
        out.push(self.opcode.to_byte());
        out.extend_from_slice(&[0, 0]); // length placeholder, patched below
        for h in &self.headers {
            match h {
                Header::Name(s) => put_bytes(&mut out, HI_NAME, s.as_bytes()),
                Header::Type(s) => put_bytes(&mut out, HI_TYPE, s.as_bytes()),
                Header::Length(n) => {
                    out.push(HI_LENGTH);
                    out.extend_from_slice(&n.to_be_bytes());
                }
                Header::Body(b) => put_bytes(&mut out, HI_BODY, b),
                Header::EndOfBody(b) => put_bytes(&mut out, HI_END_OF_BODY, b),
                Header::AppParams(b) => put_bytes(&mut out, HI_APP_PARAMS, b),
            }
        }
        let total = out.len() as u16;
        let be = total.to_be_bytes();
        out.patch_u8(1, be[0]);
        out.patch_u8(2, be[1]);
        out.freeze()
    }

    /// Decodes one packet from the front of a shared buffer; body
    /// headers come back as zero-copy sub-slices of `buf`.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation on bad packets.
    pub fn decode_payload(buf: &Payload) -> Result<Option<(ObexPacket, usize)>, String> {
        Self::decode_inner(buf, Some(buf))
    }

    /// Decodes one packet from the front of `buf`. Returns the packet and
    /// bytes consumed, `Ok(None)` if more bytes are needed, or `Err` on a
    /// malformed packet.
    pub fn decode(buf: &[u8]) -> Result<Option<(ObexPacket, usize)>, String> {
        Self::decode_inner(buf, None)
    }

    fn decode_inner(
        buf: &[u8],
        backing: Option<&Payload>,
    ) -> Result<Option<(ObexPacket, usize)>, String> {
        if buf.len() < 3 {
            return Ok(None);
        }
        let opcode =
            Opcode::from_byte(buf[0]).ok_or_else(|| format!("unknown opcode {:#x}", buf[0]))?;
        let total = u16::from_be_bytes([buf[1], buf[2]]) as usize;
        if total < 3 {
            return Err("packet length too small".to_owned());
        }
        if buf.len() < total {
            return Ok(None);
        }
        let mut headers = Vec::new();
        let mut pos = 3;
        while pos < total {
            let hi = buf[pos];
            pos += 1;
            match hi {
                HI_LENGTH => {
                    if pos + 4 > total {
                        return Err("truncated length header".to_owned());
                    }
                    headers.push(Header::Length(u32::from_be_bytes([
                        buf[pos],
                        buf[pos + 1],
                        buf[pos + 2],
                        buf[pos + 3],
                    ])));
                    pos += 4;
                }
                HI_NAME | HI_TYPE | HI_BODY | HI_END_OF_BODY | HI_APP_PARAMS => {
                    if pos + 2 > total {
                        return Err("truncated header length".to_owned());
                    }
                    let hlen = u16::from_be_bytes([buf[pos], buf[pos + 1]]) as usize;
                    pos += 2;
                    if hlen < 3 || pos + hlen - 3 > total {
                        return Err("bad header length".to_owned());
                    }
                    let start = pos;
                    let end = pos + hlen - 3;
                    pos = end;
                    let bytes_of = |range: &[u8]| match backing {
                        Some(p) => p.slice(start..end),
                        None => Payload::copy_from_slice(range),
                    };
                    headers.push(match hi {
                        HI_NAME => Header::Name(
                            String::from_utf8(buf[start..end].to_vec())
                                .map_err(|_| "bad utf-8 name".to_owned())?,
                        ),
                        HI_TYPE => Header::Type(
                            String::from_utf8(buf[start..end].to_vec())
                                .map_err(|_| "bad utf-8 type".to_owned())?,
                        ),
                        HI_BODY => Header::Body(bytes_of(&buf[start..end])),
                        HI_END_OF_BODY => Header::EndOfBody(bytes_of(&buf[start..end])),
                        _ => Header::AppParams(bytes_of(&buf[start..end])),
                    });
                }
                other => return Err(format!("unknown header id {other:#x}")),
            }
        }
        Ok(Some((ObexPacket { opcode, headers }, total)))
    }
}

fn put_bytes(out: &mut PayloadBuilder, hi: u8, data: &[u8]) {
    out.push(hi);
    out.extend_from_slice(&((data.len() + 3) as u16).to_be_bytes());
    out.extend_from_slice(data);
}

/// Accumulates stream bytes and yields complete OBEX packets.
///
/// Built on [`ChunkQueue`]: arriving stream chunks queue without
/// concatenation and each packet is extracted in O(packet) time.
#[derive(Debug, Default)]
pub struct ObexAccumulator {
    buf: ChunkQueue,
}

impl ObexAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> ObexAccumulator {
        ObexAccumulator::default()
    }

    /// Feeds received bytes (one copy into a fresh chunk).
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.push_slice(bytes);
    }

    /// Feeds a shared chunk without copying — the path stream handlers
    /// use with `StreamEvent::Data` payloads.
    pub fn push_payload(&mut self, chunk: Payload) {
        self.buf.push(chunk);
    }

    /// Pops the next complete packet, if any.
    ///
    /// # Errors
    ///
    /// Returns a description on malformed packets; the buffered bytes are
    /// discarded so the session can be aborted cleanly.
    #[allow(clippy::should_implement_trait)] // framer convention, not an Iterator
    pub fn next(&mut self) -> Result<Option<ObexPacket>, String> {
        if self.buf.len() < 3 {
            return Ok(None);
        }
        let mut hdr = [0u8; 3];
        self.buf.peek_into(&mut hdr);
        if Opcode::from_byte(hdr[0]).is_none() {
            self.buf.clear();
            return Err(format!("unknown opcode {:#x}", hdr[0]));
        }
        let total = u16::from_be_bytes([hdr[1], hdr[2]]) as usize;
        if total < 3 {
            self.buf.clear();
            return Err("packet length too small".to_owned());
        }
        if self.buf.len() < total {
            return Ok(None);
        }
        let packet = self.buf.take(total);
        match ObexPacket::decode_payload(&packet) {
            Ok(Some((pkt, _used))) => Ok(Some(pkt)),
            Ok(None) => Ok(None),
            Err(e) => {
                self.buf.clear();
                Err(e)
            }
        }
    }
}

/// Splits an object into OBEX PUT packets of at most `chunk` body bytes.
/// Passing a [`Payload`] shares the object buffer: every packet's body is
/// a zero-copy slice of it.
pub fn put_packets(
    name: &str,
    mime: &str,
    data: impl Into<Payload>,
    chunk: usize,
) -> Vec<ObexPacket> {
    let data = data.into();
    let chunk = chunk.max(1);
    let mut packets = Vec::new();
    let n = data.len();
    let mut offset = 0;
    let mut first = true;
    loop {
        let end = (offset + chunk).min(n);
        let last = end == n;
        let mut pkt = ObexPacket::new(if last { Opcode::PutFinal } else { Opcode::Put });
        if first {
            pkt = pkt
                .with_header(Header::Name(name.to_owned()))
                .with_header(Header::Type(mime.to_owned()))
                .with_header(Header::Length(n as u32));
            first = false;
        }
        let body = data.slice(offset..end);
        pkt = pkt.with_header(if last {
            Header::EndOfBody(body)
        } else {
            Header::Body(body)
        });
        packets.push(pkt);
        if last {
            break;
        }
        offset = end;
    }
    packets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_round_trip() {
        let pkt = ObexPacket::new(Opcode::PutFinal)
            .with_header(Header::Name("img01.jpg".to_owned()))
            .with_header(Header::Type("image/jpeg".to_owned()))
            .with_header(Header::Length(5))
            .with_header(Header::EndOfBody(vec![1, 2, 3, 4, 5].into()));
        let bytes = pkt.encode();
        let (back, used) = ObexPacket::decode(&bytes).unwrap().unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, pkt);
        assert_eq!(back.name(), Some("img01.jpg"));
        assert_eq!(back.mime_type(), Some("image/jpeg"));
        assert_eq!(back.body(), vec![1, 2, 3, 4, 5]);
        assert!(back.is_final_body());
    }

    #[test]
    fn partial_packets_wait() {
        let bytes = ObexPacket::new(Opcode::Connect).encode();
        let mut acc = ObexAccumulator::new();
        acc.push(&bytes[..2]);
        assert_eq!(acc.next().unwrap(), None);
        acc.push(&bytes[2..]);
        assert_eq!(acc.next().unwrap().unwrap().opcode, Opcode::Connect);
    }

    #[test]
    fn put_packets_reassemble() {
        let data: Vec<u8> = (0..=255).cycle().take(2000).map(|b: u16| b as u8).collect();
        let packets = put_packets("x.bin", "application/octet-stream", &data[..], 512);
        assert_eq!(packets.len(), 4);
        assert_eq!(packets[0].name(), Some("x.bin"));
        assert!(packets.last().unwrap().is_final_body());
        let mut got = Vec::new();
        for p in &packets {
            got.extend(p.body());
        }
        assert_eq!(got, data);
    }

    #[test]
    fn empty_object_is_single_final_packet() {
        let packets = put_packets("empty", "text/plain", &[], 512);
        assert_eq!(packets.len(), 1);
        assert!(packets[0].is_final_body());
        assert!(packets[0].body().is_empty());
    }

    #[test]
    fn malformed_packets_error_not_panic() {
        assert!(ObexPacket::decode(&[0xFF, 0x00, 0x03]).is_err());
        assert!(ObexPacket::decode(&[0x80, 0x00, 0x02]).is_err());
        // Bad header id inside a well-formed envelope.
        assert!(ObexPacket::decode(&[0x80, 0x00, 0x04, 0x77]).is_err());
    }

    #[test]
    fn decode_never_panics() {
        simnet::check_cases("obex_decode_never_panics", 256, |_, rng| {
            let len = rng.gen_range(0usize..128);
            let bytes = rng.gen_bytes(len);
            let _ = ObexPacket::decode(&bytes);
        });
    }

    #[test]
    fn chunking_preserves_data() {
        simnet::check_cases("obex_chunking_preserves_data", 256, |_, rng| {
            let len = rng.gen_range(0usize..4096);
            let data = rng.gen_bytes(len);
            let chunk = rng.gen_range(1usize..1024);
            let packets = put_packets("n", "t/t", &data[..], chunk);
            let mut got = Vec::new();
            for p in &packets {
                got.extend(p.body());
            }
            assert_eq!(got, data);
            assert!(packets.last().unwrap().is_final_body());
        });
    }
}
