//! CPU/latency calibration for the simulated Bluetooth stack.
//!
//! The paper used BlueZ on Linux with real hardware; inquiry scan
//! windows, SDP processing and per-packet costs below are chosen to land
//! the HIDP mouse mapping rate near the paper's ~5 instantiations/second
//! (Figure 10) and the per-click translation near 23 ms (§5.2).

use simnet::SimDuration;

/// Lower bound of a device's inquiry-scan response delay.
pub const INQUIRY_RESPONSE_MIN: SimDuration = SimDuration::from_millis(20);

/// Upper bound of a device's inquiry-scan response delay.
pub const INQUIRY_RESPONSE_MAX: SimDuration = SimDuration::from_millis(90);

/// Device-side cost of serving one SDP search.
pub const SDP_PROCESS: SimDuration = SimDuration::from_millis(15);

/// Cost of parsing or building one SDP PDU on the host.
pub const SDP_CODEC: SimDuration = SimDuration::from_millis(4);

/// Per-OBEX-packet processing cost (session state machine + headers).
pub const OBEX_PACKET_PROCESS: SimDuration = SimDuration::from_millis(2);

/// Device-side cost of producing one HID report.
pub const HIDP_REPORT_COST: SimDuration = SimDuration::from_micros(400);

/// Baseband connection (paging) setup time for a new L2CAP-equivalent
/// stream to a device.
pub const PAGE_LATENCY: SimDuration = SimDuration::from_millis(40);
