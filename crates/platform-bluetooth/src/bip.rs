//! BIP — the Basic Imaging Profile over OBEX: the paper's Bluetooth
//! digital camera (and, with a different USDL document, a photo printer).
//!
//! The camera stores JPEG images and serves OBEX GET `ImagePull`
//! requests; a PUT named `RemoteShutter` triggers a capture. The printer
//! accepts OBEX PUT `ImagePush` transfers and "prints" them (a counter).

use simnet::{Ctx, Datagram, Payload, Process, StreamEvent, StreamId};
use std::collections::HashMap;

use crate::calib;
use crate::device::BtDeviceCore;
use crate::obex::{put_packets, Header, ObexAccumulator, ObexPacket, Opcode};
use crate::sdp::ServiceRecord;

/// The OBEX stream port (stands in for the BIP RFCOMM channel).
pub const PSM_OBEX: u16 = 9;

/// Class-of-device bits for an imaging device.
pub const COD_IMAGING: u32 = 0x0680;

/// OBEX body chunk size (fits the piconet MTU with headers to spare).
pub const OBEX_CHUNK: usize = 512;

const TIMER_INQUIRY_BASE: u64 = 1000;

/// A stored image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredImage {
    /// Image name (`img0001.jpg`).
    pub name: String,
    /// JPEG bytes (synthetic), shared so GET chunking never copies.
    pub data: Payload,
}

/// Generates a deterministic synthetic JPEG-ish payload of `size` bytes.
pub fn synthetic_jpeg(seed: u8, size: usize) -> Vec<u8> {
    let mut data = Vec::with_capacity(size);
    // JPEG SOI marker then pseudo-random payload.
    data.extend_from_slice(&[0xFF, 0xD8]);
    let mut state = (seed as u32).wrapping_mul(2_654_435_761).wrapping_add(1);
    while data.len() < size.saturating_sub(2) {
        state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        data.push((state >> 24) as u8);
    }
    data.extend_from_slice(&[0xFF, 0xD9]);
    data
}

/// The simulated BIP camera.
#[derive(Debug)]
pub struct BipCamera {
    core: BtDeviceCore,
    images: Vec<StoredImage>,
    sessions: HashMap<StreamId, ObexAccumulator>,
    captures: u32,
}

impl BipCamera {
    /// Creates a camera preloaded with `image_count` synthetic images of
    /// `image_size` bytes each.
    pub fn new(name: &str, image_count: usize, image_size: usize) -> BipCamera {
        let records = vec![ServiceRecord::new(0x10002, "bip-camera", name, PSM_OBEX)
            .with_attribute(0x0100, "imaging")
            .with_attribute(0x0200, "image/jpeg")];
        let images = (0..image_count)
            .map(|i| StoredImage {
                name: format!("img{i:04}.jpg"),
                data: synthetic_jpeg(i as u8, image_size).into(),
            })
            .collect();
        BipCamera {
            core: BtDeviceCore::new(name, COD_IMAGING, records, TIMER_INQUIRY_BASE),
            images,
            sessions: HashMap::new(),
            captures: 0,
        }
    }

    /// Number of stored images.
    pub fn image_count(&self) -> usize {
        self.images.len()
    }

    fn handle_packet(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, pkt: ObexPacket) {
        ctx.busy(calib::OBEX_PACKET_PROCESS);
        match pkt.opcode {
            Opcode::Connect => {
                let _ = ctx.stream_send(stream, ObexPacket::new(Opcode::Success).encode());
            }
            Opcode::Get => {
                // ImagePull: find the requested image (or the first).
                let requested = pkt.name().map(str::to_owned);
                let image = match &requested {
                    Some(name) => self.images.iter().find(|i| &i.name == name),
                    None => self.images.first(),
                };
                match image {
                    Some(img) => {
                        ctx.bump("bt.bip_pulls", 1);
                        let total = img.data.len();
                        // O(1) shared clone; every chunk below is a
                        // zero-copy slice of the stored image.
                        let data = img.data.clone();
                        let n = total.div_ceil(OBEX_CHUNK).max(1);
                        for i in 0..n {
                            let last = i + 1 == n;
                            let chunk =
                                data.slice(i * OBEX_CHUNK..((i + 1) * OBEX_CHUNK).min(total));
                            let mut resp = ObexPacket::new(if last {
                                Opcode::Success
                            } else {
                                Opcode::Continue
                            });
                            if i == 0 {
                                resp = resp
                                    .with_header(Header::Name(img.name.clone()))
                                    .with_header(Header::Type("image/jpeg".to_owned()))
                                    .with_header(Header::Length(total as u32));
                            }
                            resp = resp.with_header(if last {
                                Header::EndOfBody(chunk)
                            } else {
                                Header::Body(chunk)
                            });
                            ctx.busy(calib::OBEX_PACKET_PROCESS);
                            let _ = ctx.stream_send(stream, resp.encode());
                        }
                    }
                    None => {
                        let _ =
                            ctx.stream_send(stream, ObexPacket::new(Opcode::BadRequest).encode());
                    }
                }
            }
            Opcode::Put | Opcode::PutFinal
                // RemoteShutter: a capture command.
                if pkt.name() == Some("RemoteShutter") => {
                    if pkt.opcode == Opcode::PutFinal {
                        self.captures += 1;
                        let idx = self.images.len();
                        self.images.push(StoredImage {
                            name: format!("img{idx:04}.jpg"),
                            data: synthetic_jpeg(idx as u8, 16 * 1024).into(),
                        });
                        ctx.bump("bt.bip_captures", 1);
                        let _ =
                            ctx.stream_send(stream, ObexPacket::new(Opcode::Success).encode());
                    } else {
                        let _ =
                            ctx.stream_send(stream, ObexPacket::new(Opcode::Continue).encode());
                    }
                }
            _ => {
                let _ = ctx.stream_send(stream, ObexPacket::new(Opcode::BadRequest).encode());
            }
        }
    }
}

impl Process for BipCamera {
    fn name(&self) -> &str {
        "bip-camera"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.core.start(ctx);
        ctx.listen(PSM_OBEX).expect("obex psm free");
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        self.core.handle_datagram(ctx, &dgram);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        self.core.handle_timer(ctx, token);
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
        if self.core.handle_sdp_stream(ctx, stream, &event) {
            return;
        }
        match event {
            StreamEvent::Accepted { local_port, .. } if local_port == PSM_OBEX => {
                self.sessions.insert(stream, ObexAccumulator::new());
            }
            StreamEvent::Data(data) => {
                let Some(acc) = self.sessions.get_mut(&stream) else {
                    return;
                };
                acc.push_payload(data);
                loop {
                    match self
                        .sessions
                        .get_mut(&stream)
                        .and_then(|a| a.next().transpose())
                    {
                        Some(Ok(pkt)) => self.handle_packet(ctx, stream, pkt),
                        Some(Err(_)) => {
                            ctx.bump("bt.obex_errors", 1);
                            ctx.stream_close(stream);
                            break;
                        }
                        None => break,
                    }
                }
            }
            StreamEvent::Closed | StreamEvent::ConnectFailed => {
                self.sessions.remove(&stream);
            }
            _ => {}
        }
    }
}

/// The simulated BIP photo printer: accepts `ImagePush` PUTs.
#[derive(Debug)]
pub struct BipPrinter {
    core: BtDeviceCore,
    sessions: HashMap<StreamId, (ObexAccumulator, Vec<u8>)>,
    printed: u32,
}

impl BipPrinter {
    /// Creates a printer.
    pub fn new(name: &str) -> BipPrinter {
        let records = vec![ServiceRecord::new(0x10003, "bip-printer", name, PSM_OBEX)
            .with_attribute(0x0100, "imaging")];
        BipPrinter {
            core: BtDeviceCore::new(name, COD_IMAGING, records, TIMER_INQUIRY_BASE),
            sessions: HashMap::new(),
            printed: 0,
        }
    }

    /// Pages printed so far.
    pub fn printed(&self) -> u32 {
        self.printed
    }
}

impl Process for BipPrinter {
    fn name(&self) -> &str {
        "bip-printer"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.core.start(ctx);
        ctx.listen(PSM_OBEX).expect("obex psm free");
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        self.core.handle_datagram(ctx, &dgram);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        self.core.handle_timer(ctx, token);
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
        if self.core.handle_sdp_stream(ctx, stream, &event) {
            return;
        }
        match event {
            StreamEvent::Accepted { local_port, .. } if local_port == PSM_OBEX => {
                self.sessions
                    .insert(stream, (ObexAccumulator::new(), Vec::new()));
            }
            StreamEvent::Data(data) => {
                let Some((acc, _)) = self.sessions.get_mut(&stream) else {
                    return;
                };
                acc.push_payload(data);
                loop {
                    let pkt = match self
                        .sessions
                        .get_mut(&stream)
                        .and_then(|(a, _)| a.next().transpose())
                    {
                        Some(Ok(pkt)) => pkt,
                        Some(Err(_)) => {
                            ctx.stream_close(stream);
                            break;
                        }
                        None => break,
                    };
                    ctx.busy(calib::OBEX_PACKET_PROCESS);
                    match pkt.opcode {
                        Opcode::Connect => {
                            let _ =
                                ctx.stream_send(stream, ObexPacket::new(Opcode::Success).encode());
                        }
                        Opcode::Put => {
                            if let Some((_, body)) = self.sessions.get_mut(&stream) {
                                body.extend_from_slice(&pkt.body());
                            }
                            let _ =
                                ctx.stream_send(stream, ObexPacket::new(Opcode::Continue).encode());
                        }
                        Opcode::PutFinal => {
                            let total = if let Some((_, body)) = self.sessions.get_mut(&stream) {
                                body.extend_from_slice(&pkt.body());
                                let n = body.len();
                                body.clear();
                                n
                            } else {
                                0
                            };
                            self.printed += 1;
                            ctx.bump("bt.bip_printed", 1);
                            ctx.bump("bt.bip_printed_bytes", total as u64);
                            let _ =
                                ctx.stream_send(stream, ObexPacket::new(Opcode::Success).encode());
                        }
                        _ => {
                            let _ = ctx
                                .stream_send(stream, ObexPacket::new(Opcode::BadRequest).encode());
                        }
                    }
                }
            }
            StreamEvent::Closed | StreamEvent::ConnectFailed => {
                self.sessions.remove(&stream);
            }
            _ => {}
        }
    }
}

/// Client-side helper: pulls an image over an established OBEX stream by
/// accumulating GET response packets. Returns the full object once the
/// final packet arrives.
#[derive(Debug, Default)]
pub struct ObexGetClient {
    acc: ObexAccumulator,
    body: Vec<u8>,
    name: Option<String>,
}

impl ObexGetClient {
    /// Creates an idle client.
    pub fn new() -> ObexGetClient {
        ObexGetClient::default()
    }

    /// Feeds response bytes; returns `Some((name, data))` when complete.
    ///
    /// # Errors
    ///
    /// Returns an error description on protocol violations.
    #[allow(clippy::type_complexity)]
    pub fn push(&mut self, bytes: &[u8]) -> Result<Option<(Option<String>, Vec<u8>)>, String> {
        self.acc.push(bytes);
        self.drain()
    }

    /// Feeds a shared response chunk without copying.
    ///
    /// # Errors
    ///
    /// Returns an error description on protocol violations.
    #[allow(clippy::type_complexity)]
    pub fn push_payload(
        &mut self,
        chunk: Payload,
    ) -> Result<Option<(Option<String>, Vec<u8>)>, String> {
        self.acc.push_payload(chunk);
        self.drain()
    }

    #[allow(clippy::type_complexity)]
    fn drain(&mut self) -> Result<Option<(Option<String>, Vec<u8>)>, String> {
        while let Some(pkt) = self.acc.next()? {
            if self.name.is_none() {
                self.name = pkt.name().map(str::to_owned);
            }
            match pkt.opcode {
                Opcode::Continue => self.body.extend_from_slice(&pkt.body()),
                Opcode::Success => {
                    self.body.extend_from_slice(&pkt.body());
                    let data = std::mem::take(&mut self.body);
                    return Ok(Some((self.name.take(), data)));
                }
                Opcode::BadRequest => return Err("device rejected the request".to_owned()),
                other => return Err(format!("unexpected {other:?} during GET")),
            }
        }
        Ok(None)
    }
}

/// Builds the OBEX request bytes for an ImagePull GET.
pub fn image_pull_request(name: Option<&str>) -> Payload {
    let mut pkt = ObexPacket::new(Opcode::Get).with_header(Header::Type("x-bt/img-img".to_owned()));
    if let Some(n) = name {
        pkt = pkt.with_header(Header::Name(n.to_owned()));
    }
    pkt.encode()
}

/// Builds the OBEX request packets for an ImagePush PUT. A [`Payload`]
/// argument shares the image buffer across every packet.
pub fn image_push_packets(name: &str, data: impl Into<Payload>) -> Vec<ObexPacket> {
    put_packets(name, "image/jpeg", data, OBEX_CHUNK)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{Addr, SegmentConfig, SimTime, World};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn synthetic_jpeg_has_markers() {
        let img = synthetic_jpeg(1, 1024);
        assert_eq!(&img[..2], &[0xFF, 0xD8]);
        assert_eq!(&img[img.len() - 2..], &[0xFF, 0xD9]);
        assert_eq!(synthetic_jpeg(1, 1024), synthetic_jpeg(1, 1024));
        assert_ne!(synthetic_jpeg(1, 1024), synthetic_jpeg(2, 1024));
    }

    /// A host that pulls an image from the camera over the piconet.
    struct Puller {
        camera: Addr,
        client: ObexGetClient,
        #[allow(clippy::type_complexity)]
        got: Rc<RefCell<Option<(Option<String>, Vec<u8>)>>>,
    }
    impl simnet::Process for Puller {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.connect(self.camera).unwrap();
        }
        fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
            match event {
                StreamEvent::Connected => {
                    let _ = ctx.stream_send(stream, image_pull_request(None));
                }
                StreamEvent::Data(data) => {
                    if let Ok(Some(result)) = self.client.push(&data) {
                        *self.got.borrow_mut() = Some(result);
                        ctx.stream_close(stream);
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn image_pull_over_piconet() {
        let mut world = World::new(21);
        let pico = world.add_segment(SegmentConfig::bluetooth_piconet());
        let cam_node = world.add_node("camera");
        let host_node = world.add_node("host");
        world.attach(cam_node, pico).unwrap();
        world.attach(host_node, pico).unwrap();
        let camera = BipCamera::new("Pocket Camera", 2, 20_000);
        assert_eq!(camera.image_count(), 2);
        world.add_process(cam_node, Box::new(camera));
        let got = Rc::new(RefCell::new(None));
        world.add_process(
            host_node,
            Box::new(Puller {
                camera: Addr::new(cam_node, PSM_OBEX),
                client: ObexGetClient::new(),
                got: Rc::clone(&got),
            }),
        );
        world.run_until(SimTime::from_secs(10));
        let got = got.borrow();
        let (name, data) = got.as_ref().expect("image pulled");
        assert_eq!(name.as_deref(), Some("img0000.jpg"));
        assert_eq!(data, &synthetic_jpeg(0, 20_000));
    }

    /// A host that pushes an image to the printer.
    struct Pusher {
        printer: Addr,
        acc: ObexAccumulator,
        done: Rc<RefCell<bool>>,
    }
    impl simnet::Process for Pusher {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.connect(self.printer).unwrap();
        }
        fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
            match event {
                StreamEvent::Connected => {
                    for pkt in image_push_packets("photo.jpg", synthetic_jpeg(9, 5000)) {
                        let _ = ctx.stream_send(stream, pkt.encode());
                    }
                }
                StreamEvent::Data(data) => {
                    self.acc.push(&data);
                    while let Ok(Some(pkt)) = self.acc.next() {
                        if pkt.opcode == Opcode::Success {
                            *self.done.borrow_mut() = true;
                            ctx.stream_close(stream);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn image_push_to_printer() {
        let mut world = World::new(22);
        let pico = world.add_segment(SegmentConfig::bluetooth_piconet());
        let p_node = world.add_node("printer");
        let host_node = world.add_node("host");
        world.attach(p_node, pico).unwrap();
        world.attach(host_node, pico).unwrap();
        world.add_process(p_node, Box::new(BipPrinter::new("Photo Printer")));
        let done = Rc::new(RefCell::new(false));
        world.add_process(
            host_node,
            Box::new(Pusher {
                printer: Addr::new(p_node, PSM_OBEX),
                acc: ObexAccumulator::new(),
                done: Rc::clone(&done),
            }),
        );
        world.run_until(SimTime::from_secs(10));
        assert!(*done.borrow(), "printer acknowledged the push");
    }
}
