//! HIDP — the Human Interface Device profile: the paper's Bluetooth
//! mouse.
//!
//! A host opens the interrupt channel (a stream on [`PSM_HID`]); the
//! device then pushes binary input reports: button reports and motion
//! reports. §5.2 benchmarks the uMiddle translator receiving "mouse click
//! signals a hundred times from the mouse".

use simnet::{Ctx, Datagram, Process, SimDuration, StreamEvent, StreamId};

use crate::calib;
use crate::device::BtDeviceCore;
use crate::sdp::ServiceRecord;

/// The interrupt-channel stream port (stands in for L2CAP PSM 0x0013).
pub const PSM_HID: u16 = 19;

/// Class-of-device bits for a mouse.
pub const COD_MOUSE: u32 = 0x2580;

/// One HID input report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HidReport {
    /// Button state change: a bitmask of pressed buttons.
    Buttons(u8),
    /// Relative motion.
    Motion {
        /// Horizontal delta.
        dx: i8,
        /// Vertical delta.
        dy: i8,
    },
}

impl HidReport {
    /// Encodes the report (`0xA1` DATA | report id | payload).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            HidReport::Buttons(mask) => vec![0xA1, 0x01, *mask],
            HidReport::Motion { dx, dy } => vec![0xA1, 0x02, *dx as u8, *dy as u8],
        }
    }

    /// Decodes one report from the front of a buffer; returns the report
    /// and bytes consumed, or `None` if more bytes are needed / invalid.
    pub fn decode(buf: &[u8]) -> Option<(HidReport, usize)> {
        if buf.len() < 3 || buf[0] != 0xA1 {
            return None;
        }
        match buf[1] {
            0x01 => Some((HidReport::Buttons(buf[2]), 3)),
            0x02 if buf.len() >= 4 => Some((
                HidReport::Motion {
                    dx: buf[2] as i8,
                    dy: buf[3] as i8,
                },
                4,
            )),
            _ => None,
        }
    }
}

/// Accumulates stream bytes into reports.
#[derive(Debug, Default)]
pub struct ReportAccumulator {
    buf: Vec<u8>,
}

impl ReportAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> ReportAccumulator {
        ReportAccumulator::default()
    }

    /// Feeds bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete report. Skips garbage bytes until a report
    /// header aligns (robustness over a byte stream).
    #[allow(clippy::should_implement_trait)] // framer convention, not an Iterator
    pub fn next(&mut self) -> Option<HidReport> {
        while !self.buf.is_empty() {
            if let Some((report, used)) = HidReport::decode(&self.buf) {
                self.buf.drain(..used);
                return Some(report);
            }
            if self.buf.len() < 4 && self.buf[0] == 0xA1 {
                return None; // likely a partial report
            }
            self.buf.remove(0);
        }
        None
    }
}

/// Behaviour configuration for the simulated mouse.
#[derive(Debug, Clone, PartialEq)]
pub struct MouseConfig {
    /// Device name in inquiry responses.
    pub name: String,
    /// Interval between click (press+release) pairs, if the mouse
    /// auto-clicks.
    pub click_interval: Option<SimDuration>,
    /// Interval between motion reports, if the mouse auto-moves.
    pub motion_interval: Option<SimDuration>,
    /// Stop after this many clicks (0 = unlimited).
    pub click_limit: u32,
}

impl Default for MouseConfig {
    fn default() -> MouseConfig {
        MouseConfig {
            name: "HIDP Mouse".to_owned(),
            click_interval: Some(SimDuration::from_millis(200)),
            motion_interval: None,
            click_limit: 0,
        }
    }
}

const TIMER_CLICK: u64 = 1;
const TIMER_MOTION: u64 = 2;
const TIMER_INQUIRY_BASE: u64 = 1000;

/// The simulated HIDP mouse device.
#[derive(Debug)]
pub struct HidpMouse {
    core: BtDeviceCore,
    config: MouseConfig,
    host: Option<StreamId>,
    clicks_sent: u32,
    pressed: bool,
}

impl HidpMouse {
    /// Creates a mouse.
    pub fn new(config: MouseConfig) -> HidpMouse {
        let records = vec![
            ServiceRecord::new(0x10001, "hidp-mouse", &config.name, PSM_HID)
                .with_attribute(0x0100, "hid"),
        ];
        HidpMouse {
            core: BtDeviceCore::new(&config.name, COD_MOUSE, records, TIMER_INQUIRY_BASE),
            config,
            host: None,
            clicks_sent: 0,
            pressed: false,
        }
    }

    /// Clicks delivered so far.
    pub fn clicks_sent(&self) -> u32 {
        self.clicks_sent
    }

    fn send_report(&mut self, ctx: &mut Ctx<'_>, report: HidReport) {
        let Some(stream) = self.host else { return };
        ctx.busy(calib::HIDP_REPORT_COST);
        if ctx.stream_send(stream, report.encode()).is_err() {
            self.host = None;
        } else {
            ctx.bump("bt.hid_reports", 1);
        }
    }
}

impl Process for HidpMouse {
    fn name(&self) -> &str {
        "hidp-mouse"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.core.start(ctx);
        ctx.listen(PSM_HID).expect("hid psm free");
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        self.core.handle_datagram(ctx, &dgram);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.core.handle_timer(ctx, token) {
            return;
        }
        match token {
            TIMER_CLICK => {
                if self.host.is_some() {
                    if self.pressed {
                        self.send_report(ctx, HidReport::Buttons(0x00));
                        self.pressed = false;
                        self.clicks_sent += 1;
                    } else {
                        self.send_report(ctx, HidReport::Buttons(0x01));
                        self.pressed = true;
                    }
                }
                let done =
                    self.config.click_limit > 0 && self.clicks_sent >= self.config.click_limit;
                if let (Some(interval), false) = (self.config.click_interval, done) {
                    // A press/release pair per interval: half interval each.
                    ctx.set_timer(interval / 2, TIMER_CLICK);
                }
            }
            TIMER_MOTION => {
                let (dx, dy) = {
                    let rng = ctx.rng();
                    (rng.gen_range(-5i8..=5), rng.gen_range(-5i8..=5))
                };
                self.send_report(ctx, HidReport::Motion { dx, dy });
                if let Some(interval) = self.config.motion_interval {
                    ctx.set_timer(interval, TIMER_MOTION);
                }
            }
            _ => {}
        }
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
        if self.core.handle_sdp_stream(ctx, stream, &event) {
            return;
        }
        match event {
            StreamEvent::Accepted { local_port, .. } if local_port == PSM_HID => {
                self.host = Some(stream);
                // Start pushing reports once a host attaches.
                if let Some(interval) = self.config.click_interval {
                    ctx.set_timer(interval / 2, TIMER_CLICK);
                }
                if let Some(interval) = self.config.motion_interval {
                    ctx.set_timer(interval, TIMER_MOTION);
                }
            }
            StreamEvent::Closed | StreamEvent::ConnectFailed if self.host == Some(stream) => {
                self.host = None;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_round_trip() {
        for r in [
            HidReport::Buttons(0x01),
            HidReport::Buttons(0x00),
            HidReport::Motion { dx: -3, dy: 7 },
        ] {
            let bytes = r.encode();
            let (back, used) = HidReport::decode(&bytes).unwrap();
            assert_eq!(back, r);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn accumulator_handles_split_and_garbage() {
        let mut acc = ReportAccumulator::new();
        acc.push(&[0x55, 0x66]); // garbage
        let r1 = HidReport::Buttons(1).encode();
        let r2 = HidReport::Motion { dx: 1, dy: -1 }.encode();
        acc.push(&r1);
        acc.push(&r2[..2]);
        assert_eq!(acc.next(), Some(HidReport::Buttons(1)));
        assert_eq!(acc.next(), None);
        acc.push(&r2[2..]);
        assert_eq!(acc.next(), Some(HidReport::Motion { dx: 1, dy: -1 }));
    }

    #[test]
    fn stream_of_reports_reassembles() {
        simnet::check_cases("hidp_stream_of_reports_reassembles", 256, |_, rng| {
            let n = rng.gen_range(0usize..32);
            let reports: Vec<HidReport> = (0..n)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        HidReport::Buttons(rng.gen_range(0u8..=u8::MAX))
                    } else {
                        HidReport::Motion {
                            dx: rng.gen_range(i8::MIN..=i8::MAX),
                            dy: rng.gen_range(i8::MIN..=i8::MAX),
                        }
                    }
                })
                .collect();
            let chunk = rng.gen_range(1usize..9);
            let mut wire = Vec::new();
            for r in &reports {
                wire.extend(r.encode());
            }
            let mut acc = ReportAccumulator::new();
            let mut got = Vec::new();
            for piece in wire.chunks(chunk) {
                acc.push(piece);
                while let Some(r) = acc.next() {
                    got.push(r);
                }
            }
            assert_eq!(got, reports);
        });
    }
}
