//! UPnP device and service descriptions.
//!
//! A UPnP device exposes an XML *device description* (friendly name, type
//! URN, UDN, service list) and, per service, an SCPD-style *service
//! description* (actions with arguments, evented state variables). This
//! module models both and their XML forms; the emulated device serves
//! them over HTTP, and the mapper fetches and parses them to build
//! translators — the dominant cost in the paper's Figure 10.

use umiddle_usdl::Element;

/// Direction of a SOAP action argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgDirection {
    /// Caller supplies the value.
    In,
    /// Device returns the value.
    Out,
}

/// One argument of an action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionArg {
    /// Argument name.
    pub name: String,
    /// In or out.
    pub direction: ArgDirection,
    /// The related state variable's name.
    pub related_statevar: String,
}

/// One action of a service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionDesc {
    /// Action name (`SetPower`).
    pub name: String,
    /// Arguments in declaration order.
    pub args: Vec<ActionArg>,
}

/// One state variable of a service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateVarDesc {
    /// Variable name (`Power`).
    pub name: String,
    /// Whether changes are evented via GENA.
    pub send_events: bool,
    /// Initial value.
    pub initial: String,
}

/// A service description (type, id, actions, state variables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceDesc {
    /// Service type URN segment (`SwitchPower`).
    pub service_type: String,
    /// Actions.
    pub actions: Vec<ActionDesc>,
    /// State variables.
    pub state_vars: Vec<StateVarDesc>,
}

impl ServiceDesc {
    /// Creates an empty service.
    pub fn new(service_type: &str) -> ServiceDesc {
        ServiceDesc {
            service_type: service_type.to_owned(),
            actions: Vec::new(),
            state_vars: Vec::new(),
        }
    }

    /// Adds an action (builder style).
    pub fn with_action(mut self, action: ActionDesc) -> ServiceDesc {
        self.actions.push(action);
        self
    }

    /// Adds a state variable (builder style).
    pub fn with_statevar(mut self, name: &str, send_events: bool, initial: &str) -> ServiceDesc {
        self.state_vars.push(StateVarDesc {
            name: name.to_owned(),
            send_events,
            initial: initial.to_owned(),
        });
        self
    }

    /// Looks up an action by name.
    pub fn action(&self, name: &str) -> Option<&ActionDesc> {
        self.actions.iter().find(|a| a.name == name)
    }

    /// Serializes the SCPD XML.
    pub fn to_xml(&self) -> Element {
        let mut service = Element::new("service").with_attr("serviceType", &self.service_type);
        let mut actions = Element::new("actionList");
        for a in &self.actions {
            let mut action =
                Element::new("action").with_child(Element::new("name").with_text(&a.name));
            let mut args = Element::new("argumentList");
            for arg in &a.args {
                args = args.with_child(
                    Element::new("argument")
                        .with_child(Element::new("name").with_text(&arg.name))
                        .with_child(Element::new("direction").with_text(match arg.direction {
                            ArgDirection::In => "in",
                            ArgDirection::Out => "out",
                        }))
                        .with_child(
                            Element::new("relatedStateVariable").with_text(&arg.related_statevar),
                        ),
                );
            }
            action = action.with_child(args);
            actions = actions.with_child(action);
        }
        service = service.with_child(actions);
        let mut vars = Element::new("serviceStateTable");
        for v in &self.state_vars {
            vars = vars.with_child(
                Element::new("stateVariable")
                    .with_attr("sendEvents", if v.send_events { "yes" } else { "no" })
                    .with_child(Element::new("name").with_text(&v.name))
                    .with_child(Element::new("defaultValue").with_text(&v.initial)),
            );
        }
        service.with_child(vars)
    }

    /// Parses a `<service>` element.
    pub fn from_xml(e: &Element) -> Option<ServiceDesc> {
        let service_type = e.attr("serviceType")?.to_owned();
        let mut desc = ServiceDesc::new(&service_type);
        if let Some(list) = e.child("actionList") {
            for a in list.children_named("action") {
                let name = a.child("name")?.text();
                let mut args = Vec::new();
                if let Some(arg_list) = a.child("argumentList") {
                    for arg in arg_list.children_named("argument") {
                        args.push(ActionArg {
                            name: arg.child("name")?.text(),
                            direction: match arg.child("direction")?.text().as_str() {
                                "in" => ArgDirection::In,
                                _ => ArgDirection::Out,
                            },
                            related_statevar: arg.child("relatedStateVariable")?.text(),
                        });
                    }
                }
                desc.actions.push(ActionDesc { name, args });
            }
        }
        if let Some(table) = e.child("serviceStateTable") {
            for v in table.children_named("stateVariable") {
                desc.state_vars.push(StateVarDesc {
                    name: v.child("name")?.text(),
                    send_events: v.attr("sendEvents") == Some("yes"),
                    initial: v
                        .child("defaultValue")
                        .map(Element::text)
                        .unwrap_or_default(),
                });
            }
        }
        Some(desc)
    }
}

/// A full device description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceDesc {
    /// Device type URN (`urn:umiddle:device:Clock:1`).
    pub device_type: String,
    /// Human-readable name (`Kitchen Clock`).
    pub friendly_name: String,
    /// Unique device name (`uuid:...`).
    pub udn: String,
    /// Services.
    pub services: Vec<ServiceDesc>,
}

impl DeviceDesc {
    /// Creates a device description.
    pub fn new(device_type: &str, friendly_name: &str, udn: &str) -> DeviceDesc {
        DeviceDesc {
            device_type: device_type.to_owned(),
            friendly_name: friendly_name.to_owned(),
            udn: udn.to_owned(),
            services: Vec::new(),
        }
    }

    /// Adds a service (builder style).
    pub fn with_service(mut self, service: ServiceDesc) -> DeviceDesc {
        self.services.push(service);
        self
    }

    /// Finds the service owning an action.
    pub fn service_for_action(&self, action: &str) -> Option<&ServiceDesc> {
        self.services.iter().find(|s| s.action(action).is_some())
    }

    /// Finds a service by type segment.
    pub fn service(&self, service_type: &str) -> Option<&ServiceDesc> {
        self.services
            .iter()
            .find(|s| s.service_type == service_type)
    }

    /// Serializes the full description document (device + inline SCPDs,
    /// like the single-fetch layout CyberLink's samples use).
    pub fn to_xml(&self) -> String {
        let mut root = Element::new("root").with_attr("xmlns", "urn:schemas-upnp-org:device-1-0");
        let mut device = Element::new("device")
            .with_child(Element::new("deviceType").with_text(&self.device_type))
            .with_child(Element::new("friendlyName").with_text(&self.friendly_name))
            .with_child(Element::new("UDN").with_text(&self.udn));
        let mut services = Element::new("serviceList");
        for s in &self.services {
            services = services.with_child(s.to_xml());
        }
        device = device.with_child(services);
        root = root.with_child(device);
        root.to_document()
    }

    /// Parses a description document.
    pub fn parse(xml: &str) -> Option<DeviceDesc> {
        let root = Element::parse(xml).ok()?;
        let device = root.find("device")?;
        let mut desc = DeviceDesc::new(
            &device.child("deviceType")?.text(),
            &device.child("friendlyName")?.text(),
            &device.child("UDN")?.text(),
        );
        if let Some(list) = device.child("serviceList") {
            for s in list.children_named("service") {
                desc.services.push(ServiceDesc::from_xml(s)?);
            }
        }
        Some(desc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DeviceDesc {
        DeviceDesc::new("urn:umiddle:device:BinaryLight:1", "Hall Light", "uuid:42").with_service(
            ServiceDesc::new("SwitchPower")
                .with_action(ActionDesc {
                    name: "SetPower".to_owned(),
                    args: vec![ActionArg {
                        name: "Power".to_owned(),
                        direction: ArgDirection::In,
                        related_statevar: "Power".to_owned(),
                    }],
                })
                .with_statevar("Power", true, "0"),
        )
    }

    #[test]
    fn description_round_trip() {
        let desc = sample();
        let xml = desc.to_xml();
        let back = DeviceDesc::parse(&xml).unwrap();
        assert_eq!(desc, back);
    }

    #[test]
    fn lookup_helpers() {
        let desc = sample();
        assert!(desc.service("SwitchPower").is_some());
        assert!(desc.service("Nope").is_none());
        assert_eq!(
            desc.service_for_action("SetPower").unwrap().service_type,
            "SwitchPower"
        );
        assert!(desc.service_for_action("GetTime").is_none());
    }

    #[test]
    fn malformed_description_rejected() {
        assert!(DeviceDesc::parse("<root/>").is_none());
        assert!(DeviceDesc::parse("not xml").is_none());
    }
}
