//! The generic emulated UPnP device engine.
//!
//! [`UpnpDevice`] is a simnet process that plays the role of one UPnP
//! device on the network: it announces itself over SSDP, answers
//! M-SEARCHes, serves its description over HTTP, executes SOAP control
//! requests against a pluggable [`DeviceLogic`], and pushes GENA event
//! notifications to subscribers. CPU costs are modeled per the `calib`
//! module, reproducing the XML-marshaling-dominated profile the paper
//! measured.

use std::collections::{BTreeMap, HashMap};

use simnet::{Addr, Ctx, Datagram, Payload, Process, SimDuration, StreamEvent, StreamId};

use crate::calib;
use crate::description::DeviceDesc;
use crate::gena::{Notify, Subscribe};
use crate::http::{HttpAccumulator, HttpMessage, HttpRequest, HttpResponse};
use crate::soap::{SoapCall, SoapResult};
use crate::ssdp::{SsdpMessage, SSDP_GROUP};

/// Timer tokens.
const TIMER_ANNOUNCE: u64 = 0;
const TIMER_TICK: u64 = 1;

/// The device's mutable state variables, with change tracking for GENA.
#[derive(Debug, Default)]
pub struct StateTable {
    vars: BTreeMap<String, String>,
    changed: Vec<(String, String)>,
}

impl StateTable {
    /// Reads a state variable.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.vars.get(name).map(String::as_str)
    }

    /// Writes a state variable, recording the change for eventing.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        let value = value.into();
        let prev = self.vars.insert(name.to_owned(), value.clone());
        if prev.as_deref() != Some(&value) {
            self.changed.push((name.to_owned(), value));
        }
    }

    /// Takes the accumulated changes.
    fn take_changes(&mut self) -> Vec<(String, String)> {
        std::mem::take(&mut self.changed)
    }

    /// All current variables.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.vars.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

/// Device-specific behaviour plugged into [`UpnpDevice`].
pub trait DeviceLogic {
    /// The device's self-description.
    fn description(&self) -> DeviceDesc;

    /// Executes an action.
    ///
    /// # Errors
    ///
    /// Returns `(code, description)` UPnP faults for unknown actions or
    /// invalid arguments.
    fn invoke(
        &mut self,
        action: &str,
        args: &[(String, String)],
        state: &mut StateTable,
    ) -> Result<Vec<(String, String)>, (u32, String)>;

    /// Periodic behaviour (a clock advancing its `Time` variable).
    fn tick(&mut self, state: &mut StateTable) {
        let _ = state;
    }

    /// How often [`DeviceLogic::tick`] runs, if at all.
    fn tick_interval(&self) -> Option<SimDuration> {
        None
    }
}

/// A simulated UPnP device (SSDP + HTTP + SOAP + GENA server).
pub struct UpnpDevice {
    logic: Box<dyn DeviceLogic>,
    desc: DeviceDesc,
    desc_xml: String,
    http_port: u16,
    max_age: u32,
    state: StateTable,
    subs: Vec<Subscription>,
    next_sid: u32,
    /// Accumulators for inbound HTTP connections.
    server_conns: HashMap<StreamId, HttpAccumulator>,
    /// Outbound NOTIFY connections awaiting `Connected`.
    notify_out: HashMap<StreamId, Payload>,
}

#[derive(Debug)]
struct Subscription {
    service: String,
    callback: Addr,
    sid: u32,
    seq: u32,
}

impl std::fmt::Debug for UpnpDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpnpDevice")
            .field("friendly_name", &self.desc.friendly_name)
            .field("device_type", &self.desc.device_type)
            .field("http_port", &self.http_port)
            .finish_non_exhaustive()
    }
}

impl UpnpDevice {
    /// Creates a device serving HTTP on `http_port`.
    pub fn new(logic: Box<dyn DeviceLogic>, http_port: u16) -> UpnpDevice {
        let desc = logic.description();
        let desc_xml = desc.to_xml();
        let mut state = StateTable::default();
        for s in &desc.services {
            for v in &s.state_vars {
                state.set(&v.name, v.initial.clone());
            }
        }
        state.take_changes(); // initial values are not events
        UpnpDevice {
            logic,
            desc,
            desc_xml,
            http_port,
            max_age: 1800,
            state,
            subs: Vec::new(),
            next_sid: 1,
            server_conns: HashMap::new(),
            notify_out: HashMap::new(),
        }
    }

    /// The device's description.
    pub fn description(&self) -> &DeviceDesc {
        &self.desc
    }

    /// Current GENA subscriptions as `(sid, service)` pairs.
    pub fn subscriptions(&self) -> impl Iterator<Item = (u32, &str)> {
        self.subs.iter().map(|s| (s.sid, s.service.as_str()))
    }

    fn location(&self, ctx: &Ctx<'_>) -> Addr {
        Addr::new(ctx.node(), self.http_port)
    }

    fn announce(&mut self, ctx: &mut Ctx<'_>) {
        let msg = SsdpMessage::Alive {
            usn: self.desc.udn.clone(),
            device_type: self.desc.device_type.clone(),
            location: self.location(ctx),
            max_age: self.max_age,
        };
        ctx.busy(calib::SSDP_CODEC);
        let _ = ctx.multicast(self.http_port, SSDP_GROUP, msg.to_bytes());
    }

    fn handle_request(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, req: HttpRequest) {
        let response = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/description.xml") => {
                ctx.busy(calib::xml_codec_cost(self.desc_xml.len()));
                HttpResponse::xml(self.desc_xml.clone())
            }
            ("POST", "/control") => self.handle_control(ctx, &req),
            ("SUBSCRIBE", _) => self.handle_subscribe(ctx, &req),
            _ => HttpResponse::new(404),
        };
        let _ = ctx.stream_send(stream, response.to_bytes());
        ctx.stream_close(stream);
        // Control may have changed evented state.
        self.flush_events(ctx);
    }

    fn handle_control(&mut self, ctx: &mut Ctx<'_>, req: &HttpRequest) -> HttpResponse {
        ctx.busy(calib::xml_codec_cost(req.body.len()));
        let Some(call) = std::str::from_utf8(&req.body)
            .ok()
            .and_then(SoapCall::parse)
        else {
            return HttpResponse::new(400);
        };
        ctx.busy(calib::ACTION_PROCESS);
        let result = if self.desc.service_for_action(&call.action).is_none() {
            SoapResult::Fault {
                code: 401,
                description: format!("Invalid Action {}", call.action),
            }
        } else {
            match self.logic.invoke(&call.action, &call.args, &mut self.state) {
                Ok(args) => SoapResult::Ok {
                    action: call.action.clone(),
                    args,
                },
                Err((code, description)) => SoapResult::Fault { code, description },
            }
        };
        let xml = result.to_xml();
        ctx.busy(calib::xml_codec_cost(xml.len()));
        ctx.bump("upnp.actions", 1);
        HttpResponse::xml(xml)
    }

    fn handle_subscribe(&mut self, ctx: &mut Ctx<'_>, req: &HttpRequest) -> HttpResponse {
        let Some(sub) = Subscribe::from_request(req) else {
            return HttpResponse::new(400);
        };
        ctx.busy(calib::SUBSCRIBE_PROCESS);
        let sid = self.next_sid;
        self.next_sid += 1;
        // Initial event: full evented state of the service (seq 0).
        let initial: Vec<(String, String)> = self
            .desc
            .service(&sub.service)
            .map(|svc| {
                svc.state_vars
                    .iter()
                    .filter(|v| v.send_events)
                    .filter_map(|v| {
                        self.state
                            .get(&v.name)
                            .map(|val| (v.name.clone(), val.to_owned()))
                    })
                    .collect()
            })
            .unwrap_or_default();
        self.subs.push(Subscription {
            service: sub.service.clone(),
            callback: sub.callback,
            sid,
            seq: 1,
        });
        if !initial.is_empty() {
            self.send_notify(ctx, sub.callback, &sub.service, 0, initial);
        }
        ctx.bump("upnp.subscriptions", 1);
        Subscribe::accept(sid)
    }

    fn flush_events(&mut self, ctx: &mut Ctx<'_>) {
        let changes = self.state.take_changes();
        if changes.is_empty() {
            return;
        }
        // Deliver each change set to subscribers of the owning service.
        let subs: Vec<(Addr, String, u32)> = self
            .subs
            .iter_mut()
            .map(|s| {
                let seq = s.seq;
                s.seq += 1;
                (s.callback, s.service.clone(), seq)
            })
            .collect();
        for (callback, service, seq) in subs {
            let relevant: Vec<(String, String)> = changes
                .iter()
                .filter(|(name, _)| {
                    self.desc
                        .service(&service)
                        .map(|svc| {
                            svc.state_vars
                                .iter()
                                .any(|v| v.name == *name && v.send_events)
                        })
                        .unwrap_or(false)
                })
                .cloned()
                .collect();
            if !relevant.is_empty() {
                self.send_notify(ctx, callback, &service, seq, relevant);
            }
        }
    }

    fn send_notify(
        &mut self,
        ctx: &mut Ctx<'_>,
        callback: Addr,
        service: &str,
        seq: u32,
        changes: Vec<(String, String)>,
    ) {
        let notify = Notify {
            device: self.desc.udn.clone(),
            service: service.to_owned(),
            seq,
            changes,
        };
        let req = notify.to_request();
        let bytes = req.to_bytes();
        ctx.busy(calib::xml_codec_cost(bytes.len()));
        if let Ok(stream) = ctx.connect(callback) {
            self.notify_out.insert(stream, bytes);
            ctx.bump("upnp.notifies", 1);
        }
    }
}

impl Process for UpnpDevice {
    fn name(&self) -> &str {
        "upnp-device"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(self.http_port).expect("device http port free");
        // Multicast reception needs only group membership, not a bound
        // port; unicast replies are sent with the HTTP port as source.
        let _ = ctx.join_group(SSDP_GROUP);
        self.announce(ctx);
        let reannounce = SimDuration::from_secs(u64::from(self.max_age) / 2);
        ctx.set_timer(reannounce, TIMER_ANNOUNCE);
        if let Some(interval) = self.logic.tick_interval() {
            ctx.set_timer(interval, TIMER_TICK);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TIMER_ANNOUNCE => {
                self.announce(ctx);
                let reannounce = SimDuration::from_secs(u64::from(self.max_age) / 2);
                ctx.set_timer(reannounce, TIMER_ANNOUNCE);
            }
            TIMER_TICK => {
                self.logic.tick(&mut self.state);
                self.flush_events(ctx);
                if let Some(interval) = self.logic.tick_interval() {
                    ctx.set_timer(interval, TIMER_TICK);
                }
            }
            _ => {}
        }
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        let Some(msg) = SsdpMessage::parse(&dgram.data) else {
            return;
        };
        ctx.busy(calib::SSDP_CODEC);
        if let SsdpMessage::MSearch { st, reply_to } = msg {
            if SsdpMessage::search_matches(&st, &self.desc.device_type) {
                let resp = SsdpMessage::SearchResponse {
                    usn: self.desc.udn.clone(),
                    device_type: self.desc.device_type.clone(),
                    location: self.location(ctx),
                    max_age: self.max_age,
                };
                let _ = ctx.send_to(self.http_port, reply_to, resp.to_bytes());
            }
        }
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
        match event {
            StreamEvent::Accepted { .. } => {
                self.server_conns.insert(stream, HttpAccumulator::new());
            }
            StreamEvent::Connected => {
                if let Some(bytes) = self.notify_out.remove(&stream) {
                    let _ = ctx.stream_send(stream, bytes);
                    ctx.stream_close(stream);
                }
            }
            StreamEvent::Data(data) => {
                let Some(acc) = self.server_conns.get_mut(&stream) else {
                    return;
                };
                acc.push_payload(data);
                if let Some(Ok(HttpMessage::Request(req))) = acc.take_message() {
                    self.handle_request(ctx, stream, req);
                }
            }
            StreamEvent::Closed | StreamEvent::ConnectFailed => {
                self.server_conns.remove(&stream);
                self.notify_out.remove(&stream);
            }
            StreamEvent::Writable => {}
        }
    }

    fn on_stop(&mut self, ctx: &mut Ctx<'_>) {
        let msg = SsdpMessage::ByeBye {
            usn: self.desc.udn.clone(),
            device_type: self.desc.device_type.clone(),
        };
        let _ = ctx.multicast(self.http_port, SSDP_GROUP, msg.to_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::description::{ActionArg, ActionDesc, ArgDirection, ServiceDesc};

    struct NullLogic;
    impl DeviceLogic for NullLogic {
        fn description(&self) -> DeviceDesc {
            DeviceDesc::new("urn:test:Null:1", "Null", "uuid:null").with_service(
                ServiceDesc::new("S")
                    .with_action(ActionDesc {
                        name: "Do".to_owned(),
                        args: vec![ActionArg {
                            name: "X".to_owned(),
                            direction: ArgDirection::In,
                            related_statevar: "X".to_owned(),
                        }],
                    })
                    .with_statevar("X", true, "0"),
            )
        }
        fn invoke(
            &mut self,
            action: &str,
            args: &[(String, String)],
            state: &mut StateTable,
        ) -> Result<Vec<(String, String)>, (u32, String)> {
            if action == "Do" {
                if let Some((_, v)) = args.first() {
                    state.set("X", v.clone());
                }
                Ok(vec![])
            } else {
                Err((401, "bad".to_owned()))
            }
        }
    }

    #[test]
    fn state_table_tracks_changes() {
        let mut st = StateTable::default();
        st.set("A", "1");
        st.set("A", "1"); // no-op
        st.set("A", "2");
        assert_eq!(st.get("A"), Some("2"));
        assert_eq!(
            st.take_changes(),
            vec![
                ("A".to_owned(), "1".to_owned()),
                ("A".to_owned(), "2".to_owned())
            ]
        );
        assert!(st.take_changes().is_empty());
    }

    #[test]
    fn device_builds_initial_state_from_description() {
        let dev = UpnpDevice::new(Box::new(NullLogic), 5000);
        assert_eq!(dev.state.get("X"), Some("0"));
        assert_eq!(dev.description().friendly_name, "Null");
    }
}
