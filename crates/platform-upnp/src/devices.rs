//! Concrete emulated devices: the evaluation corpus of the paper.
//!
//! The paper's Figure 10 benchmarks mapping a CyberLink-emulated clock,
//! air conditioner and light; §5.2 controls the light switch; §4 uses a
//! MediaRenderer TV. These logics plug into [`UpnpDevice`](crate::UpnpDevice).

use simnet::SimDuration;

use crate::description::{ActionArg, ActionDesc, ArgDirection, DeviceDesc, ServiceDesc};
use crate::device::{DeviceLogic, StateTable};

fn in_arg(name: &str, var: &str) -> ActionArg {
    ActionArg {
        name: name.to_owned(),
        direction: ArgDirection::In,
        related_statevar: var.to_owned(),
    }
}

fn out_arg(name: &str, var: &str) -> ActionArg {
    ActionArg {
        name: name.to_owned(),
        direction: ArgDirection::Out,
        related_statevar: var.to_owned(),
    }
}

fn action(name: &str, args: Vec<ActionArg>) -> ActionDesc {
    ActionDesc {
        name: name.to_owned(),
        args,
    }
}

/// The binary light of the paper's §3.4/§5.2: `SetPower` with `1`/`0`.
#[derive(Debug, Clone)]
pub struct LightLogic {
    friendly_name: String,
    udn: String,
}

impl LightLogic {
    /// Creates a light with the given friendly name and unique id.
    pub fn new(friendly_name: &str, udn: &str) -> LightLogic {
        LightLogic {
            friendly_name: friendly_name.to_owned(),
            udn: udn.to_owned(),
        }
    }
}

impl DeviceLogic for LightLogic {
    fn description(&self) -> DeviceDesc {
        DeviceDesc::new(
            "urn:umiddle:device:BinaryLight:1",
            &self.friendly_name,
            &self.udn,
        )
        .with_service(
            ServiceDesc::new("SwitchPower")
                .with_action(action("SetPower", vec![in_arg("Power", "Power")]))
                .with_action(action("GetPower", vec![out_arg("Power", "Power")]))
                .with_statevar("Power", true, "0"),
        )
    }

    fn invoke(
        &mut self,
        action: &str,
        args: &[(String, String)],
        state: &mut StateTable,
    ) -> Result<Vec<(String, String)>, (u32, String)> {
        match action {
            "SetPower" => {
                let v = args
                    .iter()
                    .find(|(k, _)| k == "Power")
                    .map(|(_, v)| v.as_str())
                    .ok_or((402, "missing Power argument".to_owned()))?;
                if v != "0" && v != "1" {
                    return Err((600, format!("Power must be 0 or 1, got {v:?}")));
                }
                state.set("Power", v);
                Ok(vec![])
            }
            "GetPower" => Ok(vec![(
                "Power".to_owned(),
                state.get("Power").unwrap_or("0").to_owned(),
            )]),
            other => Err((401, format!("Invalid Action {other}"))),
        }
    }
}

/// The clock of Figure 10: two services (TimeKeeping, Alarm), many
/// actions and evented variables — the most expensive device to map.
#[derive(Debug, Clone)]
pub struct ClockLogic {
    friendly_name: String,
    udn: String,
    seconds: u64,
}

impl ClockLogic {
    /// Creates a clock.
    pub fn new(friendly_name: &str, udn: &str) -> ClockLogic {
        ClockLogic {
            friendly_name: friendly_name.to_owned(),
            udn: udn.to_owned(),
            seconds: 0,
        }
    }
}

impl DeviceLogic for ClockLogic {
    fn description(&self) -> DeviceDesc {
        DeviceDesc::new("urn:umiddle:device:Clock:1", &self.friendly_name, &self.udn)
            .with_service(
                ServiceDesc::new("TimeKeeping")
                    .with_action(action("SetTime", vec![in_arg("NewTime", "Time")]))
                    .with_action(action("GetTime", vec![out_arg("CurrentTime", "Time")]))
                    .with_action(action("SetDate", vec![in_arg("NewDate", "Date")]))
                    .with_action(action("GetDate", vec![out_arg("CurrentDate", "Date")]))
                    .with_action(action(
                        "SetTimeZone",
                        vec![in_arg("NewTimeZone", "TimeZone")],
                    ))
                    .with_action(action("SetFormat", vec![in_arg("Format", "Format")]))
                    .with_statevar("Time", true, "00:00:00")
                    .with_statevar("Date", true, "2006-01-01")
                    .with_statevar("TimeZone", false, "UTC")
                    .with_statevar("Format", false, "24h")
                    .with_statevar("Tick", true, "0"),
            )
            .with_service(
                ServiceDesc::new("Alarm")
                    .with_action(action("SetAlarm", vec![in_arg("AlarmTime", "AlarmTime")]))
                    .with_action(action(
                        "SetAlarmEnabled",
                        vec![in_arg("Enabled", "AlarmEnabled")],
                    ))
                    .with_statevar("AlarmTime", true, "")
                    .with_statevar("AlarmEnabled", false, "0"),
            )
    }

    fn invoke(
        &mut self,
        action: &str,
        args: &[(String, String)],
        state: &mut StateTable,
    ) -> Result<Vec<(String, String)>, (u32, String)> {
        let arg = |name: &str| {
            args.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
                .ok_or((402u32, format!("missing argument {name}")))
        };
        match action {
            "SetTime" => {
                state.set("Time", arg("NewTime")?);
                Ok(vec![])
            }
            "GetTime" => Ok(vec![(
                "CurrentTime".to_owned(),
                state.get("Time").unwrap_or_default().to_owned(),
            )]),
            "SetDate" => {
                state.set("Date", arg("NewDate")?);
                Ok(vec![])
            }
            "GetDate" => Ok(vec![(
                "CurrentDate".to_owned(),
                state.get("Date").unwrap_or_default().to_owned(),
            )]),
            "SetTimeZone" => {
                state.set("TimeZone", arg("NewTimeZone")?);
                Ok(vec![])
            }
            "SetFormat" => {
                state.set("Format", arg("Format")?);
                Ok(vec![])
            }
            "SetAlarm" => {
                state.set("AlarmTime", arg("AlarmTime")?);
                Ok(vec![])
            }
            "SetAlarmEnabled" => {
                state.set("AlarmEnabled", arg("Enabled")?);
                Ok(vec![])
            }
            other => Err((401, format!("Invalid Action {other}"))),
        }
    }

    fn tick(&mut self, state: &mut StateTable) {
        self.seconds += 1;
        state.set("Tick", self.seconds.to_string());
        state.set(
            "Time",
            format!(
                "{:02}:{:02}:{:02}",
                self.seconds / 3600 % 24,
                self.seconds / 60 % 60,
                self.seconds % 60
            ),
        );
    }

    fn tick_interval(&self) -> Option<SimDuration> {
        Some(SimDuration::from_secs(1))
    }
}

/// The air conditioner of Figure 10.
#[derive(Debug, Clone)]
pub struct AirconLogic {
    friendly_name: String,
    udn: String,
}

impl AirconLogic {
    /// Creates an air conditioner.
    pub fn new(friendly_name: &str, udn: &str) -> AirconLogic {
        AirconLogic {
            friendly_name: friendly_name.to_owned(),
            udn: udn.to_owned(),
        }
    }
}

impl DeviceLogic for AirconLogic {
    fn description(&self) -> DeviceDesc {
        DeviceDesc::new(
            "urn:umiddle:device:AirConditioner:1",
            &self.friendly_name,
            &self.udn,
        )
        .with_service(
            ServiceDesc::new("Hvac")
                .with_action(action("SetMode", vec![in_arg("Mode", "Mode")]))
                .with_action(action("SetTarget", vec![in_arg("Target", "Target")]))
                .with_action(action(
                    "GetTemperature",
                    vec![out_arg("Temperature", "Temperature")],
                ))
                .with_statevar("Mode", true, "off")
                .with_statevar("Target", false, "22")
                .with_statevar("Temperature", true, "25"),
        )
    }

    fn invoke(
        &mut self,
        action: &str,
        args: &[(String, String)],
        state: &mut StateTable,
    ) -> Result<Vec<(String, String)>, (u32, String)> {
        match action {
            "SetMode" => {
                let mode = args
                    .iter()
                    .find(|(k, _)| k == "Mode")
                    .map(|(_, v)| v.clone())
                    .ok_or((402, "missing Mode".to_owned()))?;
                if !["off", "cool", "heat", "fan"].contains(&mode.as_str()) {
                    return Err((600, format!("unknown mode {mode:?}")));
                }
                state.set("Mode", mode);
                Ok(vec![])
            }
            "SetTarget" => {
                let t = args
                    .iter()
                    .find(|(k, _)| k == "Target")
                    .map(|(_, v)| v.clone())
                    .ok_or((402, "missing Target".to_owned()))?;
                t.parse::<i32>()
                    .map_err(|_| (600, "Target must be an integer".to_owned()))?;
                state.set("Target", t);
                Ok(vec![])
            }
            "GetTemperature" => Ok(vec![(
                "Temperature".to_owned(),
                state.get("Temperature").unwrap_or("25").to_owned(),
            )]),
            other => Err((401, format!("Invalid Action {other}"))),
        }
    }
}

/// The MediaRenderer TV of the camera-to-TV scenario. Rendering a media
/// payload updates `TransportState` and counts frames in `FramesShown`.
#[derive(Debug, Clone)]
pub struct MediaRendererLogic {
    friendly_name: String,
    udn: String,
    frames: u64,
}

impl MediaRendererLogic {
    /// Creates a renderer.
    pub fn new(friendly_name: &str, udn: &str) -> MediaRendererLogic {
        MediaRendererLogic {
            friendly_name: friendly_name.to_owned(),
            udn: udn.to_owned(),
            frames: 0,
        }
    }
}

impl DeviceLogic for MediaRendererLogic {
    fn description(&self) -> DeviceDesc {
        DeviceDesc::new(
            "urn:umiddle:device:MediaRenderer:1",
            &self.friendly_name,
            &self.udn,
        )
        .with_service(
            ServiceDesc::new("AVTransport")
                .with_action(action("RenderMedia", vec![in_arg("Media", "FramesShown")]))
                .with_action(action(
                    "SetTransportState",
                    vec![in_arg("State", "TransportState")],
                ))
                .with_statevar("TransportState", true, "STOPPED")
                .with_statevar("FramesShown", true, "0"),
        )
    }

    fn invoke(
        &mut self,
        action: &str,
        args: &[(String, String)],
        state: &mut StateTable,
    ) -> Result<Vec<(String, String)>, (u32, String)> {
        match action {
            "RenderMedia" => {
                self.frames += 1;
                state.set("FramesShown", self.frames.to_string());
                state.set("TransportState", "PLAYING");
                Ok(vec![])
            }
            "SetTransportState" => {
                let s = args
                    .iter()
                    .find(|(k, _)| k == "State")
                    .map(|(_, v)| v.clone())
                    .ok_or((402, "missing State".to_owned()))?;
                state.set("TransportState", s);
                Ok(vec![])
            }
            other => Err((401, format!("Invalid Action {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_validates_power_values() {
        let mut light = LightLogic::new("L", "uuid:l");
        let mut state = StateTable::default();
        assert!(light
            .invoke(
                "SetPower",
                &[("Power".to_owned(), "1".to_owned())],
                &mut state
            )
            .is_ok());
        assert_eq!(state.get("Power"), Some("1"));
        assert!(light
            .invoke(
                "SetPower",
                &[("Power".to_owned(), "7".to_owned())],
                &mut state
            )
            .is_err());
        assert!(light.invoke("Explode", &[], &mut state).is_err());
        let out = light.invoke("GetPower", &[], &mut state).unwrap();
        assert_eq!(out, vec![("Power".to_owned(), "1".to_owned())]);
    }

    #[test]
    fn clock_description_is_the_papers_big_one() {
        let clock = ClockLogic::new("C", "uuid:c");
        let desc = clock.description();
        assert_eq!(
            desc.services.len(),
            2,
            "two services: the paper's extra entities"
        );
        let actions: usize = desc.services.iter().map(|s| s.actions.len()).sum();
        assert!(actions >= 8, "clock is action-rich: {actions}");
        // Its description XML is markedly larger than the light's.
        let light_len = LightLogic::new("L", "uuid:l").description().to_xml().len();
        assert!(desc.to_xml().len() > 2 * light_len);
    }

    #[test]
    fn clock_ticks_advance_time() {
        let mut clock = ClockLogic::new("C", "uuid:c");
        let mut state = StateTable::default();
        for _ in 0..61 {
            clock.tick(&mut state);
        }
        assert_eq!(state.get("Time"), Some("00:01:01"));
    }

    #[test]
    fn aircon_rejects_bad_modes_and_targets() {
        let mut ac = AirconLogic::new("A", "uuid:a");
        let mut state = StateTable::default();
        assert!(ac
            .invoke(
                "SetMode",
                &[("Mode".to_owned(), "cool".to_owned())],
                &mut state
            )
            .is_ok());
        assert!(ac
            .invoke(
                "SetMode",
                &[("Mode".to_owned(), "toast".to_owned())],
                &mut state
            )
            .is_err());
        assert!(ac
            .invoke(
                "SetTarget",
                &[("Target".to_owned(), "cold".to_owned())],
                &mut state
            )
            .is_err());
    }

    #[test]
    fn renderer_counts_frames() {
        let mut tv = MediaRendererLogic::new("TV", "uuid:tv");
        let mut state = StateTable::default();
        for _ in 0..3 {
            tv.invoke(
                "RenderMedia",
                &[("Media".to_owned(), "...".to_owned())],
                &mut state,
            )
            .unwrap();
        }
        assert_eq!(state.get("FramesShown"), Some("3"));
        assert_eq!(state.get("TransportState"), Some("PLAYING"));
    }
}
