//! SOAP envelopes for UPnP control.
//!
//! UPnP action invocation is SOAP 1.1 over HTTP POST: a request envelope
//! naming the action and its in-arguments, answered by a response
//! envelope with out-arguments or a fault. The verbose XML marshaling
//! here is exactly the cost the paper measures in §5.2 (150 ms "consumed
//! in the UPnP domain (marshaling/unmarshaling XML messages...)").

use umiddle_usdl::Element;

const ENVELOPE_NS: &str = "http://schemas.xmlsoap.org/soap/envelope/";

/// A SOAP action call: service type, action name, in-arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoapCall {
    /// Service type segment the action belongs to.
    pub service: String,
    /// Action name.
    pub action: String,
    /// `(name, value)` in-arguments.
    pub args: Vec<(String, String)>,
}

impl SoapCall {
    /// Creates a call.
    pub fn new(service: &str, action: &str) -> SoapCall {
        SoapCall {
            service: service.to_owned(),
            action: action.to_owned(),
            args: Vec::new(),
        }
    }

    /// Adds an argument (builder style).
    pub fn with_arg(mut self, name: &str, value: impl Into<String>) -> SoapCall {
        self.args.push((name.to_owned(), value.into()));
        self
    }

    /// Serializes the request envelope.
    pub fn to_xml(&self) -> String {
        let mut action = Element::new(format!("u:{}", self.action))
            .with_attr("xmlns:u", format!("urn:umiddle:service:{}:1", self.service));
        for (k, v) in &self.args {
            action = action.with_child(Element::new(k.clone()).with_text(v.clone()));
        }
        Element::new("s:Envelope")
            .with_attr("xmlns:s", ENVELOPE_NS)
            .with_child(Element::new("s:Body").with_child(action))
            .to_document()
    }

    /// Parses a request envelope.
    pub fn parse(xml: &str) -> Option<SoapCall> {
        let root = Element::parse(xml).ok()?;
        if root.local_name() != "Envelope" {
            return None;
        }
        let body = root.child("Body")?;
        let action_el = body.children().next()?;
        let action = action_el.local_name().to_owned();
        let ns = action_el
            .attrs()
            .find(|(k, _)| k.starts_with("xmlns"))
            .map(|(_, v)| v)
            .unwrap_or_default();
        // urn:umiddle:service:<Service>:1
        let service = ns.split(':').nth(3).unwrap_or_default().to_owned();
        let args = action_el
            .children()
            .map(|c| (c.name().to_owned(), c.text()))
            .collect();
        Some(SoapCall {
            service,
            action,
            args,
        })
    }

    /// The `SOAPACTION` HTTP header value for this call.
    pub fn soap_action_header(&self) -> String {
        format!("\"urn:umiddle:service:{}:1#{}\"", self.service, self.action)
    }
}

/// The result of a SOAP call: out-arguments or a fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SoapResult {
    /// Successful invocation with out-arguments.
    Ok {
        /// The action that was invoked.
        action: String,
        /// `(name, value)` out-arguments.
        args: Vec<(String, String)>,
    },
    /// A UPnP error.
    Fault {
        /// UPnP error code (e.g. 401 invalid action).
        code: u32,
        /// Human-readable description.
        description: String,
    },
}

impl SoapResult {
    /// Serializes the response envelope.
    pub fn to_xml(&self) -> String {
        let body = match self {
            SoapResult::Ok { action, args } => {
                let mut resp = Element::new(format!("u:{action}Response"));
                for (k, v) in args {
                    resp = resp.with_child(Element::new(k.clone()).with_text(v.clone()));
                }
                resp
            }
            SoapResult::Fault { code, description } => Element::new("s:Fault")
                .with_child(Element::new("faultcode").with_text("s:Client"))
                .with_child(Element::new("faultstring").with_text("UPnPError"))
                .with_child(
                    Element::new("detail").with_child(
                        Element::new("UPnPError")
                            .with_child(Element::new("errorCode").with_text(code.to_string()))
                            .with_child(
                                Element::new("errorDescription").with_text(description.clone()),
                            ),
                    ),
                ),
        };
        Element::new("s:Envelope")
            .with_attr("xmlns:s", ENVELOPE_NS)
            .with_child(Element::new("s:Body").with_child(body))
            .to_document()
    }

    /// Parses a response envelope.
    pub fn parse(xml: &str) -> Option<SoapResult> {
        let root = Element::parse(xml).ok()?;
        let body = root.child("Body")?;
        let first = body.children().next()?;
        if first.local_name() == "Fault" {
            let err = first.find("UPnPError")?;
            return Some(SoapResult::Fault {
                code: err.child("errorCode")?.text().parse().ok()?,
                description: err.child("errorDescription")?.text(),
            });
        }
        let action = first
            .local_name()
            .strip_suffix("Response")
            .unwrap_or(first.local_name())
            .to_owned();
        Some(SoapResult::Ok {
            action,
            args: first
                .children()
                .map(|c| (c.name().to_owned(), c.text()))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_round_trip_matches_paper_example() {
        // The paper's SetPower example: "1" switches the light on.
        let call = SoapCall::new("SwitchPower", "SetPower").with_arg("Power", "1");
        let xml = call.to_xml();
        assert!(xml.contains("SetPower") && xml.contains("Power"));
        let back = SoapCall::parse(&xml).unwrap();
        assert_eq!(back, call);
        assert_eq!(
            call.soap_action_header(),
            "\"urn:umiddle:service:SwitchPower:1#SetPower\""
        );
    }

    #[test]
    fn ok_result_round_trip() {
        let r = SoapResult::Ok {
            action: "GetTime".to_owned(),
            args: vec![("CurrentTime".to_owned(), "12:34".to_owned())],
        };
        assert_eq!(SoapResult::parse(&r.to_xml()).unwrap(), r);
    }

    #[test]
    fn fault_round_trip() {
        let f = SoapResult::Fault {
            code: 401,
            description: "Invalid Action".to_owned(),
        };
        assert_eq!(SoapResult::parse(&f.to_xml()).unwrap(), f);
    }

    #[test]
    fn non_soap_rejected() {
        assert!(SoapCall::parse("<root/>").is_none());
        assert!(SoapResult::parse("garbage").is_none());
    }
}
