//! CPU-cost calibration constants for the simulated UPnP stack.
//!
//! The paper's testbed ran a Java UPnP stack (CyberLink) on 2.0 GHz
//! Pentium M laptops; XML marshaling dominated its costs (§5.2 attributes
//! 150 of the 160 ms per SetPower round trip to "the UPnP domain
//! (marshaling/unmarshaling XML messages and controlling the light
//! switch)"). These constants model that era's costs via
//! [`Ctx::busy`](simnet::Ctx::busy); they are deliberately centralized so
//! EXPERIMENTS.md can reference every knob.

use simnet::SimDuration;

/// Fixed overhead of parsing or serializing one XML document on the
/// 2006-era Java stack (DOM setup, string churn).
pub const XML_CODEC_FIXED: SimDuration = SimDuration::from_millis(12);

/// Additional XML codec cost per payload byte (~10 µs/B, i.e. ~100 KB/s
/// DOM throughput — mid-2000s Java).
pub const XML_CODEC_PER_BYTE_NANOS: u64 = 10_000;

/// Device-internal processing for one action invocation (state update,
/// callback into device logic, eventing bookkeeping).
pub const ACTION_PROCESS: SimDuration = SimDuration::from_millis(100);

/// Cost of one SSDP message parse/build (tiny text headers).
pub const SSDP_CODEC: SimDuration = SimDuration::from_micros(300);

/// Time the device takes to accept a GENA subscription.
pub const SUBSCRIBE_PROCESS: SimDuration = SimDuration::from_millis(25);

/// Computes the CPU cost of encoding or decoding `bytes` of XML.
pub fn xml_codec_cost(bytes: usize) -> SimDuration {
    XML_CODEC_FIXED + SimDuration::from_nanos(bytes as u64 * XML_CODEC_PER_BYTE_NANOS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xml_cost_scales_with_size() {
        // A ~500 B SOAP envelope costs ~17 ms; a 6 KB description ~72 ms.
        let soap = xml_codec_cost(500);
        let desc = xml_codec_cost(6000);
        assert!(soap >= SimDuration::from_millis(15) && soap <= SimDuration::from_millis(20));
        assert!(desc >= SimDuration::from_millis(60) && desc <= SimDuration::from_millis(90));
    }
}
