//! Control-point helpers: the client side of SSDP/HTTP/SOAP/GENA.
//!
//! [`ControlPoint`] is embedded in a host process (the uMiddle UPnP
//! mapper, or test drivers) and manages the asynchronous request/response
//! plumbing over simnet streams: description fetches, action invocations
//! and event subscriptions. The host forwards its stream events and SSDP
//! datagrams; the control point hands back typed [`CpEvent`]s.

use std::collections::HashMap;

use simnet::{Addr, Ctx, Datagram, Payload, StreamEvent, StreamId};

use crate::calib;
use crate::description::DeviceDesc;
use crate::gena::{Notify, Subscribe};
use crate::http::{HttpAccumulator, HttpMessage, HttpRequest, HttpResponse};
use crate::soap::{SoapCall, SoapResult};
use crate::ssdp::SsdpMessage;

/// Events produced by the control point.
#[derive(Debug, Clone, PartialEq)]
pub enum CpEvent {
    /// An SSDP alive or search response was heard.
    DeviceSeen {
        /// Unique device name.
        usn: String,
        /// Device type URN.
        device_type: String,
        /// Description location.
        location: Addr,
    },
    /// An SSDP byebye was heard.
    DeviceGone {
        /// Unique device name.
        usn: String,
    },
    /// A description fetch completed.
    Description {
        /// Where it was fetched from.
        location: Addr,
        /// The parsed description.
        desc: DeviceDesc,
        /// Raw XML size (used for cost accounting by callers).
        raw_len: usize,
    },
    /// An action invocation completed.
    ActionResult {
        /// Correlation id passed to [`ControlPoint::invoke`].
        call_id: u64,
        /// The SOAP result.
        result: SoapResult,
    },
    /// A subscription was accepted.
    Subscribed {
        /// The service subscribed to.
        service: String,
        /// Description location of the device.
        location: Addr,
    },
    /// A GENA event arrived on our callback listener.
    Event(Notify),
    /// A request failed (connection refused, peer died, parse error).
    Failed {
        /// What was being attempted.
        context: String,
    },
}

#[derive(Debug)]
enum Pending {
    Description {
        location: Addr,
        acc: HttpAccumulator,
        sent: bool,
        request: Payload,
    },
    Action {
        call_id: u64,
        acc: HttpAccumulator,
        sent: bool,
        request: Payload,
    },
    Subscribe {
        service: String,
        location: Addr,
        acc: HttpAccumulator,
        sent: bool,
        request: Payload,
    },
    /// An inbound connection on the GENA callback listener.
    Inbound { acc: HttpAccumulator },
}

/// The client-side engine. Hosts must:
///
/// 1. call [`ControlPoint::listen_events`] once at start (for GENA),
/// 2. forward all stream events to [`ControlPoint::handle_stream`],
/// 3. forward SSDP datagrams to [`ControlPoint::handle_ssdp`].
#[derive(Debug, Default)]
pub struct ControlPoint {
    pending: HashMap<StreamId, Pending>,
    event_port: Option<u16>,
}

impl ControlPoint {
    /// Creates a control point.
    pub fn new() -> ControlPoint {
        ControlPoint::default()
    }

    /// Starts the GENA callback listener on `port`.
    ///
    /// # Panics
    ///
    /// Panics if the port is already bound on this node.
    pub fn listen_events(&mut self, ctx: &mut Ctx<'_>, port: u16) {
        ctx.listen(port).expect("gena callback port free");
        self.event_port = Some(port);
    }

    /// The GENA callback address, if listening.
    pub fn event_callback(&self, ctx: &Ctx<'_>) -> Option<Addr> {
        self.event_port.map(|p| Addr::new(ctx.node(), p))
    }

    /// Sends a multicast M-SEARCH for `st` (`"ssdp:all"` or a type URN);
    /// `reply_port` must be a bound datagram port on the host.
    pub fn search(&mut self, ctx: &mut Ctx<'_>, st: &str, reply_port: u16) {
        let msg = SsdpMessage::MSearch {
            st: st.to_owned(),
            reply_to: Addr::new(ctx.node(), reply_port),
        };
        ctx.busy(calib::SSDP_CODEC);
        let _ = ctx.multicast(reply_port, crate::ssdp::SSDP_GROUP, msg.to_bytes());
    }

    /// Interprets an SSDP datagram; returns an event if it is relevant.
    pub fn handle_ssdp(&mut self, ctx: &mut Ctx<'_>, dgram: &Datagram) -> Option<CpEvent> {
        let msg = SsdpMessage::parse(&dgram.data)?;
        ctx.busy(calib::SSDP_CODEC);
        match msg {
            SsdpMessage::Alive {
                usn,
                device_type,
                location,
                ..
            }
            | SsdpMessage::SearchResponse {
                usn,
                device_type,
                location,
                ..
            } => Some(CpEvent::DeviceSeen {
                usn,
                device_type,
                location,
            }),
            SsdpMessage::ByeBye { usn, .. } => Some(CpEvent::DeviceGone { usn }),
            SsdpMessage::MSearch { .. } => None,
        }
    }

    /// Fetches a device description from `location`.
    pub fn fetch_description(&mut self, ctx: &mut Ctx<'_>, location: Addr) {
        let request = HttpRequest::new("GET", "/description.xml").to_bytes();
        match ctx.connect(location) {
            Ok(stream) => {
                self.pending.insert(
                    stream,
                    Pending::Description {
                        location,
                        acc: HttpAccumulator::new(),
                        sent: false,
                        request,
                    },
                );
            }
            Err(_) => ctx.bump("upnp.cp_connect_failed", 1),
        }
    }

    /// Invokes a SOAP action on the device at `location`.
    pub fn invoke(&mut self, ctx: &mut Ctx<'_>, location: Addr, call: &SoapCall, call_id: u64) {
        let xml = call.to_xml();
        ctx.busy(calib::xml_codec_cost(xml.len()));
        let request = HttpRequest::new("POST", "/control")
            .with_header("soapaction", call.soap_action_header())
            .with_body(xml.into_bytes())
            .to_bytes();
        match ctx.connect(location) {
            Ok(stream) => {
                self.pending.insert(
                    stream,
                    Pending::Action {
                        call_id,
                        acc: HttpAccumulator::new(),
                        sent: false,
                        request,
                    },
                );
            }
            Err(_) => ctx.bump("upnp.cp_connect_failed", 1),
        }
    }

    /// Subscribes to a service's GENA events; [`ControlPoint::listen_events`]
    /// must have been called first.
    pub fn subscribe(&mut self, ctx: &mut Ctx<'_>, location: Addr, service: &str) {
        let Some(callback) = self.event_callback(ctx) else {
            ctx.bump("upnp.cp_subscribe_without_listener", 1);
            return;
        };
        let request = Subscribe {
            service: service.to_owned(),
            callback,
        }
        .to_request()
        .to_bytes();
        match ctx.connect(location) {
            Ok(stream) => {
                self.pending.insert(
                    stream,
                    Pending::Subscribe {
                        service: service.to_owned(),
                        location,
                        acc: HttpAccumulator::new(),
                        sent: false,
                        request,
                    },
                );
            }
            Err(_) => ctx.bump("upnp.cp_connect_failed", 1),
        }
    }

    /// Processes a stream event; returns any completed [`CpEvent`]s.
    pub fn handle_stream(
        &mut self,
        ctx: &mut Ctx<'_>,
        stream: StreamId,
        event: StreamEvent,
    ) -> Vec<CpEvent> {
        let mut out = Vec::new();
        match event {
            StreamEvent::Accepted { .. } => {
                // Inbound GENA notify connection.
                self.pending.insert(
                    stream,
                    Pending::Inbound {
                        acc: HttpAccumulator::new(),
                    },
                );
            }
            StreamEvent::Connected => {
                if let Some(p) = self.pending.get_mut(&stream) {
                    let (sent, request) = match p {
                        Pending::Description { sent, request, .. }
                        | Pending::Action { sent, request, .. }
                        | Pending::Subscribe { sent, request, .. } => (sent, request),
                        Pending::Inbound { .. } => return out,
                    };
                    if !*sent {
                        *sent = true;
                        let bytes = std::mem::take(request);
                        let _ = ctx.stream_send(stream, bytes);
                    }
                }
            }
            StreamEvent::Data(data) => {
                let Some(p) = self.pending.get_mut(&stream) else {
                    return out;
                };
                match p {
                    Pending::Inbound { acc } => {
                        acc.push_payload(data);
                        while let Some(msg) = acc.take_message() {
                            if let Ok(HttpMessage::Request(req)) = msg {
                                if let Some(n) = Notify::from_request(&req) {
                                    ctx.busy(calib::xml_codec_cost(req.body.len()));
                                    out.push(CpEvent::Event(n));
                                }
                                let _ = ctx.stream_send(stream, HttpResponse::new(200).to_bytes());
                            }
                        }
                    }
                    _ => {
                        let acc = match p {
                            Pending::Description { acc, .. }
                            | Pending::Action { acc, .. }
                            | Pending::Subscribe { acc, .. } => acc,
                            Pending::Inbound { .. } => unreachable!("handled above"),
                        };
                        acc.push_payload(data);
                        if let Some(msg) = acc.take_message() {
                            let done = self.pending.remove(&stream).expect("present");
                            ctx.stream_close(stream);
                            out.extend(self.complete(ctx, done, msg));
                        }
                    }
                }
            }
            StreamEvent::Closed => {
                // Server closed; if a full message was already consumed
                // the entry is gone. Otherwise it's a failure.
                if let Some(p) = self.pending.remove(&stream) {
                    if let Pending::Inbound { .. } = p {
                        return out;
                    }
                    out.push(CpEvent::Failed {
                        context: context_of(&p),
                    });
                }
            }
            StreamEvent::ConnectFailed => {
                if let Some(p) = self.pending.remove(&stream) {
                    out.push(CpEvent::Failed {
                        context: context_of(&p),
                    });
                }
            }
            StreamEvent::Writable => {}
        }
        out
    }

    fn complete(
        &mut self,
        ctx: &mut Ctx<'_>,
        pending: Pending,
        msg: Result<HttpMessage, String>,
    ) -> Vec<CpEvent> {
        let Ok(HttpMessage::Response(resp)) = msg else {
            return vec![CpEvent::Failed {
                context: context_of(&pending),
            }];
        };
        match pending {
            Pending::Description { location, .. } => {
                ctx.busy(calib::xml_codec_cost(resp.body.len()));
                match std::str::from_utf8(&resp.body)
                    .ok()
                    .and_then(DeviceDesc::parse)
                {
                    Some(desc) => vec![CpEvent::Description {
                        location,
                        desc,
                        raw_len: resp.body.len(),
                    }],
                    None => vec![CpEvent::Failed {
                        context: format!("description from {location}"),
                    }],
                }
            }
            Pending::Action { call_id, .. } => {
                ctx.busy(calib::xml_codec_cost(resp.body.len()));
                match std::str::from_utf8(&resp.body)
                    .ok()
                    .and_then(SoapResult::parse)
                {
                    Some(result) => vec![CpEvent::ActionResult { call_id, result }],
                    None => vec![CpEvent::Failed {
                        context: format!("action {call_id}"),
                    }],
                }
            }
            Pending::Subscribe {
                service, location, ..
            } => {
                if resp.status == 200 {
                    vec![CpEvent::Subscribed { service, location }]
                } else {
                    vec![CpEvent::Failed {
                        context: format!("subscribe {service}"),
                    }]
                }
            }
            Pending::Inbound { .. } => Vec::new(),
        }
    }
}

fn context_of(p: &Pending) -> String {
    match p {
        Pending::Description { location, .. } => format!("description from {location}"),
        Pending::Action { call_id, .. } => format!("action {call_id}"),
        Pending::Subscribe { service, .. } => format!("subscribe {service}"),
        Pending::Inbound { .. } => "inbound".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::UpnpDevice;
    use crate::devices::LightLogic;
    use simnet::{LocalMessage, ProcId, Process, SegmentConfig, SimTime, World};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A test harness process that discovers a light, fetches its
    /// description, subscribes, flips the switch and records everything.
    struct Harness {
        cp: ControlPoint,
        log: Rc<RefCell<Vec<String>>>,
        invoked: bool,
    }

    impl Process for Harness {
        fn name(&self) -> &str {
            "harness"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.bind(6000).unwrap();
            let _ = ctx.join_group(crate::ssdp::SSDP_GROUP);
            self.cp.listen_events(ctx, 6001);
            self.cp.search(ctx, "ssdp:all", 6000);
        }
        fn on_datagram(&mut self, ctx: &mut Ctx<'_>, d: Datagram) {
            if let Some(CpEvent::DeviceSeen { location, .. }) = self.cp.handle_ssdp(ctx, &d) {
                self.log.borrow_mut().push("seen".to_owned());
                self.cp.fetch_description(ctx, location);
            }
        }
        fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
            for ev in self.cp.handle_stream(ctx, stream, event) {
                match ev {
                    CpEvent::Description { location, desc, .. } => {
                        self.log
                            .borrow_mut()
                            .push(format!("desc:{}", desc.friendly_name));
                        self.cp.subscribe(ctx, location, "SwitchPower");
                        if !self.invoked {
                            self.invoked = true;
                            let call =
                                SoapCall::new("SwitchPower", "SetPower").with_arg("Power", "1");
                            self.cp.invoke(ctx, location, &call, 1);
                        }
                    }
                    CpEvent::ActionResult { result, .. } => {
                        self.log.borrow_mut().push(format!("result:{result:?}"));
                    }
                    CpEvent::Subscribed { service, .. } => {
                        self.log.borrow_mut().push(format!("subscribed:{service}"));
                    }
                    CpEvent::Event(n) => {
                        for (k, v) in &n.changes {
                            self.log.borrow_mut().push(format!("event:{k}={v}"));
                        }
                    }
                    CpEvent::Failed { context } => {
                        self.log.borrow_mut().push(format!("failed:{context}"));
                    }
                    _ => {}
                }
            }
        }
        fn on_local(&mut self, _ctx: &mut Ctx<'_>, _from: ProcId, _msg: LocalMessage) {}
    }

    #[test]
    fn full_discovery_control_eventing_cycle() {
        let mut world = World::new(11);
        let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
        let dev_node = world.add_node("device-host");
        let cp_node = world.add_node("cp-host");
        world.attach(dev_node, hub).unwrap();
        world.attach(cp_node, hub).unwrap();
        world.add_process(
            dev_node,
            Box::new(UpnpDevice::new(
                Box::new(LightLogic::new("Hall Light", "uuid:hall")),
                5000,
            )),
        );
        let log = Rc::new(RefCell::new(Vec::new()));
        world.add_process(
            cp_node,
            Box::new(Harness {
                cp: ControlPoint::new(),
                log: Rc::clone(&log),
                invoked: false,
            }),
        );
        world.run_until(SimTime::from_secs(5));
        let log = log.borrow();
        assert!(log.iter().any(|l| l == "seen"), "{log:?}");
        assert!(log.iter().any(|l| l == "desc:Hall Light"), "{log:?}");
        assert!(log.iter().any(|l| l.starts_with("subscribed")), "{log:?}");
        assert!(
            log.iter().any(|l| l.starts_with("result:Ok")),
            "action executed: {log:?}"
        );
        // The SetPower change must arrive as a GENA event.
        assert!(log.iter().any(|l| l == "event:Power=1"), "{log:?}");
    }

    #[test]
    fn action_on_dead_device_reports_failure() {
        let mut world = World::new(3);
        let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
        let a = world.add_node("a");
        let b = world.add_node("b");
        world.attach(a, hub).unwrap();
        world.attach(b, hub).unwrap();

        struct Failer {
            cp: ControlPoint,
            target: Addr,
            failed: Rc<RefCell<bool>>,
        }
        impl Process for Failer {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let call = SoapCall::new("S", "A");
                self.cp.invoke(ctx, self.target, &call, 9);
            }
            fn on_stream(&mut self, ctx: &mut Ctx<'_>, s: StreamId, e: StreamEvent) {
                for ev in self.cp.handle_stream(ctx, s, e) {
                    if matches!(ev, CpEvent::Failed { .. }) {
                        *self.failed.borrow_mut() = true;
                    }
                }
            }
        }
        let failed = Rc::new(RefCell::new(false));
        world.add_process(
            a,
            Box::new(Failer {
                cp: ControlPoint::new(),
                target: Addr::new(b, 5000),
                failed: Rc::clone(&failed),
            }),
        );
        world.run_until(SimTime::from_secs(5));
        assert!(*failed.borrow());
    }
}
