//! GENA — General Event Notification Architecture.
//!
//! UPnP eventing: a control point SUBSCRIBEs to a service; the device
//! NOTIFYs it with property-set XML whenever an evented state variable
//! changes. We model the subset the uMiddle mapper needs: subscribe with
//! a callback address, notify with `(name, value)` pairs, sequence keys.

use simnet::{Addr, NodeId};
use umiddle_usdl::Element;

use crate::http::{HttpRequest, HttpResponse};

/// A GENA subscription request body/headers, carried over HTTP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subscribe {
    /// The service type to subscribe to.
    pub service: String,
    /// Where NOTIFYs should be delivered (an HTTP listener).
    pub callback: Addr,
}

impl Subscribe {
    /// Builds the HTTP request.
    pub fn to_request(&self) -> HttpRequest {
        HttpRequest::new("SUBSCRIBE", &format!("/event/{}", self.service)).with_header(
            "callback",
            format!("{}/{}", self.callback.node.index(), self.callback.port),
        )
    }

    /// Parses a SUBSCRIBE request.
    pub fn from_request(req: &HttpRequest) -> Option<Subscribe> {
        let service = req.path.strip_prefix("/event/")?.to_owned();
        let cb = req.header("callback")?;
        let (node, port) = cb.split_once('/')?;
        Some(Subscribe {
            service,
            callback: Addr::new(NodeId::from_index(node.parse().ok()?), port.parse().ok()?),
        })
    }

    /// The accepting response, carrying a subscription id.
    pub fn accept(sid: u32) -> HttpResponse {
        HttpResponse::new(200).with_header("sid", format!("uuid:sub-{sid}"))
    }
}

/// A GENA event notification: changed state variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notify {
    /// UDN of the device the event came from.
    pub device: String,
    /// Service the event belongs to.
    pub service: String,
    /// Event sequence number (0 is the initial full state push).
    pub seq: u32,
    /// Changed `(variable, value)` pairs.
    pub changes: Vec<(String, String)>,
}

impl Notify {
    /// Builds the HTTP NOTIFY request with a property-set body.
    pub fn to_request(&self) -> HttpRequest {
        let mut propset =
            Element::new("e:propertyset").with_attr("xmlns:e", "urn:schemas-upnp-org:event-1-0");
        for (k, v) in &self.changes {
            propset = propset.with_child(
                Element::new("e:property").with_child(Element::new(k.clone()).with_text(v.clone())),
            );
        }
        HttpRequest::new("NOTIFY", &format!("/notify/{}", self.service))
            .with_header("nts", "upnp:propchange")
            .with_header("seq", self.seq.to_string())
            .with_header("x-device", self.device.clone())
            .with_body(propset.to_document().into_bytes())
    }

    /// Parses a NOTIFY request.
    pub fn from_request(req: &HttpRequest) -> Option<Notify> {
        let service = req.path.strip_prefix("/notify/")?.to_owned();
        let seq = req.header("seq")?.parse().ok()?;
        let device = req.header("x-device")?.to_owned();
        let body = std::str::from_utf8(&req.body).ok()?;
        let root = Element::parse(body).ok()?;
        let mut changes = Vec::new();
        for prop in root.children_named("property") {
            for var in prop.children() {
                changes.push((var.local_name().to_owned(), var.text()));
            }
        }
        Some(Notify {
            device,
            service,
            seq,
            changes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscribe_round_trip() {
        let sub = Subscribe {
            service: "SwitchPower".to_owned(),
            callback: Addr::new(NodeId::from_index(2), 7070),
        };
        let req = sub.to_request();
        assert_eq!(req.method, "SUBSCRIBE");
        assert_eq!(Subscribe::from_request(&req), Some(sub));
        assert_eq!(Subscribe::accept(7).header("sid"), Some("uuid:sub-7"));
    }

    #[test]
    fn notify_round_trip() {
        let n = Notify {
            device: "uuid:42".to_owned(),
            service: "SwitchPower".to_owned(),
            seq: 3,
            changes: vec![("Power".to_owned(), "1".to_owned())],
        };
        let req = n.to_request();
        assert_eq!(req.method, "NOTIFY");
        assert_eq!(Notify::from_request(&req), Some(n));
    }

    #[test]
    fn wrong_paths_rejected() {
        let req = HttpRequest::new("NOTIFY", "/other");
        assert!(Notify::from_request(&req).is_none());
        let req = HttpRequest::new("SUBSCRIBE", "/event/x");
        assert!(Subscribe::from_request(&req).is_none(), "missing callback");
    }
}
