//! A minimal HTTP/1.0 codec over simnet streams.
//!
//! UPnP uses HTTP everywhere: description fetches are GETs, SOAP control
//! is POST, GENA eventing uses SUBSCRIBE/NOTIFY. This module provides the
//! message types, an incremental parser tolerant of arbitrary stream
//! chunking, and serializers. One request per connection (HTTP/1.0
//! semantics, `Connection: close`), which matches the era of the paper's
//! CyberLink stack.

use std::collections::BTreeMap;
use std::fmt;

use simnet::Payload;

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Method: `GET`, `POST`, `SUBSCRIBE`, `NOTIFY`, …
    pub method: String,
    /// Request path (`/description.xml`).
    pub path: String,
    /// Headers with case-insensitive keys (stored lowercase).
    pub headers: BTreeMap<String, String>,
    /// Body bytes (`Content-Length` is derived automatically). A shared
    /// [`Payload`], so a SOAP/GENA body can carry a `UMessage` payload
    /// without copying.
    pub body: Payload,
}

impl HttpRequest {
    /// Creates a request with no headers or body.
    pub fn new(method: &str, path: &str) -> HttpRequest {
        HttpRequest {
            method: method.to_owned(),
            path: path.to_owned(),
            headers: BTreeMap::new(),
            body: Payload::new(),
        }
    }

    /// Adds a header (builder style). Keys are lowercased.
    pub fn with_header(mut self, key: &str, value: impl Into<String>) -> HttpRequest {
        self.headers.insert(key.to_ascii_lowercase(), value.into());
        self
    }

    /// Sets the body (builder style). Passing a `Payload` shares the
    /// buffer without copying.
    pub fn with_body(mut self, body: impl Into<Payload>) -> HttpRequest {
        self.body = body.into();
        self
    }

    /// Looks up a header by case-insensitive name.
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers
            .get(&key.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Serializes to wire bytes as a shared [`Payload`] (freeze, not a
    /// copy), so a queued or retried request clones in O(1).
    pub fn to_bytes(&self) -> Payload {
        let mut out = format!("{} {} HTTP/1.0\r\n", self.method, self.path).into_bytes();
        for (k, v) in &self.headers {
            out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("content-length: {}\r\n\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(&self.body);
        Payload::from_vec(out)
    }
}

impl fmt::Display for HttpRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} ({}B)", self.method, self.path, self.body.len())
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code (200, 404, 500, …).
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Headers with lowercase keys.
    pub headers: BTreeMap<String, String>,
    /// Body bytes, as a shared [`Payload`].
    pub body: Payload,
}

impl HttpResponse {
    /// Creates a response with a standard reason phrase.
    pub fn new(status: u16) -> HttpResponse {
        let reason = match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            412 => "Precondition Failed",
            500 => "Internal Server Error",
            _ => "Unknown",
        };
        HttpResponse {
            status,
            reason: reason.to_owned(),
            headers: BTreeMap::new(),
            body: Payload::new(),
        }
    }

    /// A 200 response carrying an XML body.
    pub fn xml(body: String) -> HttpResponse {
        HttpResponse::new(200)
            .with_header("content-type", "text/xml; charset=\"utf-8\"")
            .with_body(body.into_bytes())
    }

    /// Adds a header (builder style). Keys are lowercased.
    pub fn with_header(mut self, key: &str, value: impl Into<String>) -> HttpResponse {
        self.headers.insert(key.to_ascii_lowercase(), value.into());
        self
    }

    /// Sets the body (builder style). Passing a `Payload` shares the
    /// buffer without copying.
    pub fn with_body(mut self, body: impl Into<Payload>) -> HttpResponse {
        self.body = body.into();
        self
    }

    /// Looks up a header by case-insensitive name.
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers
            .get(&key.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Serializes to wire bytes as a shared [`Payload`].
    pub fn to_bytes(&self) -> Payload {
        let mut out = format!("HTTP/1.0 {} {}\r\n", self.status, self.reason).into_bytes();
        for (k, v) in &self.headers {
            out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("content-length: {}\r\n\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(&self.body);
        Payload::from_vec(out)
    }
}

/// Incremental parser for one HTTP message arriving over a stream.
#[derive(Debug, Default)]
pub struct HttpAccumulator {
    buf: Vec<u8>,
}

/// A parsed HTTP message: request or response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpMessage {
    /// A request (first line starts with a method).
    Request(HttpRequest),
    /// A response (first line starts with `HTTP/`).
    Response(HttpResponse),
}

impl HttpAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> HttpAccumulator {
        HttpAccumulator::default()
    }

    /// Feeds received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Feeds a received stream chunk. Header parsing needs contiguous
    /// text, so the chunk is appended to the line buffer; the *body* is
    /// still handed out as a zero-copy slice by
    /// [`take_message`](Self::take_message).
    pub fn push_payload(&mut self, chunk: Payload) {
        self.buf.extend_from_slice(&chunk);
    }

    /// Attempts to extract one complete message. Returns `None` until the
    /// headers and full body (per `Content-Length`) have arrived. Messages
    /// that fail to parse return `Some(Err(reason))` and consume the
    /// buffered bytes.
    #[allow(clippy::type_complexity)]
    pub fn take_message(&mut self) -> Option<Result<HttpMessage, String>> {
        let header_end = find_subsequence(&self.buf, b"\r\n\r\n")?;
        let header_text = String::from_utf8_lossy(&self.buf[..header_end]).into_owned();
        let mut lines = header_text.split("\r\n");
        let first = lines.next().unwrap_or_default().to_owned();
        let mut headers = BTreeMap::new();
        for line in lines {
            if let Some((k, v)) = line.split_once(':') {
                headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_owned());
            }
        }
        let content_length: usize = headers
            .get("content-length")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let body_start = header_end + 4;
        let total = body_start + content_length;
        if self.buf.len() < total {
            return None;
        }
        // Move the consumed message behind an Arc and slice the body out
        // of it — no per-body copy, and any following pipelined message
        // stays in `buf`.
        let rest = self.buf.split_off(total);
        let message = Payload::from_vec(std::mem::replace(&mut self.buf, rest));
        let body = message.slice(body_start..total);

        let parts: Vec<&str> = first.splitn(3, ' ').collect();
        if first.starts_with("HTTP/") {
            if parts.len() < 2 {
                return Some(Err(format!("bad status line {first:?}")));
            }
            let status: u16 = match parts[1].parse() {
                Ok(s) => s,
                Err(_) => return Some(Err(format!("bad status code in {first:?}"))),
            };
            Some(Ok(HttpMessage::Response(HttpResponse {
                status,
                reason: parts.get(2).unwrap_or(&"").to_string(),
                headers,
                body,
            })))
        } else {
            if parts.len() < 3 {
                return Some(Err(format!("bad request line {first:?}")));
            }
            Some(Ok(HttpMessage::Request(HttpRequest {
                method: parts[0].to_owned(),
                path: parts[1].to_owned(),
                headers,
                body,
            })))
        }
    }
}

fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let req = HttpRequest::new("POST", "/control")
            .with_header("SOAPAction", "\"urn:svc#SetPower\"")
            .with_body(b"<xml/>".to_vec());
        let mut acc = HttpAccumulator::new();
        acc.push(&req.to_bytes());
        match acc.take_message().unwrap().unwrap() {
            HttpMessage::Request(r) => {
                assert_eq!(r.method, "POST");
                assert_eq!(r.path, "/control");
                assert_eq!(r.header("soapaction"), Some("\"urn:svc#SetPower\""));
                assert_eq!(r.body, b"<xml/>");
            }
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn response_round_trip_chunked_arbitrarily() {
        let resp = HttpResponse::xml("<root>hello</root>".to_owned());
        let bytes = resp.to_bytes();
        let mut acc = HttpAccumulator::new();
        for b in &bytes {
            assert!(acc.take_message().is_none());
            acc.push(&[*b]);
        }
        match acc.take_message().unwrap().unwrap() {
            HttpMessage::Response(r) => {
                assert_eq!(r.status, 200);
                assert_eq!(r.body, b"<root>hello</root>");
                assert!(r.header("content-type").unwrap().contains("xml"));
            }
            other => panic!("expected response, got {other:?}"),
        }
    }

    #[test]
    fn two_messages_back_to_back() {
        let a = HttpRequest::new("GET", "/a").to_bytes();
        let b = HttpRequest::new("GET", "/b").to_bytes();
        let mut acc = HttpAccumulator::new();
        acc.push(&a);
        acc.push(&b);
        let m1 = acc.take_message().unwrap().unwrap();
        let m2 = acc.take_message().unwrap().unwrap();
        assert!(acc.take_message().is_none());
        match (m1, m2) {
            (HttpMessage::Request(r1), HttpMessage::Request(r2)) => {
                assert_eq!(r1.path, "/a");
                assert_eq!(r2.path, "/b");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn incomplete_body_waits() {
        let req = HttpRequest::new("POST", "/x").with_body(vec![1, 2, 3, 4]);
        let bytes = req.to_bytes();
        let mut acc = HttpAccumulator::new();
        acc.push(&bytes[..bytes.len() - 1]);
        assert!(acc.take_message().is_none());
        acc.push(&bytes[bytes.len() - 1..]);
        assert!(acc.take_message().is_some());
    }

    #[test]
    fn malformed_first_line_is_an_error_not_a_panic() {
        let mut acc = HttpAccumulator::new();
        acc.push(b"HTTP/1.0\r\ncontent-length: 0\r\n\r\n");
        assert!(acc.take_message().unwrap().is_err());
    }

    /// Any request with arbitrary body round-trips.
    #[test]
    fn request_body_round_trip() {
        simnet::check_cases("http_request_body_round_trip", 256, |_, rng| {
            let len = rng.gen_range(0usize..512);
            let body = rng.gen_bytes(len);
            let req = HttpRequest::new("POST", "/p").with_body(body.clone());
            let mut acc = HttpAccumulator::new();
            acc.push(&req.to_bytes());
            match acc.take_message().unwrap().unwrap() {
                HttpMessage::Request(r) => assert_eq!(r.body, body),
                other => panic!("{other:?}"),
            }
        });
    }

    /// Random bytes never panic the accumulator.
    #[test]
    fn accumulator_never_panics() {
        simnet::check_cases("http_accumulator_never_panics", 256, |_, rng| {
            let len = rng.gen_range(0usize..256);
            let bytes = rng.gen_bytes(len);
            let mut acc = HttpAccumulator::new();
            acc.push(&bytes);
            let _ = acc.take_message();
        });
    }
}
