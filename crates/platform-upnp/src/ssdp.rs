//! SSDP — Simple Service Discovery Protocol.
//!
//! UPnP devices announce themselves with multicast `NOTIFY ssdp:alive`
//! messages, say goodbye with `ssdp:byebye`, and answer multicast
//! `M-SEARCH` queries with unicast responses. Messages are HTTP-like
//! header blocks over UDP; this module provides the codec.

use std::collections::BTreeMap;

use simnet::{Addr, NodeId};

/// The SSDP multicast group port used in the simulation (stands in for
/// 239.255.255.250:1900).
pub const SSDP_GROUP: u16 = 1900;

/// An SSDP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsdpMessage {
    /// A device announces its presence (multicast, periodic).
    Alive {
        /// Unique device name (`uuid:...`).
        usn: String,
        /// Device type URN.
        device_type: String,
        /// Where to fetch the device description.
        location: Addr,
        /// Seconds the advertisement stays valid.
        max_age: u32,
    },
    /// A device announces its departure (multicast).
    ByeBye {
        /// Unique device name.
        usn: String,
        /// Device type URN.
        device_type: String,
    },
    /// A control point searches for devices (multicast). `st` is the
    /// search target: `ssdp:all` or a device type URN.
    MSearch {
        /// Search target.
        st: String,
        /// Unicast address to respond to.
        reply_to: Addr,
    },
    /// A device answers an M-SEARCH (unicast to the searcher).
    SearchResponse {
        /// Unique device name.
        usn: String,
        /// Device type URN.
        device_type: String,
        /// Where to fetch the device description.
        location: Addr,
        /// Seconds the advertisement stays valid.
        max_age: u32,
    },
}

impl SsdpMessage {
    /// Serializes to the HTTP-like SSDP wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = String::new();
        match self {
            SsdpMessage::Alive {
                usn,
                device_type,
                location,
                max_age,
            } => {
                out.push_str("NOTIFY * HTTP/1.1\r\n");
                out.push_str("NTS: ssdp:alive\r\n");
                out.push_str(&format!("USN: {usn}\r\n"));
                out.push_str(&format!("NT: {device_type}\r\n"));
                out.push_str(&format!(
                    "LOCATION: {}/{}\r\n",
                    location.node.index(),
                    location.port
                ));
                out.push_str(&format!("CACHE-CONTROL: max-age={max_age}\r\n"));
            }
            SsdpMessage::ByeBye { usn, device_type } => {
                out.push_str("NOTIFY * HTTP/1.1\r\n");
                out.push_str("NTS: ssdp:byebye\r\n");
                out.push_str(&format!("USN: {usn}\r\n"));
                out.push_str(&format!("NT: {device_type}\r\n"));
            }
            SsdpMessage::MSearch { st, reply_to } => {
                out.push_str("M-SEARCH * HTTP/1.1\r\n");
                out.push_str("MAN: \"ssdp:discover\"\r\n");
                out.push_str(&format!("ST: {st}\r\n"));
                out.push_str(&format!(
                    "REPLY-TO: {}/{}\r\n",
                    reply_to.node.index(),
                    reply_to.port
                ));
            }
            SsdpMessage::SearchResponse {
                usn,
                device_type,
                location,
                max_age,
            } => {
                out.push_str("HTTP/1.1 200 OK\r\n");
                out.push_str(&format!("USN: {usn}\r\n"));
                out.push_str(&format!("ST: {device_type}\r\n"));
                out.push_str(&format!(
                    "LOCATION: {}/{}\r\n",
                    location.node.index(),
                    location.port
                ));
                out.push_str(&format!("CACHE-CONTROL: max-age={max_age}\r\n"));
            }
        }
        out.push_str("\r\n");
        out.into_bytes()
    }

    /// Parses a wire message. Returns `None` on anything that is not a
    /// recognizable SSDP message (robustness against stray traffic).
    pub fn parse(bytes: &[u8]) -> Option<SsdpMessage> {
        let text = std::str::from_utf8(bytes).ok()?;
        let mut lines = text.split("\r\n");
        let first = lines.next()?;
        let mut headers: BTreeMap<String, String> = BTreeMap::new();
        for line in lines {
            if let Some((k, v)) = line.split_once(':') {
                headers.insert(k.trim().to_ascii_uppercase(), v.trim().to_owned());
            }
        }
        let parse_addr = |s: &str| -> Option<Addr> {
            let (node, port) = s.split_once('/')?;
            Some(Addr::new(
                NodeId::from_index(node.parse().ok()?),
                port.parse().ok()?,
            ))
        };
        let max_age = |headers: &BTreeMap<String, String>| -> u32 {
            headers
                .get("CACHE-CONTROL")
                .and_then(|v| v.strip_prefix("max-age="))
                .and_then(|v| v.parse().ok())
                .unwrap_or(1800)
        };
        if first.starts_with("NOTIFY") {
            match headers.get("NTS").map(String::as_str) {
                Some("ssdp:alive") => Some(SsdpMessage::Alive {
                    usn: headers.get("USN")?.clone(),
                    device_type: headers.get("NT")?.clone(),
                    location: parse_addr(headers.get("LOCATION")?)?,
                    max_age: max_age(&headers),
                }),
                Some("ssdp:byebye") => Some(SsdpMessage::ByeBye {
                    usn: headers.get("USN")?.clone(),
                    device_type: headers.get("NT")?.clone(),
                }),
                _ => None,
            }
        } else if first.starts_with("M-SEARCH") {
            Some(SsdpMessage::MSearch {
                st: headers.get("ST")?.clone(),
                reply_to: parse_addr(headers.get("REPLY-TO")?)?,
            })
        } else if first.starts_with("HTTP/1.1 200") {
            Some(SsdpMessage::SearchResponse {
                usn: headers.get("USN")?.clone(),
                device_type: headers.get("ST")?.clone(),
                location: parse_addr(headers.get("LOCATION")?)?,
                max_age: max_age(&headers),
            })
        } else {
            None
        }
    }

    /// Returns `true` if an M-SEARCH target matches a device type.
    pub fn search_matches(st: &str, device_type: &str) -> bool {
        st == "ssdp:all" || st == device_type
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: usize, p: u16) -> Addr {
        Addr::new(NodeId::from_index(n), p)
    }

    #[test]
    fn all_variants_round_trip() {
        let msgs = vec![
            SsdpMessage::Alive {
                usn: "uuid:1234".to_owned(),
                device_type: "urn:umiddle:device:Clock:1".to_owned(),
                location: addr(3, 5000),
                max_age: 1800,
            },
            SsdpMessage::ByeBye {
                usn: "uuid:1234".to_owned(),
                device_type: "urn:umiddle:device:Clock:1".to_owned(),
            },
            SsdpMessage::MSearch {
                st: "ssdp:all".to_owned(),
                reply_to: addr(0, 6000),
            },
            SsdpMessage::SearchResponse {
                usn: "uuid:5678".to_owned(),
                device_type: "urn:umiddle:device:BinaryLight:1".to_owned(),
                location: addr(1, 5000),
                max_age: 120,
            },
        ];
        for m in msgs {
            assert_eq!(SsdpMessage::parse(&m.to_bytes()), Some(m));
        }
    }

    #[test]
    fn search_target_matching() {
        assert!(SsdpMessage::search_matches("ssdp:all", "urn:x:Clock:1"));
        assert!(SsdpMessage::search_matches(
            "urn:x:Clock:1",
            "urn:x:Clock:1"
        ));
        assert!(!SsdpMessage::search_matches(
            "urn:x:Light:1",
            "urn:x:Clock:1"
        ));
    }

    #[test]
    fn garbage_is_rejected_not_panicking() {
        assert_eq!(SsdpMessage::parse(b"GET / HTTP/1.0\r\n\r\n"), None);
        assert_eq!(SsdpMessage::parse(&[0xff, 0xfe]), None);
        assert_eq!(SsdpMessage::parse(b""), None);
        // NOTIFY with missing NTS.
        assert_eq!(SsdpMessage::parse(b"NOTIFY * HTTP/1.1\r\n\r\n"), None);
    }

    #[test]
    fn parse_never_panics() {
        simnet::check_cases("ssdp_parse_never_panics", 256, |_, rng| {
            let len = rng.gen_range(0usize..256);
            let bytes = rng.gen_bytes(len);
            let _ = SsdpMessage::parse(&bytes);
        });
    }
}
