//! # platform-upnp — a simulated UPnP platform
//!
//! One of the native communication platforms the uMiddle reproduction
//! bridges. The paper's testbed used CyberLink's Java UPnP stack with
//! emulated clock, light and air-conditioner devices plus a MediaRenderer
//! TV; this crate rebuilds that stack on [`simnet`]:
//!
//! * [`SsdpMessage`]: SSDP discovery over simulated UDP multicast
//!   (alive / byebye / M-SEARCH / responses).
//! * [`HttpRequest`]/[`HttpResponse`]/[`HttpAccumulator`]: HTTP/1.0 over
//!   simulated TCP streams.
//! * [`SoapCall`]/[`SoapResult`]: SOAP 1.1 action envelopes.
//! * [`Subscribe`]/[`Notify`]: GENA eventing.
//! * [`UpnpDevice`] + [`DeviceLogic`]: the generic emulated device engine
//!   with pluggable behaviour — [`ClockLogic`] (two services, the paper's
//!   most expensive translator), [`LightLogic`] (the §5.2 SetPower
//!   benchmark target), [`AirconLogic`], [`MediaRendererLogic`].
//! * [`ControlPoint`]: the client engine the uMiddle mapper embeds.
//!
//! CPU costs are calibrated in [`calib`] to the paper's 2006-era Java
//! stack, where XML marshaling dominates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calib;
mod client;
mod description;
mod device;
mod devices;
mod gena;
mod http;
mod soap;
mod ssdp;

pub use client::{ControlPoint, CpEvent};
pub use description::{ActionArg, ActionDesc, ArgDirection, DeviceDesc, ServiceDesc, StateVarDesc};
pub use device::{DeviceLogic, StateTable, UpnpDevice};
pub use devices::{AirconLogic, ClockLogic, LightLogic, MediaRendererLogic};
pub use gena::{Notify, Subscribe};
pub use http::{HttpAccumulator, HttpMessage, HttpRequest, HttpResponse};
pub use soap::{SoapCall, SoapResult};
pub use ssdp::{SsdpMessage, SSDP_GROUP};
