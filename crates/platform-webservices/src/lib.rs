//! # platform-webservices — a simulated web-services platform
//!
//! The paper bridges "various web services". We model XML-RPC-style
//! services: each exposes a fetchable XML description
//! ([`ServiceDescription`]) and accepts [`MethodCall`]s over HTTP POST
//! (reusing the HTTP codec from `platform-upnp` — the stacks genuinely
//! shared HTTP in that era). [`WsServer`] hosts pluggable operations;
//! [`WsClient`] is the engine the uMiddle mapper embeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use platform_upnp::{HttpAccumulator, HttpMessage, HttpRequest, HttpResponse};
use simnet::{Addr, Ctx, Payload, Process, SimDuration, StreamEvent, StreamId};
use umiddle_usdl::Element;

/// Host-side XML processing cost per call or response.
pub const WS_XML_COST: SimDuration = SimDuration::from_millis(8);

/// An XML-RPC-style method call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodCall {
    /// Operation name.
    pub method: String,
    /// String parameters, in order.
    pub params: Vec<String>,
}

impl MethodCall {
    /// Creates a call.
    pub fn new(method: &str, params: Vec<String>) -> MethodCall {
        MethodCall {
            method: method.to_owned(),
            params,
        }
    }

    /// Serializes to XML.
    pub fn to_xml(&self) -> String {
        let mut root = Element::new("methodCall")
            .with_child(Element::new("methodName").with_text(&self.method));
        let mut params = Element::new("params");
        for p in &self.params {
            params = params.with_child(
                Element::new("param").with_child(Element::new("value").with_text(p.clone())),
            );
        }
        root = root.with_child(params);
        root.to_document()
    }

    /// Parses from XML.
    pub fn parse(xml: &str) -> Option<MethodCall> {
        let root = Element::parse(xml).ok()?;
        if root.local_name() != "methodCall" {
            return None;
        }
        let method = root.child("methodName")?.text();
        let params = root
            .child("params")
            .map(|ps| {
                ps.children_named("param")
                    .filter_map(|p| p.child("value").map(Element::text))
                    .collect()
            })
            .unwrap_or_default();
        Some(MethodCall { method, params })
    }
}

/// The reply to a method call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MethodResponse {
    /// Success with a string value.
    Value(String),
    /// A fault with code and message.
    Fault {
        /// Fault code.
        code: i32,
        /// Fault description.
        message: String,
    },
}

impl MethodResponse {
    /// Serializes to XML.
    pub fn to_xml(&self) -> String {
        let root = match self {
            MethodResponse::Value(v) => {
                Element::new("methodResponse").with_child(Element::new("params").with_child(
                    Element::new("param").with_child(Element::new("value").with_text(v.clone())),
                ))
            }
            MethodResponse::Fault { code, message } => Element::new("methodResponse").with_child(
                Element::new("fault")
                    .with_child(Element::new("faultCode").with_text(code.to_string()))
                    .with_child(Element::new("faultString").with_text(message.clone())),
            ),
        };
        root.to_document()
    }

    /// Parses from XML.
    pub fn parse(xml: &str) -> Option<MethodResponse> {
        let root = Element::parse(xml).ok()?;
        if root.local_name() != "methodResponse" {
            return None;
        }
        if let Some(fault) = root.child("fault") {
            return Some(MethodResponse::Fault {
                code: fault.child("faultCode")?.text().parse().ok()?,
                message: fault.child("faultString")?.text(),
            });
        }
        Some(MethodResponse::Value(
            root.child("params")?.child("param")?.child("value")?.text(),
        ))
    }
}

/// A service's self-description, served at `/service.xml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceDescription {
    /// Service name.
    pub name: String,
    /// Service kind keyed by the mapper's USDL lookup (`logger`,
    /// `weather`, …).
    pub kind: String,
    /// Operation names.
    pub operations: Vec<String>,
}

impl ServiceDescription {
    /// Serializes to XML.
    pub fn to_xml(&self) -> String {
        let mut root = Element::new("service")
            .with_attr("name", &self.name)
            .with_attr("kind", &self.kind);
        for op in &self.operations {
            root = root.with_child(Element::new("operation").with_attr("name", op));
        }
        root.to_document()
    }

    /// Parses from XML.
    pub fn parse(xml: &str) -> Option<ServiceDescription> {
        let root = Element::parse(xml).ok()?;
        if root.local_name() != "service" {
            return None;
        }
        Some(ServiceDescription {
            name: root.attr("name")?.to_owned(),
            kind: root.attr("kind")?.to_owned(),
            operations: root
                .children_named("operation")
                .filter_map(|o| o.attr("name").map(str::to_owned))
                .collect(),
        })
    }
}

/// An operation implementation.
pub type Operation = Box<dyn FnMut(&[String]) -> Result<String, String>>;

/// A web-service server process.
pub struct WsServer {
    description: ServiceDescription,
    port: u16,
    operations: HashMap<String, Operation>,
    conns: HashMap<StreamId, HttpAccumulator>,
}

impl std::fmt::Debug for WsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WsServer")
            .field("name", &self.description.name)
            .field("port", &self.port)
            .finish_non_exhaustive()
    }
}

impl WsServer {
    /// Creates a server for `kind` named `name` on `port`.
    pub fn new(name: &str, kind: &str, port: u16) -> WsServer {
        WsServer {
            description: ServiceDescription {
                name: name.to_owned(),
                kind: kind.to_owned(),
                operations: Vec::new(),
            },
            port,
            operations: HashMap::new(),
            conns: HashMap::new(),
        }
    }

    /// Registers an operation (builder style).
    pub fn with_operation(mut self, name: &str, op: Operation) -> WsServer {
        self.description.operations.push(name.to_owned());
        self.operations.insert(name.to_owned(), op);
        self
    }

    /// A log service matching the bundled `logger` USDL document:
    /// `append(entry)` and `tail()`.
    pub fn logger(name: &str, port: u16) -> WsServer {
        let log: std::rc::Rc<std::cell::RefCell<Vec<String>>> =
            std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let log2 = std::rc::Rc::clone(&log);
        WsServer::new(name, "logger", port)
            .with_operation(
                "append",
                Box::new(move |params| {
                    let entry = params.first().cloned().unwrap_or_default();
                    log.borrow_mut().push(entry);
                    Ok("ok".to_owned())
                }),
            )
            .with_operation(
                "tail",
                Box::new(move |_| {
                    let entries = log2.borrow();
                    Ok(entries
                        .iter()
                        .rev()
                        .take(10)
                        .rev()
                        .cloned()
                        .collect::<Vec<_>>()
                        .join("\n"))
                }),
            )
    }

    /// A weather service matching the bundled `weather` USDL document.
    pub fn weather(name: &str, port: u16) -> WsServer {
        let location = std::rc::Rc::new(std::cell::RefCell::new("atlanta".to_owned()));
        let location2 = std::rc::Rc::clone(&location);
        WsServer::new(name, "weather", port)
            .with_operation(
                "current",
                Box::new(move |_| Ok(format!("sunny in {} at 24C", location.borrow()))),
            )
            .with_operation(
                "locate",
                Box::new(move |params| {
                    let loc = params
                        .first()
                        .cloned()
                        .ok_or_else(|| "missing location".to_owned())?;
                    *location2.borrow_mut() = loc;
                    Ok("ok".to_owned())
                }),
            )
    }
}

impl Process for WsServer {
    fn name(&self) -> &str {
        "ws-server"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(self.port).expect("ws port free");
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
        match event {
            StreamEvent::Accepted { .. } => {
                self.conns.insert(stream, HttpAccumulator::new());
            }
            StreamEvent::Data(data) => {
                let Some(acc) = self.conns.get_mut(&stream) else {
                    return;
                };
                acc.push_payload(data);
                let Some(Ok(HttpMessage::Request(req))) = acc.take_message() else {
                    return;
                };
                ctx.busy(WS_XML_COST);
                let response = match (req.method.as_str(), req.path.as_str()) {
                    ("GET", "/service.xml") => HttpResponse::xml(self.description.to_xml()),
                    ("POST", "/rpc") => {
                        let call = std::str::from_utf8(&req.body)
                            .ok()
                            .and_then(MethodCall::parse);
                        let resp = match call {
                            Some(call) => match self.operations.get_mut(&call.method) {
                                Some(op) => match op(&call.params) {
                                    Ok(v) => MethodResponse::Value(v),
                                    Err(m) => MethodResponse::Fault {
                                        code: 500,
                                        message: m,
                                    },
                                },
                                None => MethodResponse::Fault {
                                    code: 404,
                                    message: format!("no operation {}", call.method),
                                },
                            },
                            None => MethodResponse::Fault {
                                code: 400,
                                message: "malformed call".to_owned(),
                            },
                        };
                        ctx.bump("ws.calls", 1);
                        HttpResponse::xml(resp.to_xml())
                    }
                    _ => HttpResponse::new(404),
                };
                let _ = ctx.stream_send(stream, response.to_bytes());
                ctx.stream_close(stream);
            }
            StreamEvent::Closed | StreamEvent::ConnectFailed => {
                self.conns.remove(&stream);
            }
            _ => {}
        }
    }
}

/// Client-side events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WsEvent {
    /// A description fetch completed.
    Description {
        /// Where it came from.
        location: Addr,
        /// The description.
        desc: ServiceDescription,
    },
    /// A call completed.
    CallResult {
        /// Correlation id.
        call_id: u64,
        /// The response.
        response: MethodResponse,
    },
    /// A request failed at the transport level.
    Failed {
        /// Correlation id (0 for description fetches).
        call_id: u64,
    },
}

#[derive(Debug)]
enum WsPending {
    Describe {
        location: Addr,
        acc: HttpAccumulator,
        request: Payload,
    },
    Call {
        call_id: u64,
        acc: HttpAccumulator,
        request: Payload,
    },
}

/// The client engine for host processes (the uMiddle mapper, tests).
#[derive(Debug, Default)]
pub struct WsClient {
    pending: HashMap<StreamId, WsPending>,
}

impl WsClient {
    /// Creates a client.
    pub fn new() -> WsClient {
        WsClient::default()
    }

    /// Fetches `/service.xml` from a service.
    pub fn describe(&mut self, ctx: &mut Ctx<'_>, location: Addr) {
        let request = HttpRequest::new("GET", "/service.xml").to_bytes();
        if let Ok(stream) = ctx.connect(location) {
            self.pending.insert(
                stream,
                WsPending::Describe {
                    location,
                    acc: HttpAccumulator::new(),
                    request,
                },
            );
        }
    }

    /// Invokes an operation.
    pub fn call(&mut self, ctx: &mut Ctx<'_>, location: Addr, call: &MethodCall, call_id: u64) {
        ctx.busy(WS_XML_COST);
        let request = HttpRequest::new("POST", "/rpc")
            .with_body(call.to_xml().into_bytes())
            .to_bytes();
        if let Ok(stream) = ctx.connect(location) {
            self.pending.insert(
                stream,
                WsPending::Call {
                    call_id,
                    acc: HttpAccumulator::new(),
                    request,
                },
            );
        }
    }

    /// Feeds a stream event; returns completed operations.
    pub fn handle_stream(
        &mut self,
        ctx: &mut Ctx<'_>,
        stream: StreamId,
        event: StreamEvent,
    ) -> Vec<WsEvent> {
        let mut out = Vec::new();
        match event {
            StreamEvent::Connected => {
                if let Some(p) = self.pending.get_mut(&stream) {
                    let request = match p {
                        WsPending::Describe { request, .. } | WsPending::Call { request, .. } => {
                            std::mem::take(request)
                        }
                    };
                    let _ = ctx.stream_send(stream, request);
                }
            }
            StreamEvent::Data(data) => {
                let Some(p) = self.pending.get_mut(&stream) else {
                    return out;
                };
                let acc = match p {
                    WsPending::Describe { acc, .. } | WsPending::Call { acc, .. } => acc,
                };
                acc.push_payload(data);
                if let Some(msg) = acc.take_message() {
                    let p = self.pending.remove(&stream).expect("present");
                    ctx.stream_close(stream);
                    ctx.busy(WS_XML_COST);
                    match (p, msg) {
                        (WsPending::Describe { location, .. }, Ok(HttpMessage::Response(r))) => {
                            match std::str::from_utf8(&r.body)
                                .ok()
                                .and_then(ServiceDescription::parse)
                            {
                                Some(desc) => out.push(WsEvent::Description { location, desc }),
                                None => out.push(WsEvent::Failed { call_id: 0 }),
                            }
                        }
                        (WsPending::Call { call_id, .. }, Ok(HttpMessage::Response(r))) => {
                            match std::str::from_utf8(&r.body)
                                .ok()
                                .and_then(MethodResponse::parse)
                            {
                                Some(response) => {
                                    out.push(WsEvent::CallResult { call_id, response })
                                }
                                None => out.push(WsEvent::Failed { call_id }),
                            }
                        }
                        (WsPending::Describe { .. }, _) => out.push(WsEvent::Failed { call_id: 0 }),
                        (WsPending::Call { call_id, .. }, _) => {
                            out.push(WsEvent::Failed { call_id })
                        }
                    }
                }
            }
            StreamEvent::Closed | StreamEvent::ConnectFailed => {
                if let Some(p) = self.pending.remove(&stream) {
                    let call_id = match p {
                        WsPending::Describe { .. } => 0,
                        WsPending::Call { call_id, .. } => call_id,
                    };
                    out.push(WsEvent::Failed { call_id });
                }
            }
            _ => {}
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{SegmentConfig, SimTime, World};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn call_and_response_round_trip() {
        let call = MethodCall::new("append", vec!["hello".to_owned(), "x<y".to_owned()]);
        assert_eq!(MethodCall::parse(&call.to_xml()), Some(call));
        for r in [
            MethodResponse::Value("ok".to_owned()),
            MethodResponse::Fault {
                code: 404,
                message: "no & such".to_owned(),
            },
        ] {
            assert_eq!(MethodResponse::parse(&r.to_xml()), Some(r));
        }
    }

    #[test]
    fn description_round_trip() {
        let d = ServiceDescription {
            name: "Event Log".to_owned(),
            kind: "logger".to_owned(),
            operations: vec!["append".to_owned(), "tail".to_owned()],
        };
        assert_eq!(ServiceDescription::parse(&d.to_xml()), Some(d));
    }

    struct Driver {
        client: WsClient,
        target: Addr,
        results: Rc<RefCell<Vec<WsEvent>>>,
        step: u32,
    }
    impl Process for Driver {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.client.describe(ctx, self.target);
        }
        fn on_stream(&mut self, ctx: &mut Ctx<'_>, s: StreamId, e: StreamEvent) {
            for ev in self.client.handle_stream(ctx, s, e) {
                match &ev {
                    WsEvent::Description { location, .. } => {
                        self.step = 1;
                        let call = MethodCall::new("append", vec!["entry one".to_owned()]);
                        self.client.call(ctx, *location, &call, 1);
                    }
                    WsEvent::CallResult { call_id: 1, .. } => {
                        let call = MethodCall::new("tail", vec![]);
                        self.client.call(ctx, self.target, &call, 2);
                    }
                    _ => {}
                }
                self.results.borrow_mut().push(ev);
            }
        }
    }

    #[test]
    fn describe_append_tail_cycle() {
        let mut world = World::new(61);
        let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
        let s_node = world.add_node("server");
        let c_node = world.add_node("client");
        world.attach(s_node, hub).unwrap();
        world.attach(c_node, hub).unwrap();
        world.add_process(s_node, Box::new(WsServer::logger("Event Log", 8080)));
        let results = Rc::new(RefCell::new(Vec::new()));
        world.add_process(
            c_node,
            Box::new(Driver {
                client: WsClient::new(),
                target: Addr::new(s_node, 8080),
                results: Rc::clone(&results),
                step: 0,
            }),
        );
        world.run_until(SimTime::from_secs(5));
        let results = results.borrow();
        assert!(
            matches!(results.first(), Some(WsEvent::Description { desc, .. }) if desc.kind == "logger")
        );
        assert!(matches!(
            results.get(1),
            Some(WsEvent::CallResult {
                call_id: 1,
                response: MethodResponse::Value(_)
            })
        ));
        match results.get(2) {
            Some(WsEvent::CallResult {
                call_id: 2,
                response: MethodResponse::Value(v),
            }) => assert_eq!(v, "entry one"),
            other => panic!("expected tail result, got {other:?}"),
        }
    }

    #[test]
    fn unknown_operation_faults() {
        let mut world = World::new(62);
        let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
        let s_node = world.add_node("server");
        let c_node = world.add_node("client");
        world.attach(s_node, hub).unwrap();
        world.attach(c_node, hub).unwrap();
        world.add_process(s_node, Box::new(WsServer::weather("Weather", 8080)));
        let results = Rc::new(RefCell::new(Vec::new()));
        struct One {
            client: WsClient,
            target: Addr,
            results: Rc<RefCell<Vec<WsEvent>>>,
        }
        impl Process for One {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let call = MethodCall::new("explode", vec![]);
                self.client.call(ctx, self.target, &call, 5);
            }
            fn on_stream(&mut self, ctx: &mut Ctx<'_>, s: StreamId, e: StreamEvent) {
                self.results
                    .borrow_mut()
                    .extend(self.client.handle_stream(ctx, s, e));
            }
        }
        world.add_process(
            c_node,
            Box::new(One {
                client: WsClient::new(),
                target: Addr::new(s_node, 8080),
                results: Rc::clone(&results),
            }),
        );
        world.run_until(SimTime::from_secs(3));
        assert!(matches!(
            results.borrow().first(),
            Some(WsEvent::CallResult {
                call_id: 5,
                response: MethodResponse::Fault { code: 404, .. }
            })
        ));
    }
}
