//! Integration tests for a federation of uMiddle runtimes: directory
//! convergence, cross-runtime message paths, dynamic device binding, QoS
//! and failure injection.

use std::cell::RefCell;
use std::rc::Rc;

use simnet::{
    Ctx, LocalMessage, NodeId, ProcId, Process, SegmentConfig, SimDuration, SimTime, World,
};
use umiddle_core::{
    ack_input_done, handle_input_done_echo, Direction, DirectoryEvent, PortKind, PortRef,
    QosPolicy, Query, RuntimeClient, RuntimeConfig, RuntimeEvent, RuntimeId, Shape, TranslatorId,
    TranslatorProfile, UMessage, UmiddleRuntime,
};

/// A native uMiddle service: registers one translator, records inputs,
/// reports directory events, and can emit messages on timers.
struct TestService {
    name: String,
    shape: Shape,
    runtime: ProcId,
    client: Option<RuntimeClient>,
    id: Rc<RefCell<Option<TranslatorId>>>,
    received: Rc<RefCell<Vec<(String, UMessage)>>>,
    directory_events: Rc<RefCell<Vec<DirectoryEvent>>>,
    /// `(delay, port, message)` emissions scheduled at start.
    emit_at: Vec<(SimDuration, String, UMessage)>,
    /// Processing cost per input (QoS tests).
    input_cost: SimDuration,
    subscribe: Option<Query>,
}

impl TestService {
    fn new(name: &str, shape: Shape, runtime: ProcId) -> TestService {
        TestService {
            name: name.to_owned(),
            shape,
            runtime,
            client: None,
            id: Rc::new(RefCell::new(None)),
            received: Rc::new(RefCell::new(Vec::new())),
            directory_events: Rc::new(RefCell::new(Vec::new())),
            emit_at: Vec::new(),
            input_cost: SimDuration::ZERO,
            subscribe: None,
        }
    }
}

impl Process for TestService {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let mut client = RuntimeClient::new(self.runtime);
        let placeholder = TranslatorId::new(RuntimeId(u32::MAX), 0);
        let profile = TranslatorProfile::builder(placeholder, self.name.clone())
            .shape(self.shape.clone())
            .build();
        let me = ctx.me();
        client.register(ctx, profile, me);
        if let Some(q) = self.subscribe.clone() {
            client.add_listener(ctx, q);
        }
        self.client = Some(client);
        for (i, (delay, _, _)) in self.emit_at.iter().enumerate() {
            ctx.set_timer(*delay, i as u64);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let Some((_, port, msg)) = self.emit_at.get(token as usize).cloned() else {
            return;
        };
        let Some(id) = *self.id.borrow() else { return };
        self.client
            .as_ref()
            .expect("client set in on_start")
            .output(ctx, id, port, msg);
    }

    fn on_local(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
        if handle_input_done_echo(ctx, &msg) {
            return;
        }
        let Ok(event) = msg.downcast::<RuntimeEvent>() else {
            return;
        };
        match *event {
            RuntimeEvent::Registered { translator, .. } => {
                *self.id.borrow_mut() = Some(translator);
            }
            RuntimeEvent::Input {
                translator,
                port,
                msg,
                connection,
            } => {
                self.received.borrow_mut().push((port.to_string(), msg));
                if !self.input_cost.is_zero() {
                    ctx.busy(self.input_cost);
                }
                ack_input_done(ctx, self.runtime, connection, translator);
            }
            RuntimeEvent::InputBatch { inputs } => {
                for d in inputs {
                    self.received.borrow_mut().push((d.port.to_string(), d.msg));
                    if !self.input_cost.is_zero() {
                        ctx.busy(self.input_cost);
                    }
                    ack_input_done(ctx, self.runtime, d.connection, d.translator);
                }
            }
            RuntimeEvent::Directory(ev) => {
                self.directory_events.borrow_mut().push(ev);
            }
            _ => {}
        }
    }
}

/// An application process that waits for named translators to appear in
/// the directory and then issues one connect.
struct Connector {
    runtime: ProcId,
    client: Option<RuntimeClient>,
    src_name: String,
    src_port: String,
    target: ConnectorTarget,
    qos: QosPolicy,
    src: Option<PortRef>,
    dst: Option<PortRef>,
    outcome: Rc<RefCell<Option<Result<(), String>>>>,
    bound: Rc<RefCell<Vec<PortRef>>>,
    connected_once: bool,
}

enum ConnectorTarget {
    Named(String, String),
    Template(Query),
}

impl Connector {
    fn new(runtime: ProcId, src_name: &str, src_port: &str, target: ConnectorTarget) -> Connector {
        Connector {
            runtime,
            client: None,
            src_name: src_name.to_owned(),
            src_port: src_port.to_owned(),
            target,
            qos: QosPolicy::unbounded(),
            src: None,
            dst: None,
            outcome: Rc::new(RefCell::new(None)),
            bound: Rc::new(RefCell::new(Vec::new())),
            connected_once: false,
        }
    }

    fn try_connect(&mut self, ctx: &mut Ctx<'_>) {
        if self.connected_once {
            return;
        }
        let Some(src) = self.src else { return };
        let client = self.client.as_mut().expect("client set");
        match &self.target {
            ConnectorTarget::Named(_, _) => {
                let Some(dst) = self.dst else { return };
                self.connected_once = true;
                client.connect_ports(ctx, src, dst, self.qos.clone());
            }
            ConnectorTarget::Template(q) => {
                self.connected_once = true;
                client.connect_query(ctx, src, q.clone(), self.qos.clone());
            }
        }
    }
}

impl Process for Connector {
    fn name(&self) -> &str {
        "connector"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let client = RuntimeClient::new(self.runtime);
        client.add_listener(ctx, Query::All);
        self.client = Some(client);
    }

    fn on_local(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
        let Ok(event) = msg.downcast::<RuntimeEvent>() else {
            return;
        };
        match *event {
            RuntimeEvent::Directory(DirectoryEvent::Appeared(profile)) => {
                if profile.name() == self.src_name {
                    self.src = Some(PortRef::new(profile.id(), self.src_port.clone()));
                }
                if let ConnectorTarget::Named(dst_name, dst_port) = &self.target {
                    if profile.name() == *dst_name {
                        self.dst = Some(PortRef::new(profile.id(), dst_port.clone()));
                    }
                }
                self.try_connect(ctx);
            }
            RuntimeEvent::Connected { .. } => {
                *self.outcome.borrow_mut() = Some(Ok(()));
            }
            RuntimeEvent::ConnectFailed { reason, .. } => {
                *self.outcome.borrow_mut() = Some(Err(reason));
            }
            RuntimeEvent::PathBound { dst, .. } => {
                self.bound.borrow_mut().push(dst);
            }
            _ => {}
        }
    }
}

struct Testbed {
    world: World,
    hub: simnet::SegmentId,
    nodes: Vec<NodeId>,
    runtimes: Vec<ProcId>,
}

/// N nodes on one 10 Mbps Ethernet hub, each with its own runtime.
fn testbed(n: usize) -> Testbed {
    let mut world = World::new(7);
    let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
    let mut nodes = Vec::new();
    let mut runtimes = Vec::new();
    for i in 0..n {
        let node = world.add_node(format!("host{i}"));
        world.attach(node, hub).unwrap();
        let rt = UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(i as u32)));
        let proc = world.add_process(node, Box::new(rt));
        nodes.push(node);
        runtimes.push(proc);
    }
    Testbed {
        world,
        hub,
        nodes,
        runtimes,
    }
}

fn jpeg(bytes: usize) -> UMessage {
    UMessage::new("image/jpeg".parse().unwrap(), vec![0xd8; bytes])
}

fn jpeg_source_shape() -> Shape {
    Shape::builder()
        .digital(
            "image-out",
            Direction::Output,
            "image/jpeg".parse().unwrap(),
        )
        .build()
        .unwrap()
}

fn jpeg_sink_shape() -> Shape {
    Shape::builder()
        .digital("media-in", Direction::Input, "image/*".parse().unwrap())
        .build()
        .unwrap()
}

#[test]
fn cross_runtime_static_path_delivers_messages() {
    let mut tb = testbed(2);
    // Camera on host0 emits three frames well after the wiring settles.
    let mut camera = TestService::new("camera", jpeg_source_shape(), tb.runtimes[0]);
    for i in 0..3u64 {
        camera.emit_at.push((
            SimDuration::from_secs(3) + SimDuration::from_millis(100 * i),
            "image-out".to_owned(),
            jpeg(2048),
        ));
    }
    let tv = TestService::new("tv", jpeg_sink_shape(), tb.runtimes[1]);
    let tv_received = Rc::clone(&tv.received);
    tb.world.add_process(tb.nodes[0], Box::new(camera));
    tb.world.add_process(tb.nodes[1], Box::new(tv));

    let connector = Connector::new(
        tb.runtimes[0],
        "camera",
        "image-out",
        ConnectorTarget::Named("tv".to_owned(), "media-in".to_owned()),
    );
    let outcome = Rc::clone(&connector.outcome);
    tb.world.add_process(tb.nodes[0], Box::new(connector));

    tb.world.run_until(SimTime::from_secs(6));
    assert_eq!(*outcome.borrow(), Some(Ok(())));
    let got = tv_received.borrow();
    assert_eq!(got.len(), 3, "TV received all frames: {}", got.len());
    assert!(got
        .iter()
        .all(|(port, m)| port == "media-in" && m.body().len() == 2048));
}

#[test]
fn dynamic_binding_adapts_to_late_arrivals() {
    // Template connection created before any matching target exists; the
    // TV appears later, the path binds, and subsequent frames flow.
    let mut tb = testbed(2);
    let mut camera = TestService::new("camera", jpeg_source_shape(), tb.runtimes[0]);
    // One frame before the TV exists (dropped: no path yet), several after.
    camera.emit_at.push((
        SimDuration::from_secs(2),
        "image-out".to_owned(),
        jpeg(1024),
    ));
    for i in 0..3u64 {
        camera.emit_at.push((
            SimDuration::from_secs(10) + SimDuration::from_millis(50 * i),
            "image-out".to_owned(),
            jpeg(1024),
        ));
    }
    tb.world.add_process(tb.nodes[0], Box::new(camera));

    let mut connector = Connector::new(
        tb.runtimes[0],
        "camera",
        "image-out",
        ConnectorTarget::Template(Query::has_port(
            Direction::Input,
            PortKind::Digital("image/jpeg".parse().unwrap()),
        )),
    );
    connector.qos = QosPolicy::unbounded();
    let outcome = Rc::clone(&connector.outcome);
    let bound = Rc::clone(&connector.bound);
    tb.world.add_process(tb.nodes[0], Box::new(connector));

    tb.world.run_until(SimTime::from_secs(4));
    assert_eq!(*outcome.borrow(), Some(Ok(())));
    assert!(bound.borrow().is_empty(), "no binding before the TV exists");

    // TV arrives on the second runtime.
    let tv = TestService::new("tv", jpeg_sink_shape(), tb.runtimes[1]);
    let tv_received = Rc::clone(&tv.received);
    tb.world.add_process(tb.nodes[1], Box::new(tv));

    tb.world.run_until(SimTime::from_secs(14));
    assert_eq!(bound.borrow().len(), 1, "path bound adaptively");
    assert_eq!(bound.borrow()[0].port, "media-in");
    assert_eq!(tv_received.borrow().len(), 3, "post-binding frames flowed");
}

#[test]
fn query_connection_fans_out_to_multiple_sinks() {
    let mut tb = testbed(3);
    let mut camera = TestService::new("camera", jpeg_source_shape(), tb.runtimes[0]);
    camera
        .emit_at
        .push((SimDuration::from_secs(4), "image-out".to_owned(), jpeg(512)));
    tb.world.add_process(tb.nodes[0], Box::new(camera));

    let tv1 = TestService::new("tv1", jpeg_sink_shape(), tb.runtimes[1]);
    let tv2 = TestService::new("tv2", jpeg_sink_shape(), tb.runtimes[2]);
    let r1 = Rc::clone(&tv1.received);
    let r2 = Rc::clone(&tv2.received);
    tb.world.add_process(tb.nodes[1], Box::new(tv1));
    tb.world.add_process(tb.nodes[2], Box::new(tv2));

    let connector = Connector::new(
        tb.runtimes[0],
        "camera",
        "image-out",
        ConnectorTarget::Template(Query::has_port(
            Direction::Input,
            PortKind::Digital("image/jpeg".parse().unwrap()),
        )),
    );
    let bound = Rc::clone(&connector.bound);
    tb.world.add_process(tb.nodes[0], Box::new(connector));

    tb.world.run_until(SimTime::from_secs(8));
    assert_eq!(bound.borrow().len(), 2, "bound to both TVs");
    assert_eq!(r1.borrow().len(), 1);
    assert_eq!(r2.borrow().len(), 1);
}

#[test]
fn chained_paths_button_camera_tv() {
    // button.press -> camera.shutter (local), camera.image-out ->
    // tv.media-in (remote): two chained message paths.
    let mut tb = testbed(2);

    struct Camera {
        runtime: ProcId,
        client: Option<RuntimeClient>,
        id: Option<TranslatorId>,
    }
    impl Process for Camera {
        fn name(&self) -> &str {
            "camera"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let shape = Shape::builder()
                .digital("shutter", Direction::Input, "text/plain".parse().unwrap())
                .digital(
                    "image-out",
                    Direction::Output,
                    "image/jpeg".parse().unwrap(),
                )
                .build()
                .unwrap();
            let mut client = RuntimeClient::new(self.runtime);
            let profile =
                TranslatorProfile::builder(TranslatorId::new(RuntimeId(u32::MAX), 0), "camera")
                    .shape(shape)
                    .build();
            let me = ctx.me();
            client.register(ctx, profile, me);
            self.client = Some(client);
        }
        fn on_local(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
            if handle_input_done_echo(ctx, &msg) {
                return;
            }
            let Ok(event) = msg.downcast::<RuntimeEvent>() else {
                return;
            };
            match *event {
                RuntimeEvent::Registered { translator, .. } => self.id = Some(translator),
                RuntimeEvent::Input {
                    translator,
                    port,
                    connection,
                    ..
                } => {
                    if port == "shutter" {
                        self.client.as_ref().expect("set").output(
                            ctx,
                            translator,
                            "image-out",
                            jpeg(4096),
                        );
                    }
                    ack_input_done(ctx, self.runtime, connection, translator);
                }
                RuntimeEvent::InputBatch { inputs } => {
                    for d in inputs {
                        if d.port == "shutter" {
                            self.client.as_ref().expect("set").output(
                                ctx,
                                d.translator,
                                "image-out",
                                jpeg(4096),
                            );
                        }
                        ack_input_done(ctx, self.runtime, d.connection, d.translator);
                    }
                }
                _ => {}
            }
        }
    }

    tb.world.add_process(
        tb.nodes[0],
        Box::new(Camera {
            runtime: tb.runtimes[0],
            client: None,
            id: None,
        }),
    );
    let mut button = TestService::new(
        "button",
        Shape::builder()
            .digital("press", Direction::Output, "text/plain".parse().unwrap())
            .build()
            .unwrap(),
        tb.runtimes[0],
    );
    button.emit_at.push((
        SimDuration::from_secs(4),
        "press".to_owned(),
        UMessage::text("click"),
    ));
    tb.world.add_process(tb.nodes[0], Box::new(button));
    let tv = TestService::new("tv", jpeg_sink_shape(), tb.runtimes[1]);
    let tv_received = Rc::clone(&tv.received);
    tb.world.add_process(tb.nodes[1], Box::new(tv));

    let c1 = Connector::new(
        tb.runtimes[0],
        "button",
        "press",
        ConnectorTarget::Named("camera".to_owned(), "shutter".to_owned()),
    );
    let o1 = Rc::clone(&c1.outcome);
    tb.world.add_process(tb.nodes[0], Box::new(c1));
    let c2 = Connector::new(
        tb.runtimes[0],
        "camera",
        "image-out",
        ConnectorTarget::Named("tv".to_owned(), "media-in".to_owned()),
    );
    let o2 = Rc::clone(&c2.outcome);
    tb.world.add_process(tb.nodes[0], Box::new(c2));

    tb.world.run_until(SimTime::from_secs(8));
    assert_eq!(*o1.borrow(), Some(Ok(())));
    assert_eq!(*o2.borrow(), Some(Ok(())));
    let got = tv_received.borrow();
    assert_eq!(got.len(), 1, "press propagated through the chain");
    assert_eq!(got[0].1.body().len(), 4096);
}

#[test]
fn remote_requester_connect_is_forwarded() {
    // The connector runs on runtime 1 but the SOURCE (camera) lives on
    // runtime 0 — the connect request must be forwarded and still work.
    let mut tb = testbed(2);
    let mut camera = TestService::new("camera", jpeg_source_shape(), tb.runtimes[0]);
    camera.emit_at.push((
        SimDuration::from_secs(4),
        "image-out".to_owned(),
        jpeg(1000),
    ));
    tb.world.add_process(tb.nodes[0], Box::new(camera));
    let tv = TestService::new("tv", jpeg_sink_shape(), tb.runtimes[1]);
    let tv_received = Rc::clone(&tv.received);
    tb.world.add_process(tb.nodes[1], Box::new(tv));

    let connector = Connector::new(
        tb.runtimes[1], // note: connecting from the TV's runtime
        "camera",
        "image-out",
        ConnectorTarget::Named("tv".to_owned(), "media-in".to_owned()),
    );
    let outcome = Rc::clone(&connector.outcome);
    tb.world.add_process(tb.nodes[1], Box::new(connector));

    tb.world.run_until(SimTime::from_secs(8));
    assert_eq!(*outcome.borrow(), Some(Ok(())));
    assert_eq!(tv_received.borrow().len(), 1);
}

#[test]
fn lookup_and_listener_work_across_runtimes() {
    let mut tb = testbed(3);
    for (i, rt) in tb.runtimes.clone().iter().enumerate() {
        let svc = TestService::new(
            &format!("sensor-{i}"),
            Shape::builder()
                .digital("reading", Direction::Output, "text/plain".parse().unwrap())
                .build()
                .unwrap(),
            *rt,
        );
        tb.world.add_process(tb.nodes[i], Box::new(svc));
    }
    let mut watcher = TestService::new("watcher", Shape::default(), tb.runtimes[0]);
    watcher.subscribe = Some(Query::NameContains("sensor".to_owned()));
    let events = Rc::clone(&watcher.directory_events);
    tb.world.add_process(tb.nodes[0], Box::new(watcher));
    tb.world.run_until(SimTime::from_secs(3));
    let appeared: Vec<String> = events
        .borrow()
        .iter()
        .filter_map(|e| match e {
            DirectoryEvent::Appeared(p) => Some(p.name().to_owned()),
            DirectoryEvent::Disappeared(_) => None,
        })
        .collect();
    assert_eq!(appeared.len(), 3, "saw {appeared:?}");
}

#[test]
fn runtime_death_expires_remote_entries() {
    let mut tb = testbed(2);
    let svc = TestService::new("mortal", jpeg_source_shape(), tb.runtimes[1]);
    tb.world.add_process(tb.nodes[1], Box::new(svc));

    let mut watcher = TestService::new("watcher", Shape::default(), tb.runtimes[0]);
    watcher.subscribe = Some(Query::NameIs("mortal".to_owned()));
    let events = Rc::clone(&watcher.directory_events);
    tb.world.add_process(tb.nodes[0], Box::new(watcher));

    tb.world.run_until(SimTime::from_secs(3));
    assert!(matches!(
        events.borrow().first(),
        Some(DirectoryEvent::Appeared(_))
    ));

    // Partition the node first so the runtime's dying Bye multicast is
    // lost, then kill it: the watcher must notice via TTL expiry.
    tb.world.detach(tb.nodes[1], tb.hub).unwrap();
    tb.world.remove_process(tb.runtimes[1]).unwrap();
    tb.world.run_until(SimTime::from_secs(25));
    assert!(
        events
            .borrow()
            .iter()
            .any(|e| matches!(e, DirectoryEvent::Disappeared(_))),
        "TTL expiry noticed: {:?}",
        events.borrow()
    );
}

#[test]
fn unregister_sends_bye_promptly() {
    let mut tb = testbed(2);
    struct Transient {
        runtime: ProcId,
        client: Option<RuntimeClient>,
    }
    impl Process for Transient {
        fn name(&self) -> &str {
            "transient"
        }
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let mut client = RuntimeClient::new(self.runtime);
            let profile =
                TranslatorProfile::builder(TranslatorId::new(RuntimeId(u32::MAX), 0), "transient")
                    .build();
            let me = ctx.me();
            client.register(ctx, profile, me);
            self.client = Some(client);
        }
        fn on_local(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
            let Ok(event) = msg.downcast::<RuntimeEvent>() else {
                return;
            };
            if let RuntimeEvent::Registered { translator, .. } = *event {
                self.client
                    .as_ref()
                    .expect("set")
                    .unregister(ctx, translator);
            }
        }
    }
    tb.world.add_process(
        tb.nodes[1],
        Box::new(Transient {
            runtime: tb.runtimes[1],
            client: None,
        }),
    );
    let mut watcher = TestService::new("watcher", Shape::default(), tb.runtimes[0]);
    watcher.subscribe = Some(Query::NameIs("transient".to_owned()));
    let events = Rc::clone(&watcher.directory_events);
    tb.world.add_process(tb.nodes[0], Box::new(watcher));
    tb.world.run_until(SimTime::from_secs(3));
    let evs = events.borrow();
    assert!(
        evs.iter()
            .any(|e| matches!(e, DirectoryEvent::Disappeared(_))),
        "{evs:?}"
    );
}

#[test]
fn incompatible_connect_fails_with_reason() {
    let mut tb = testbed(1);
    let text_src = TestService::new(
        "text-source",
        Shape::builder()
            .digital("out", Direction::Output, "text/plain".parse().unwrap())
            .build()
            .unwrap(),
        tb.runtimes[0],
    );
    let image_sink = TestService::new("image-sink", jpeg_sink_shape(), tb.runtimes[0]);
    tb.world.add_process(tb.nodes[0], Box::new(text_src));
    tb.world.add_process(tb.nodes[0], Box::new(image_sink));
    let connector = Connector::new(
        tb.runtimes[0],
        "text-source",
        "out",
        ConnectorTarget::Named("image-sink".to_owned(), "media-in".to_owned()),
    );
    let outcome = Rc::clone(&connector.outcome);
    tb.world.add_process(tb.nodes[0], Box::new(connector));
    tb.world.run_until(SimTime::from_secs(2));
    let result = outcome.borrow().clone();
    match result {
        Some(Err(reason)) => assert!(reason.contains("data types differ"), "{reason}"),
        other => panic!("expected type mismatch, got {other:?}"),
    }
}

#[test]
fn qos_bounded_buffer_drops_under_slow_consumer() {
    // Fast producer (every 1 ms), slow consumer (50 ms CPU per message),
    // bounded drop-oldest buffer: the consumer receives a fraction, the
    // runtime reports drops, and occupancy stays bounded.
    let mut tb = testbed(1);
    let stats = {
        // Rebuild runtime with a stats handle (the testbed built one
        // already; grab a new runtime on a second node instead).
        let node = tb.world.add_node("qos-host");
        tb.world.attach(node, tb.hub).unwrap();
        let rt = UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(9)));
        let handle = rt.stats_handle();
        let proc = tb.world.add_process(node, Box::new(rt));
        tb.nodes.push(node);
        tb.runtimes.push(proc);
        handle
    };
    let rt = tb.runtimes[1];
    let node = tb.nodes[1];

    let mut producer = TestService::new(
        "producer",
        Shape::builder()
            .digital("out", Direction::Output, "text/plain".parse().unwrap())
            .build()
            .unwrap(),
        rt,
    );
    for i in 0..200u64 {
        producer.emit_at.push((
            SimDuration::from_secs(2) + SimDuration::from_millis(i),
            "out".to_owned(),
            UMessage::text(format!("reading-{i}")),
        ));
    }
    tb.world.add_process(node, Box::new(producer));

    let mut consumer = TestService::new(
        "consumer",
        Shape::builder()
            .digital("in", Direction::Input, "text/plain".parse().unwrap())
            .build()
            .unwrap(),
        rt,
    );
    consumer.input_cost = SimDuration::from_millis(50);
    let received = Rc::clone(&consumer.received);
    tb.world.add_process(node, Box::new(consumer));

    let mut connector = Connector::new(
        rt,
        "producer",
        "out",
        ConnectorTarget::Named("consumer".to_owned(), "in".to_owned()),
    );
    connector.qos = QosPolicy::bounded_drop_oldest(256);
    let outcome = Rc::clone(&connector.outcome);
    tb.world.add_process(node, Box::new(connector));

    tb.world.run_until(SimTime::from_secs(30));
    assert_eq!(*outcome.borrow(), Some(Ok(())));
    let s = *stats.borrow();
    let got = received.borrow().len() as u64;
    assert!(got > 0, "some messages delivered");
    assert!(s.qos_dropped > 0, "QoS dropped the excess: {s:?}");
    assert!(
        s.max_buffered_bytes <= 512,
        "occupancy bounded: {}",
        s.max_buffered_bytes
    );
    assert!(got < 200, "slow consumer cannot keep up");
}

#[test]
fn disconnect_stops_message_flow() {
    let mut tb = testbed(1);
    let mut source = TestService::new(
        "source",
        Shape::builder()
            .digital("out", Direction::Output, "text/plain".parse().unwrap())
            .build()
            .unwrap(),
        tb.runtimes[0],
    );
    for i in 0..20u64 {
        source.emit_at.push((
            SimDuration::from_secs(2 + i),
            "out".to_owned(),
            UMessage::text(format!("m{i}")),
        ));
    }
    tb.world.add_process(tb.nodes[0], Box::new(source));
    let sink = TestService::new(
        "sink",
        Shape::builder()
            .digital("in", Direction::Input, "text/plain".parse().unwrap())
            .build()
            .unwrap(),
        tb.runtimes[0],
    );
    let received = Rc::clone(&sink.received);
    tb.world.add_process(tb.nodes[0], Box::new(sink));

    // A connector that disconnects after the fifth delivery.
    struct DisconnectingApp {
        runtime: ProcId,
        client: Option<RuntimeClient>,
        src: Option<PortRef>,
        dst: Option<PortRef>,
        connection: Option<umiddle_core::ConnectionId>,
        wired: bool,
    }
    impl Process for DisconnectingApp {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let client = RuntimeClient::new(self.runtime);
            client.add_listener(ctx, Query::All);
            self.client = Some(client);
            // Disconnect mid-stream.
            ctx.set_timer(SimDuration::from_secs(8), 1);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
            if let Some(conn) = self.connection {
                self.client.as_ref().expect("set").disconnect(ctx, conn);
            }
        }
        fn on_local(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
            let Ok(event) = msg.downcast::<RuntimeEvent>() else {
                return;
            };
            match *event {
                RuntimeEvent::Directory(DirectoryEvent::Appeared(p)) => {
                    if p.name() == "source" {
                        self.src = Some(PortRef::new(p.id(), "out"));
                    }
                    if p.name() == "sink" {
                        self.dst = Some(PortRef::new(p.id(), "in"));
                    }
                    if let (Some(s), Some(d), false) = (self.src, self.dst, self.wired) {
                        self.wired = true;
                        self.client.as_mut().expect("set").connect_ports(
                            ctx,
                            s,
                            d,
                            QosPolicy::unbounded(),
                        );
                    }
                }
                RuntimeEvent::Connected { connection, .. } => {
                    self.connection = Some(connection);
                }
                _ => {}
            }
        }
    }
    tb.world.add_process(
        tb.nodes[0],
        Box::new(DisconnectingApp {
            runtime: tb.runtimes[0],
            client: None,
            src: None,
            dst: None,
            connection: None,
            wired: false,
        }),
    );
    tb.world.run_until(SimTime::from_secs(30));
    let n = received.borrow().len();
    // Emissions at t=2..7 arrive (6 messages); the disconnect at t=8
    // stops the rest, with a little slack for in-flight delivery.
    assert!(
        (5..=8).contains(&n),
        "deliveries stopped at disconnect: {n}"
    );
}

#[test]
fn remove_listener_stops_directory_events() {
    let mut tb = testbed(1);

    struct FickleWatcher {
        runtime: ProcId,
        client: Option<RuntimeClient>,
        events: Rc<RefCell<u32>>,
    }
    impl Process for FickleWatcher {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let client = RuntimeClient::new(self.runtime);
            client.add_listener(ctx, Query::All);
            self.client = Some(client);
            ctx.set_timer(SimDuration::from_secs(5), 1);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
            // Unsubscribe.
            ctx.send_local(
                self.client.as_ref().expect("set").runtime(),
                umiddle_core::RuntimeRequest::RemoveListener,
            );
        }
        fn on_local(&mut self, _ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
            if let Ok(event) = msg.downcast::<RuntimeEvent>() {
                if matches!(*event, RuntimeEvent::Directory(_)) {
                    *self.events.borrow_mut() += 1;
                }
            }
        }
    }
    let events = Rc::new(RefCell::new(0));
    tb.world.add_process(
        tb.nodes[0],
        Box::new(FickleWatcher {
            runtime: tb.runtimes[0],
            client: None,
            events: Rc::clone(&events),
        }),
    );
    // One service before the unsubscribe, one after.
    let early = TestService::new("early", Shape::default(), tb.runtimes[0]);
    tb.world.add_process(tb.nodes[0], Box::new(early));
    tb.world.run_until(SimTime::from_secs(3));
    let before = *events.borrow();
    assert_eq!(before, 1, "saw the early service");
    tb.world.run_until(SimTime::from_secs(6));
    let late = TestService::new("late", Shape::default(), tb.runtimes[0]);
    tb.world.add_process(tb.nodes[0], Box::new(late));
    tb.world.run_until(SimTime::from_secs(10));
    assert_eq!(*events.borrow(), before, "no events after RemoveListener");
}

#[test]
fn lookup_correlates_tokens_and_filters() {
    let mut tb = testbed(1);
    for name in ["alpha-camera", "beta-printer", "gamma-camera"] {
        let svc = TestService::new(name, Shape::default(), tb.runtimes[0]);
        tb.world.add_process(tb.nodes[0], Box::new(svc));
    }

    struct Asker {
        runtime: ProcId,
        client: Option<RuntimeClient>,
        #[allow(clippy::type_complexity)]
        results: Rc<RefCell<Vec<(u64, Vec<String>)>>>,
        tokens: (u64, u64),
    }
    impl Process for Asker {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            let client = RuntimeClient::new(self.runtime);
            self.client = Some(client);
            ctx.set_timer(SimDuration::from_secs(2), 1);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
            let client = self.client.as_mut().expect("set");
            let t1 = client.lookup(ctx, Query::NameContains("camera".to_owned()));
            let t2 = client.lookup(ctx, Query::NameIs("beta-printer".to_owned()));
            self.tokens = (t1, t2);
        }
        fn on_local(&mut self, _ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
            if let Ok(event) = msg.downcast::<RuntimeEvent>() {
                if let RuntimeEvent::LookupResult { token, profiles } = *event {
                    self.results.borrow_mut().push((
                        token,
                        profiles.iter().map(|p| p.name().to_owned()).collect(),
                    ));
                }
            }
        }
    }
    let results = Rc::new(RefCell::new(Vec::new()));
    tb.world.add_process(
        tb.nodes[0],
        Box::new(Asker {
            runtime: tb.runtimes[0],
            client: None,
            results: Rc::clone(&results),
            tokens: (0, 0),
        }),
    );
    tb.world.run_until(SimTime::from_secs(5));
    let results = results.borrow();
    assert_eq!(results.len(), 2);
    let cameras = &results[0].1;
    assert_eq!(cameras.len(), 2, "{cameras:?}");
    assert!(cameras.iter().all(|n| n.contains("camera")));
    assert_eq!(results[1].1, vec!["beta-printer".to_owned()]);
    // Tokens differ and match request order.
    assert!(results[0].0 < results[1].0);
}

#[test]
fn partition_and_heal_recovers_the_directory() {
    let mut tb = testbed(2);
    let svc = TestService::new("islander", jpeg_source_shape(), tb.runtimes[1]);
    tb.world.add_process(tb.nodes[1], Box::new(svc));
    let mut watcher = TestService::new("watcher", Shape::default(), tb.runtimes[0]);
    watcher.subscribe = Some(Query::NameIs("islander".to_owned()));
    let events = Rc::clone(&watcher.directory_events);
    tb.world.add_process(tb.nodes[0], Box::new(watcher));

    // Converge.
    tb.world.run_until(SimTime::from_secs(3));
    assert!(matches!(
        events.borrow().first(),
        Some(DirectoryEvent::Appeared(_))
    ));

    // Partition node 1 away; after the TTL (15 s) the entry expires.
    tb.world.detach(tb.nodes[1], tb.hub).unwrap();
    tb.world.run_until(SimTime::from_secs(30));
    assert!(
        events
            .borrow()
            .iter()
            .any(|e| matches!(e, DirectoryEvent::Disappeared(_))),
        "partition noticed: {:?}",
        events.borrow()
    );

    // Heal: the periodic advertisement refresh re-populates the replica.
    tb.world.attach(tb.nodes[1], tb.hub).unwrap();
    tb.world.run_until(SimTime::from_secs(60));
    let appearances = events
        .borrow()
        .iter()
        .filter(|e| matches!(e, DirectoryEvent::Appeared(_)))
        .count();
    assert!(
        appearances >= 2,
        "islander reappeared after the partition healed: {:?}",
        events.borrow()
    );
}
