//! The paper's §2 design space, as data: four architectural dimensions,
//! their options, and the Table-1 mutual-compatibility chart.
//!
//! The paper frames all bridging frameworks as points in a 4-dimension
//! space and argues certain combinations cannot coexist (Table 1).
//! Encoding the chart as code lets the test suite verify the paper's
//! reasoning — in particular that uMiddle's own configuration (1-b,
//! 2-b, 3-b, 4-b) is internally consistent, and that the alternatives
//! named in §6 (UIC, Speakeasy) are too.

use std::fmt;

/// Dimension 1 (§2.2.1): how device semantics are translated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TranslationModel {
    /// 1-a: a dedicated translator per device-type pair — n(n−1) of them.
    Direct,
    /// 1-b: translate through a common intermediary representation.
    Mediated,
}

/// Dimension 2 (§2.2.2): where proxy representations are visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemanticDistribution {
    /// 2-a: proxies scattered into every native platform.
    Scattered,
    /// 2-b: proxies aggregated in the intermediary space only.
    Aggregated,
}

/// Dimension 3 (§2.2.3): granularity of the intermediary representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemanticsGranularity {
    /// 3-a: whole device types (requires a device ontology).
    CoarseGrained,
    /// 3-b: typed communication endpoints (Service Shaping).
    FineGrained,
}

/// Dimension 4 (§2.2.4): where translation happens at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InteropLocation {
    /// 4-a: on the devices themselves (requires modifying them).
    AtTheEdge,
    /// 4-b: on intermediary nodes in the infrastructure.
    Infrastructure,
}

/// A complete point in the design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignPoint {
    /// Dimension 1 choice.
    pub translation: TranslationModel,
    /// Dimension 2 choice.
    pub distribution: SemanticDistribution,
    /// Dimension 3 choice (meaningful only for mediated translation).
    pub granularity: Option<SemanticsGranularity>,
    /// Dimension 4 choice.
    pub location: InteropLocation,
}

impl DesignPoint {
    /// uMiddle's configuration (§3.1): mediated, aggregated,
    /// fine-grained, in the infrastructure.
    pub fn umiddle() -> DesignPoint {
        DesignPoint {
            translation: TranslationModel::Mediated,
            distribution: SemanticDistribution::Aggregated,
            granularity: Some(SemanticsGranularity::FineGrained),
            location: InteropLocation::Infrastructure,
        }
    }

    /// UIC's and Speakeasy's configuration as the paper reads them (§6):
    /// mediated, aggregated, coarse-grained, at the edge.
    pub fn uic_speakeasy() -> DesignPoint {
        DesignPoint {
            translation: TranslationModel::Mediated,
            distribution: SemanticDistribution::Aggregated,
            granularity: Some(SemanticsGranularity::CoarseGrained),
            location: InteropLocation::AtTheEdge,
        }
    }

    /// Validates the point against Table 1's compatibility constraints.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match self.translation {
            TranslationModel::Direct => {
                // Table 1: 2-b, 3-a and 3-b are "specific to the mediated
                // translation; hence they cannot coexist with the direct
                // translation".
                if self.distribution == SemanticDistribution::Aggregated {
                    return Err("aggregated visibility (2-b) is incompatible with direct \
                         translation (1-a): aggregation needs an intermediary space"
                        .to_owned());
                }
                if self.granularity.is_some() {
                    return Err("intermediary granularity (3-a/3-b) is meaningless under \
                         direct translation (1-a): there is no intermediary \
                         representation to have a granularity"
                        .to_owned());
                }
            }
            TranslationModel::Mediated => {
                if self.granularity.is_none() {
                    return Err("mediated translation (1-b) requires choosing an \
                         intermediary granularity (3-a or 3-b)"
                        .to_owned());
                }
            }
        }
        Ok(())
    }

    /// Translators required to bridge `n` device types under this point's
    /// translation model (the paper's scalability argument).
    pub fn translators_required(&self, n: usize) -> usize {
        match self.translation {
            TranslationModel::Direct => n.saturating_mul(n.saturating_sub(1)),
            TranslationModel::Mediated => n,
        }
    }

    /// Whether devices need modification under this design (the paper's
    /// §6 criticism of at-the-edge systems).
    pub fn requires_device_modification(&self) -> bool {
        self.location == InteropLocation::AtTheEdge
    }

    /// Whether native applications can use foreign devices (§3.6's first
    /// system characteristic — the price of aggregation).
    pub fn native_apps_see_foreign_devices(&self) -> bool {
        self.distribution == SemanticDistribution::Scattered
    }

    /// Whether the design can bridge different *physical* transports
    /// (§2.2.4: impractical at the edge).
    pub fn bridges_physical_transports(&self) -> bool {
        self.location == InteropLocation::Infrastructure
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}/{:?}/{:?}/{:?}",
            self.translation, self.distribution, self.granularity, self.location
        )
    }
}

/// Enumerates every structurally representable design point (including
/// invalid ones), for exhaustive checks.
pub fn all_points() -> Vec<DesignPoint> {
    let mut out = Vec::new();
    for translation in [TranslationModel::Direct, TranslationModel::Mediated] {
        for distribution in [
            SemanticDistribution::Scattered,
            SemanticDistribution::Aggregated,
        ] {
            for granularity in [
                None,
                Some(SemanticsGranularity::CoarseGrained),
                Some(SemanticsGranularity::FineGrained),
            ] {
                for location in [InteropLocation::AtTheEdge, InteropLocation::Infrastructure] {
                    out.push(DesignPoint {
                        translation,
                        distribution,
                        granularity,
                        location,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn umiddles_own_point_is_valid() {
        let p = DesignPoint::umiddle();
        assert_eq!(p.validate(), Ok(()));
        assert!(!p.requires_device_modification());
        assert!(p.bridges_physical_transports());
        assert!(!p.native_apps_see_foreign_devices());
    }

    #[test]
    fn uic_speakeasy_point_is_valid_but_needs_device_changes() {
        let p = DesignPoint::uic_speakeasy();
        assert_eq!(p.validate(), Ok(()));
        // The paper's §6 criticism in code form:
        assert!(p.requires_device_modification());
        assert!(!p.bridges_physical_transports());
    }

    #[test]
    fn table_1_exclusions_hold() {
        // Direct translation cannot carry aggregated visibility…
        let bad = DesignPoint {
            translation: TranslationModel::Direct,
            distribution: SemanticDistribution::Aggregated,
            granularity: None,
            location: InteropLocation::Infrastructure,
        };
        assert!(bad.validate().is_err());
        // …nor an intermediary granularity.
        let bad = DesignPoint {
            translation: TranslationModel::Direct,
            distribution: SemanticDistribution::Scattered,
            granularity: Some(SemanticsGranularity::FineGrained),
            location: InteropLocation::AtTheEdge,
        };
        assert!(bad.validate().is_err());
        // Mediated translation must pick a granularity.
        let bad = DesignPoint {
            translation: TranslationModel::Mediated,
            distribution: SemanticDistribution::Aggregated,
            granularity: None,
            location: InteropLocation::Infrastructure,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn table_1_row_one_direct_only_leaves_the_edge_choice() {
        // "When taking the direct translation approach, the only design
        // choice is between at-the-edge (4-a) and in the infrastructure
        // (4-b)."
        let valid: Vec<DesignPoint> = all_points()
            .into_iter()
            .filter(|p| p.translation == TranslationModel::Direct && p.validate().is_ok())
            .collect();
        assert_eq!(valid.len(), 2);
        assert!(valid
            .iter()
            .all(|p| p.distribution == SemanticDistribution::Scattered && p.granularity.is_none()));
        let locations: std::collections::HashSet<_> = valid.iter().map(|p| p.location).collect();
        assert_eq!(locations.len(), 2);
    }

    #[test]
    fn scaling_argument() {
        let direct = DesignPoint {
            translation: TranslationModel::Direct,
            distribution: SemanticDistribution::Scattered,
            granularity: None,
            location: InteropLocation::Infrastructure,
        };
        let mediated = DesignPoint::umiddle();
        for n in 2..64 {
            assert!(direct.translators_required(n) >= mediated.translators_required(n));
        }
        assert_eq!(direct.translators_required(10), 90);
        assert_eq!(mediated.translators_required(10), 10);
    }

    #[test]
    fn exhaustive_point_count() {
        // 2 × 2 × 3 × 2 structural combinations.
        assert_eq!(all_points().len(), 24);
        // Valid ones: direct (1 distribution × 1 granularity × 2 locations)
        // + mediated (2 × 2 × 2) = 2 + 8 = 10.
        let valid = all_points().iter().filter(|p| p.validate().is_ok()).count();
        assert_eq!(valid, 10);
    }
}
