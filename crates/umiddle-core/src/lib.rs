//! # umiddle-core — the intermediary semantic space
//!
//! This crate implements the core of **uMiddle**, the bridging framework
//! for universal interoperability described in *"A Bridging Framework for
//! Universal Interoperability in Pervasive Systems"* (ICDCS 2006). It
//! realizes the paper's chosen point in the design space: **mediated
//! translation** into a platform-neutral common representation,
//! **aggregated visibility**, **fine-grained (port-typed) semantics**, and
//! an interoperability layer **in the infrastructure**.
//!
//! The main pieces:
//!
//! * **Service Shaping** ([`Shape`], [`PortSpec`], [`PortKind`]): devices
//!   are represented as sets of typed ports — digital ports tagged with a
//!   [`MimeType`], physical ports tagged with a [`PerceptionType`] and a
//!   media type. Compatibility is matching port types, not device types.
//! * **Queries** ([`Query`]): the predicate algebra used by
//!   `lookup(Query)` and by dynamic device binding.
//! * **Profiles & directory** ([`TranslatorProfile`], [`DirectoryTable`]):
//!   what runtimes advertise and replicate.
//! * **The runtime** ([`UmiddleRuntime`]): a [`simnet`] process hosting
//!   the directory module (advertisement gossip with TTLs) and the
//!   transport module (message paths over streams, dynamic template
//!   binding, per-path [`TranslationBuffer`]s with QoS policies).
//! * **The local API** ([`RuntimeRequest`], [`RuntimeEvent`],
//!   [`RuntimeClient`]): how mappers, native services and applications on
//!   a node talk to their runtime, mirroring the paper's Figures 6 and 7.
//!
//! Mappers and translators for concrete platforms (UPnP, Bluetooth, …)
//! live in the `umiddle-bridges` crate; this crate is platform-neutral,
//! exactly as the paper prescribes: "the platform-specific knowledge of a
//! device is concealed by its translator and the mapper, and the rest of
//! the system is platform-independent."
//!
//! # Examples
//!
//! Building the paper's BIP-camera shape and finding what it can drive:
//!
//! ```
//! use umiddle_core::{Direction, PerceptionType, PortSpec, Query, Shape, PortKind};
//!
//! let camera = Shape::builder()
//!     .digital("image-out", Direction::Output, "image/jpeg".parse()?)
//!     .build()?;
//!
//! // "Show my pictures somewhere visible."
//! let viewers = Query::has_port(Direction::Input, PortKind::Digital("image/jpeg".parse()?))
//!     .and(Query::has_port(
//!         Direction::Output,
//!         PortKind::physical(PerceptionType::Visible, "*"),
//!     ));
//! # let _ = (camera, viewers);
//! # Ok::<(), umiddle_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
pub mod design_space;
mod directory;
mod error;
mod id;
mod intern;
mod message;
mod mime;
mod profile;
mod qos;
mod query;
mod replica;
mod runtime;
mod shape;
pub mod shardlink;
mod wire;

pub use api::{
    ack_input_done, handle_input_done_echo, ConnectTarget, DirectoryEvent, InputDelivery,
    InputDoneEcho, RuntimeClient, RuntimeEvent, RuntimeRequest,
};
pub use directory::{DirectoryEntry, DirectoryTable, UpsertEffect};
pub use error::{CoreError, CoreResult};
pub use id::{ConnectionId, PortRef, RuntimeId, TranslatorId};
pub use intern::Symbol;
pub use message::UMessage;
pub use mime::MimeType;
pub use profile::{TranslatorProfile, TranslatorProfileBuilder};
pub use qos::{BufferStats, OverflowPolicy, QosPolicy, RateLimit, TranslationBuffer};
pub use query::Query;
pub use replica::{DeltaOutcome, DirectoryReplica, ServeReply};
pub use runtime::{RuntimeConfig, RuntimeStats, UmiddleRuntime};
pub use shape::{Direction, PerceptionType, PortKind, PortSpec, Shape, ShapeBuilder};
pub use wire::{DeltaOp, FrameDecoder, FramedBatch, WireMessage, WireTarget};
