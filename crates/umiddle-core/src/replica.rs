//! Version-vectored delta-gossip replication of the federation directory.
//!
//! Each runtime's directory replica tracks, per origin runtime, the
//! highest delta version it has applied. Origins publish every mutation
//! of their advertised set as a versioned [`DeltaOp`] (version numbers
//! are dense: the first op is version 1), so a replica can tell exactly
//! what it has and hasn't seen:
//!
//! * a delta that continues the applied prefix is applied in order;
//! * a duplicate or stale delta is ignored;
//! * a delta that leaves a gap is *dropped* and the replica asks the
//!   origin for precisely the missing range (anti-entropy repair);
//! * low-frequency digests — an origin's own `(id, version)` watermark —
//!   let replicas that missed everything (partition, late join) detect
//!   the divergence without any table exchange.
//!
//! Origins serve repair requests from a bounded in-memory log of their
//! own ops; when the requested range has been compacted away they fall
//! back to a full per-origin snapshot, which the receiver applies as a
//! diff against its current view. Either way the replica converges to
//! the same table — and the same lookup index — as a full-state
//! bootstrap, byte for byte; the `check_cases` battery at the bottom of
//! this module pins that under random interleaving, reordering,
//! duplication and loss.
//!
//! Everything here is pure state-machine logic: no timers, no sockets.
//! [`crate::runtime`] owns scheduling (when to digest, when to back off
//! a repair request) and the wire; tests drive this type directly.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use simnet::{Addr, SimDuration, SimTime};

use crate::api::DirectoryEvent;
use crate::directory::{DirectoryTable, UpsertEffect};
use crate::id::{RuntimeId, TranslatorId};
use crate::profile::TranslatorProfile;
use crate::wire::DeltaOp;

/// Replication state for one remote origin.
#[derive(Debug, Clone, Copy)]
struct OriginState {
    /// Highest delta version applied from this origin.
    applied: u64,
    /// Last time anything (delta, digest, snapshot) arrived from it —
    /// the origin-level liveness watermark that replaces per-entry TTLs.
    last_heard: SimTime,
    /// When a repair request was last issued, for backoff deduplication.
    requested_at: Option<SimTime>,
}

/// Result of offering a delta to the replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaOutcome {
    /// This many ops were newly applied (0 = pure duplicate).
    Applied(u64),
    /// The delta starts beyond the applied prefix; it was dropped and
    /// the caller should request the origin's deltas from `from`.
    Gap {
        /// First missing version.
        from: u64,
    },
    /// Own echo or empty delta; nothing to do.
    Ignored,
}

/// What an origin replies to a repair request with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeReply {
    /// The own-op log still covers the range: replay it.
    Ops {
        /// Version of the first op.
        first: u64,
        /// The ops, in version order (empty if the requester is already
        /// ahead of this origin).
        ops: Vec<DeltaOp>,
    },
    /// The range was compacted out of the log: full current state.
    Snapshot {
        /// The origin's version as of this snapshot.
        version: u64,
        /// Every profile the origin currently advertises.
        profiles: Vec<TranslatorProfile>,
    },
}

/// A runtime's directory replica plus the delta-gossip version state
/// driving its convergence.
#[derive(Debug)]
pub struct DirectoryReplica {
    me: RuntimeId,
    table: DirectoryTable,
    /// This runtime's own monotonic version; the first local mutation is
    /// version 1.
    own_version: u64,
    /// Bounded log of own ops, kept to serve anti-entropy requests
    /// without a snapshot.
    own_log: VecDeque<(u64, DeltaOp)>,
    log_cap: usize,
    /// Per-remote-origin state, ordered so every iteration (eviction,
    /// version vectors) is deterministic.
    origins: BTreeMap<RuntimeId, OriginState>,
}

impl DirectoryReplica {
    /// Creates an empty replica for runtime `me`, retaining up to
    /// `log_cap` of its own ops for repair service.
    pub fn new(me: RuntimeId, log_cap: usize) -> DirectoryReplica {
        DirectoryReplica {
            me,
            table: DirectoryTable::new(),
            own_version: 0,
            own_log: VecDeque::new(),
            log_cap,
            origins: BTreeMap::new(),
        }
    }

    /// The replicated table (lookups, iteration).
    pub fn table(&self) -> &DirectoryTable {
        &self.table
    }

    /// Mutable table access for the legacy full-refresh mode, which
    /// bypasses versioning entirely (TTL-based liveness).
    pub fn table_mut(&mut self) -> &mut DirectoryTable {
        &mut self.table
    }

    /// This runtime's own version (number of local mutations recorded).
    pub fn own_version(&self) -> u64 {
        self.own_version
    }

    /// Highest version applied from `origin` (0 if never heard).
    pub fn applied(&self, origin: RuntimeId) -> u64 {
        self.origins.get(&origin).map_or(0, |st| st.applied)
    }

    fn log_own(&mut self, op: DeltaOp) -> u64 {
        self.own_version += 1;
        self.own_log.push_back((self.own_version, op));
        while self.own_log.len() > self.log_cap {
            self.own_log.pop_front();
        }
        self.own_version
    }

    /// Records a local registration (or profile update): upserts the
    /// table and appends to the own log. Returns the op's version; the
    /// caller gossips a delta carrying exactly this op.
    pub fn record_local_add(&mut self, profile: TranslatorProfile, home: Addr) -> u64 {
        self.table.upsert(profile.clone(), home, SimTime::MAX, true);
        self.log_own(DeltaOp::Add(profile))
    }

    /// Records a local unregistration. Returns the op's version, or
    /// `None` if the translator wasn't in the table.
    pub fn record_local_remove(&mut self, id: TranslatorId) -> Option<u64> {
        self.table.remove(id)?;
        Some(self.log_own(DeltaOp::Remove(id)))
    }

    /// Offers a delta from `origin`. Appeared/Disappeared events for
    /// newly applied ops are appended to `events`.
    pub fn apply_delta(
        &mut self,
        origin: RuntimeId,
        home: Addr,
        first: u64,
        ops: &[DeltaOp],
        now: SimTime,
        events: &mut Vec<DirectoryEvent>,
    ) -> DeltaOutcome {
        if origin == self.me {
            return DeltaOutcome::Ignored;
        }
        let applied0 = {
            let st = self.origin_mut(origin, now);
            st.last_heard = now;
            st.applied
        };
        if ops.is_empty() {
            return DeltaOutcome::Ignored;
        }
        if first > applied0 + 1 {
            return DeltaOutcome::Gap { from: applied0 + 1 };
        }
        let mut applied = applied0;
        let mut fresh = 0u64;
        for (i, op) in ops.iter().enumerate() {
            let v = first + i as u64;
            if v <= applied {
                continue; // already have it (overlapping replay)
            }
            self.apply_op(op, home, events);
            applied = v;
            fresh += 1;
        }
        let st = self.origins.get_mut(&origin).expect("created above");
        st.applied = applied;
        if fresh > 0 {
            st.requested_at = None;
        }
        DeltaOutcome::Applied(fresh)
    }

    fn apply_op(&mut self, op: &DeltaOp, home: Addr, events: &mut Vec<DirectoryEvent>) {
        match op {
            DeltaOp::Add(profile) => {
                let effect = self
                    .table
                    .upsert(profile.clone(), home, SimTime::MAX, false);
                if effect == UpsertEffect::Appeared {
                    events.push(DirectoryEvent::Appeared(profile.clone()));
                }
            }
            DeltaOp::Remove(id) => {
                if self.table.remove(*id).is_some() {
                    events.push(DirectoryEvent::Disappeared(*id));
                }
            }
        }
    }

    /// Observes an anti-entropy digest from `origin`. Returns the first
    /// missing version if the digest reveals a gap *and* no repair
    /// request is outstanding within `backoff` (in which case the
    /// request is recorded as sent); `None` when in sync or backed off.
    pub fn observe_digest(
        &mut self,
        origin: RuntimeId,
        vector: &[(RuntimeId, u64)],
        now: SimTime,
        backoff: SimDuration,
    ) -> Option<u64> {
        if origin == self.me {
            return None;
        }
        let advertised = vector.iter().find(|(rt, _)| *rt == origin).map(|(_, v)| *v);
        let st = self.origin_mut(origin, now);
        st.last_heard = now;
        let advertised = advertised?;
        if advertised <= st.applied {
            return None;
        }
        if let Some(at) = st.requested_at {
            if at + backoff > now {
                return None; // a repair is already in flight
            }
        }
        st.requested_at = Some(now);
        Some(st.applied + 1)
    }

    /// Notes that a repair request for `origin` went out at `now`
    /// (backoff bookkeeping for gaps detected via [`Self::apply_delta`]).
    /// Returns `false` if one is already outstanding within `backoff`.
    pub fn note_request(&mut self, origin: RuntimeId, now: SimTime, backoff: SimDuration) -> bool {
        let st = self.origin_mut(origin, now);
        if let Some(at) = st.requested_at {
            if at + backoff > now {
                return false;
            }
        }
        st.requested_at = Some(now);
        true
    }

    fn origin_mut(&mut self, origin: RuntimeId, now: SimTime) -> &mut OriginState {
        self.origins.entry(origin).or_insert(OriginState {
            applied: 0,
            last_heard: now,
            requested_at: None,
        })
    }

    /// Serves a repair request against the own log: replayed ops while
    /// the log covers `from`, a full snapshot once it was compacted.
    pub fn serve_request(&self, from: u64) -> ServeReply {
        if from > self.own_version {
            // Requester is already ahead (or we restarted); nothing to
            // send, and an empty ops run is harmless to apply.
            return ServeReply::Ops {
                first: from,
                ops: Vec::new(),
            };
        }
        match self.own_log.front() {
            Some((v0, _)) if *v0 <= from => ServeReply::Ops {
                first: from,
                ops: self
                    .own_log
                    .iter()
                    .filter(|(v, _)| *v >= from)
                    .map(|(_, op)| op.clone())
                    .collect(),
            },
            _ => ServeReply::Snapshot {
                version: self.own_version,
                profiles: self
                    .table
                    .local_entries()
                    .map(|e| e.profile.clone())
                    .collect(),
            },
        }
    }

    /// Replaces the view of `origin` with a full snapshot at `version`,
    /// applied as a diff: entries absent from the snapshot disappear,
    /// the rest are upserted. Returns the number of visible changes.
    pub fn apply_snapshot(
        &mut self,
        origin: RuntimeId,
        home: Addr,
        version: u64,
        profiles: &[TranslatorProfile],
        now: SimTime,
        events: &mut Vec<DirectoryEvent>,
    ) -> u64 {
        if origin == self.me {
            return 0;
        }
        let stale = {
            let st = self.origin_mut(origin, now);
            st.last_heard = now;
            let stale = version <= st.applied;
            if !stale {
                st.applied = version;
                st.requested_at = None;
            }
            stale
        };
        if stale {
            return 0;
        }
        let keep: BTreeSet<TranslatorId> = profiles.iter().map(|p| p.id()).collect();
        let existing: Vec<TranslatorId> = self
            .table
            .origin_entries(origin)
            .map(|e| e.profile.id())
            .collect();
        let mut changes = 0u64;
        for id in existing {
            if !keep.contains(&id) && self.table.remove(id).is_some() {
                events.push(DirectoryEvent::Disappeared(id));
                changes += 1;
            }
        }
        for p in profiles {
            let effect = self.table.upsert(p.clone(), home, SimTime::MAX, false);
            if effect == UpsertEffect::Appeared {
                events.push(DirectoryEvent::Appeared(p.clone()));
                changes += 1;
            }
        }
        changes
    }

    /// Evicts every origin not heard from within `ttl`: all its entries
    /// leave the table (Disappeared events, ids appended to `removed` in
    /// origin-then-id order) and its version state is forgotten, so a
    /// returning origin is re-synced from scratch.
    pub fn evict_stale_origins(
        &mut self,
        now: SimTime,
        ttl: SimDuration,
        events: &mut Vec<DirectoryEvent>,
        removed: &mut Vec<TranslatorId>,
    ) {
        removed.clear();
        let stale: Vec<RuntimeId> = self
            .origins
            .iter()
            .filter(|(_, st)| st.last_heard + ttl <= now)
            .map(|(rt, _)| *rt)
            .collect();
        for origin in stale {
            self.origins.remove(&origin);
            let from = removed.len();
            self.table.remove_origin(origin, removed);
            for id in &removed[from..] {
                events.push(DirectoryEvent::Disappeared(*id));
            }
        }
    }

    /// The full version vector: own watermark first, then every known
    /// remote origin in ascending id order.
    pub fn version_vector(&self) -> Vec<(RuntimeId, u64)> {
        let mut v = Vec::with_capacity(1 + self.origins.len());
        v.push((self.me, self.own_version));
        v.extend(self.origins.iter().map(|(rt, st)| (*rt, st.applied)));
        v
    }

    /// Canonical digest of the replicated content (see
    /// [`DirectoryTable::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.table.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use crate::shape::{Direction, PortKind, Shape};
    use simnet::NodeId;

    fn home(rt: u32) -> Addr {
        Addr::new(NodeId::from_index(rt as usize), 47_001)
    }

    fn t0() -> SimTime {
        SimTime::from_secs(1)
    }

    fn no_backoff() -> SimDuration {
        SimDuration::from_secs(0)
    }

    fn profile(rt: u32, local: u32, name: &str, mime: &str) -> TranslatorProfile {
        let shape = Shape::builder()
            .digital("o", Direction::Output, mime.parse().expect("mime"))
            .build()
            .expect("shape");
        TranslatorProfile::builder(TranslatorId::new(RuntimeId(rt), local), name)
            .shape(shape)
            .build()
    }

    /// Publishes `n` adds on an origin replica, returning the deltas as
    /// `(first, op)` units.
    fn publish(origin: &mut DirectoryReplica, rt: u32, n: u32) -> Vec<(u64, DeltaOp)> {
        (0..n)
            .map(|i| {
                let p = profile(rt, i, &format!("svc-{i}"), "image/jpeg");
                let v = origin.record_local_add(p.clone(), home(rt));
                (v, DeltaOp::Add(p))
            })
            .collect()
    }

    #[test]
    fn in_order_deltas_apply_and_duplicates_are_ignored() {
        let mut origin = DirectoryReplica::new(RuntimeId(1), 64);
        let deltas = publish(&mut origin, 1, 3);
        let mut obs = DirectoryReplica::new(RuntimeId(9), 64);
        let mut events = Vec::new();
        for (v, op) in &deltas {
            let out = obs.apply_delta(
                RuntimeId(1),
                home(1),
                *v,
                std::slice::from_ref(op),
                t0(),
                &mut events,
            );
            assert_eq!(out, DeltaOutcome::Applied(1));
        }
        assert_eq!(events.len(), 3);
        assert_eq!(obs.applied(RuntimeId(1)), 3);
        assert_eq!(obs.fingerprint(), origin.fingerprint());
        // Replay of an old delta: no-op.
        let (v, op) = &deltas[1];
        let out = obs.apply_delta(
            RuntimeId(1),
            home(1),
            *v,
            std::slice::from_ref(op),
            t0(),
            &mut events,
        );
        assert_eq!(out, DeltaOutcome::Applied(0));
        assert_eq!(events.len(), 3);
    }

    #[test]
    fn gap_drops_the_delta_and_requests_the_missing_range() {
        let mut origin = DirectoryReplica::new(RuntimeId(1), 64);
        let deltas = publish(&mut origin, 1, 3);
        let mut obs = DirectoryReplica::new(RuntimeId(9), 64);
        let mut events = Vec::new();
        // Versions 1 and 2 are lost; version 3 arrives first.
        let (v, op) = &deltas[2];
        let out = obs.apply_delta(
            RuntimeId(1),
            home(1),
            *v,
            std::slice::from_ref(op),
            t0(),
            &mut events,
        );
        assert_eq!(out, DeltaOutcome::Gap { from: 1 });
        assert!(events.is_empty());
        assert_eq!(obs.table().len(), 0, "gapped delta must not be applied");
        // The origin serves the whole range from its log…
        let ServeReply::Ops { first, ops } = origin.serve_request(1) else {
            panic!("log covers version 1");
        };
        assert_eq!((first, ops.len()), (1, 3));
        // …and applying it converges the observer.
        let out = obs.apply_delta(RuntimeId(1), home(1), first, &ops, t0(), &mut events);
        assert_eq!(out, DeltaOutcome::Applied(3));
        assert_eq!(obs.fingerprint(), origin.fingerprint());
    }

    #[test]
    fn digest_detects_divergence_and_backoff_dedups_requests() {
        let mut origin = DirectoryReplica::new(RuntimeId(1), 64);
        publish(&mut origin, 1, 2);
        let mut obs = DirectoryReplica::new(RuntimeId(9), 64);
        let vector = vec![(RuntimeId(1), origin.own_version())];
        let backoff = SimDuration::from_secs(5);
        assert_eq!(
            obs.observe_digest(RuntimeId(1), &vector, t0(), backoff),
            Some(1)
        );
        // Same tick, request outstanding: suppressed.
        assert_eq!(
            obs.observe_digest(RuntimeId(1), &vector, t0(), backoff),
            None
        );
        // After the backoff lapses it retries.
        let later = t0() + backoff;
        assert_eq!(
            obs.observe_digest(RuntimeId(1), &vector, later, backoff),
            Some(1)
        );
        // An in-sync replica never requests.
        let ServeReply::Ops { first, ops } = origin.serve_request(1) else {
            panic!("log covers version 1");
        };
        let mut events = Vec::new();
        obs.apply_delta(RuntimeId(1), home(1), first, &ops, later, &mut events);
        assert_eq!(
            obs.observe_digest(RuntimeId(1), &vector, later, backoff),
            None
        );
    }

    #[test]
    fn compacted_log_serves_a_snapshot_and_the_diff_converges() {
        // Cap 2: versions 1..=3 of 5 are compacted away.
        let mut origin = DirectoryReplica::new(RuntimeId(1), 2);
        publish(&mut origin, 1, 4);
        origin.record_local_remove(TranslatorId::new(RuntimeId(1), 0));
        assert_eq!(origin.own_version(), 5);

        // The observer saw the first two adds, then a partition.
        let mut obs = DirectoryReplica::new(RuntimeId(9), 64);
        let mut events = Vec::new();
        for i in 0..2u32 {
            let p = profile(1, i, &format!("svc-{i}"), "image/jpeg");
            obs.apply_delta(
                RuntimeId(1),
                home(1),
                u64::from(i) + 1,
                &[DeltaOp::Add(p)],
                t0(),
                &mut events,
            );
        }
        let from = obs
            .observe_digest(
                RuntimeId(1),
                &[(RuntimeId(1), origin.own_version())],
                t0(),
                no_backoff(),
            )
            .expect("diverged");
        assert_eq!(from, 3);
        let ServeReply::Snapshot { version, profiles } = origin.serve_request(from) else {
            panic!("range compacted, must snapshot");
        };
        assert_eq!(version, 5);
        events.clear();
        obs.apply_snapshot(RuntimeId(1), home(1), version, &profiles, t0(), &mut events);
        assert_eq!(obs.fingerprint(), origin.fingerprint());
        // svc-0 was added then removed at the origin; the diff must
        // retract it from the observer too.
        assert!(events
            .iter()
            .any(|e| *e == DirectoryEvent::Disappeared(TranslatorId::new(RuntimeId(1), 0))));
        assert_eq!(obs.applied(RuntimeId(1)), 5);
    }

    #[test]
    fn stale_origins_are_evicted_with_their_entries() {
        let mut origin = DirectoryReplica::new(RuntimeId(1), 64);
        let deltas = publish(&mut origin, 1, 2);
        let mut obs = DirectoryReplica::new(RuntimeId(9), 64);
        let mut events = Vec::new();
        for (v, op) in &deltas {
            obs.apply_delta(
                RuntimeId(1),
                home(1),
                *v,
                std::slice::from_ref(op),
                t0(),
                &mut events,
            );
        }
        events.clear();
        let ttl = SimDuration::from_secs(15);
        let mut removed = Vec::new();
        // Heard recently: kept.
        obs.evict_stale_origins(
            t0() + SimDuration::from_secs(10),
            ttl,
            &mut events,
            &mut removed,
        );
        assert!(removed.is_empty());
        assert_eq!(obs.table().len(), 2);
        // Silent past the TTL: the whole origin goes.
        obs.evict_stale_origins(t0() + ttl, ttl, &mut events, &mut removed);
        assert_eq!(removed.len(), 2);
        assert_eq!(events.len(), 2);
        assert!(obs.table().is_empty());
        assert_eq!(obs.applied(RuntimeId(1)), 0, "version state forgotten");
    }

    #[test]
    fn version_vector_lists_self_then_remotes() {
        let mut origin = DirectoryReplica::new(RuntimeId(7), 64);
        publish(&mut origin, 7, 2);
        let mut obs = DirectoryReplica::new(RuntimeId(3), 64);
        let mut events = Vec::new();
        let p = profile(7, 0, "svc-0", "image/jpeg");
        obs.apply_delta(
            RuntimeId(7),
            home(7),
            1,
            &[DeltaOp::Add(p)],
            t0(),
            &mut events,
        );
        obs.record_local_add(profile(3, 0, "mine", "audio/pcm"), home(3));
        assert_eq!(
            obs.version_vector(),
            vec![(RuntimeId(3), 1), (RuntimeId(7), 1)]
        );
    }

    // -----------------------------------------------------------------
    // The convergence battery (16 randomized cases): random op streams
    // from several origins, delivered to two observers with reordering,
    // duplication and loss, must — after anti-entropy repair — converge
    // both observers to the byte-identical table and index a full-state
    // bootstrap produces.
    // -----------------------------------------------------------------

    const MIMES: &[&str] = &["image/jpeg", "image/png", "audio/pcm", "image/*", "text/ps"];

    /// One random local mutation on `origin`; returns the delta unit.
    fn random_op(
        origin: &mut DirectoryReplica,
        rt: u32,
        next_local: &mut u32,
        alive: &mut Vec<u32>,
        rng: &mut simnet::SimRng,
    ) -> (u64, DeltaOp) {
        let roll = rng.gen_range(0u32..10);
        if roll < 6 || alive.is_empty() {
            // Add a new translator.
            let local = *next_local;
            *next_local += 1;
            alive.push(local);
            let mime = MIMES[rng.gen_range(0usize..MIMES.len())];
            let p = profile(rt, local, &format!("svc-{rt}-{local}"), mime);
            let v = origin.record_local_add(p.clone(), home(rt));
            (v, DeltaOp::Add(p))
        } else if roll < 8 {
            // Update an existing one (same id, new shape/attrs).
            let local = alive[rng.gen_range(0usize..alive.len())];
            let mime = MIMES[rng.gen_range(0usize..MIMES.len())];
            let p = profile(rt, local, &format!("svc-{rt}-{local}"), mime)
                .with_attr("rev", rng.gen_range(0u32..100).to_string());
            let v = origin.record_local_add(p.clone(), home(rt));
            (v, DeltaOp::Add(p))
        } else {
            // Remove one.
            let idx = rng.gen_range(0usize..alive.len());
            let local = alive.swap_remove(idx);
            let id = TranslatorId::new(RuntimeId(rt), local);
            let v = origin.record_local_remove(id).expect("alive");
            (v, DeltaOp::Remove(id))
        }
    }

    /// Applies a mangled copy of the delta stream: random order
    /// perturbation, ~20% loss, ~20% duplication.
    fn deliver_mangled(
        obs: &mut DirectoryReplica,
        streams: &[(u32, Vec<(u64, DeltaOp)>)],
        rng: &mut simnet::SimRng,
    ) {
        let mut queue: Vec<(u32, u64, DeltaOp)> = Vec::new();
        for (rt, deltas) in streams {
            for (v, op) in deltas {
                if rng.gen_bool(0.2) {
                    continue; // lost
                }
                queue.push((*rt, *v, op.clone()));
                if rng.gen_bool(0.2) {
                    queue.push((*rt, *v, op.clone())); // duplicated
                }
            }
        }
        // Random transpositions ≈ network reordering.
        for _ in 0..queue.len() {
            if queue.len() >= 2 {
                let a = rng.gen_range(0usize..queue.len());
                let b = rng.gen_range(0usize..queue.len());
                queue.swap(a, b);
            }
        }
        let mut events = Vec::new();
        for (rt, v, op) in queue {
            let _ = obs.apply_delta(
                RuntimeId(rt),
                home(rt),
                v,
                std::slice::from_ref(&op),
                t0(),
                &mut events,
            );
        }
    }

    /// Anti-entropy rounds until every observer matches every origin's
    /// watermark (bounded; each gap heals in one round).
    fn repair(obs: &mut DirectoryReplica, origins: &[(u32, &DirectoryReplica)]) {
        for round in 0..8 {
            let mut dirty = false;
            for (rt, origin) in origins {
                let vector = vec![(RuntimeId(*rt), origin.own_version())];
                let Some(from) = obs.observe_digest(RuntimeId(*rt), &vector, t0(), no_backoff())
                else {
                    continue;
                };
                dirty = true;
                let mut events = Vec::new();
                match origin.serve_request(from) {
                    ServeReply::Ops { first, ops } => {
                        obs.apply_delta(RuntimeId(*rt), home(*rt), first, &ops, t0(), &mut events);
                    }
                    ServeReply::Snapshot { version, profiles } => {
                        obs.apply_snapshot(
                            RuntimeId(*rt),
                            home(*rt),
                            version,
                            &profiles,
                            t0(),
                            &mut events,
                        );
                    }
                }
            }
            if !dirty {
                return;
            }
            assert!(round < 7, "anti-entropy failed to converge");
        }
    }

    #[test]
    fn mangled_delivery_plus_repair_converges_to_bootstrap() {
        simnet::check_cases("replica_convergence", 16, |case, rng| {
            // Small log caps force the snapshot path in some cases.
            let log_cap = rng.gen_range(4usize..48);
            let origin_ids = [1u32, 2, 3];
            let mut origins: Vec<DirectoryReplica> = origin_ids
                .iter()
                .map(|rt| DirectoryReplica::new(RuntimeId(*rt), log_cap))
                .collect();
            let mut streams: Vec<(u32, Vec<(u64, DeltaOp)>)> = Vec::new();
            for (i, rt) in origin_ids.iter().enumerate() {
                let n_ops = rng.gen_range(5u32..60);
                let mut next_local = 0;
                let mut alive = Vec::new();
                let deltas: Vec<(u64, DeltaOp)> = (0..n_ops)
                    .map(|_| random_op(&mut origins[i], *rt, &mut next_local, &mut alive, rng))
                    .collect();
                streams.push((*rt, deltas));
            }

            // Two independently mangled observers.
            let mut obs_a = DirectoryReplica::new(RuntimeId(10), log_cap);
            let mut obs_b = DirectoryReplica::new(RuntimeId(11), log_cap);
            deliver_mangled(&mut obs_a, &streams, rng);
            deliver_mangled(&mut obs_b, &streams, rng);

            let origin_refs: Vec<(u32, &DirectoryReplica)> = origin_ids
                .iter()
                .map(|rt| (*rt, &origins[(*rt - 1) as usize]))
                .collect();
            repair(&mut obs_a, &origin_refs);
            repair(&mut obs_b, &origin_refs);

            // Reference: a fresh replica bootstrapped from full state.
            let mut boot = DirectoryReplica::new(RuntimeId(12), log_cap);
            let mut events = Vec::new();
            for (rt, origin) in &origin_refs {
                let profiles: Vec<TranslatorProfile> = origin
                    .table()
                    .local_entries()
                    .map(|e| e.profile.clone())
                    .collect();
                boot.apply_snapshot(
                    RuntimeId(*rt),
                    home(*rt),
                    origin.own_version(),
                    &profiles,
                    t0(),
                    &mut events,
                );
            }

            let expect = boot.fingerprint();
            assert_eq!(
                obs_a.fingerprint(),
                expect,
                "case {case}: observer A diverged"
            );
            assert_eq!(
                obs_b.fingerprint(),
                expect,
                "case {case}: observer B diverged"
            );

            // Index agreement too: every lookup path must see the same
            // federation through all three replicas.
            let queries = [
                Query::All,
                Query::has_port(
                    Direction::Output,
                    PortKind::Digital("image/jpeg".parse().expect("mime")),
                ),
                Query::has_port(
                    Direction::Output,
                    PortKind::Digital("image/*".parse().expect("mime")),
                ),
                Query::has_port(
                    Direction::Output,
                    PortKind::Digital(crate::mime::MimeType::any()),
                ),
            ];
            for q in &queries {
                let ids = |r: &DirectoryReplica| -> Vec<TranslatorId> {
                    r.table().lookup(q).iter().map(|p| p.id()).collect()
                };
                assert_eq!(ids(&obs_a), ids(&boot), "case {case}: lookup {q:?}");
                assert_eq!(ids(&obs_b), ids(&boot), "case {case}: lookup {q:?}");
            }

            // And the applied watermarks match the origins' versions.
            for (rt, origin) in &origin_refs {
                assert_eq!(obs_a.applied(RuntimeId(*rt)), origin.own_version());
                assert_eq!(obs_b.applied(RuntimeId(*rt)), origin.own_version());
            }
        });
    }
}
