//! Translator profiles: what the directory stores and queries select.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::id::TranslatorId;
use crate::shape::Shape;

/// The advertised description of a translator in the intermediary
/// semantic space: identity, human-readable name, originating platform,
/// shape, and free-form attributes.
///
/// Profiles are what [`lookup`](crate::Query) returns and what the
/// directory module gossips between runtimes.
///
/// The description itself lives behind an [`Arc`]: cloning a profile is a
/// reference-count bump, so fanning one appearance out to N directory
/// listeners, replicating it across tables, or carrying it through the
/// delta-gossip plane costs O(1) per copy regardless of how many ports
/// and attributes it has. The rare mutating operations
/// ([`with_id`](TranslatorProfile::with_id),
/// [`with_attr`](TranslatorProfile::with_attr)) copy-on-write.
///
/// # Examples
///
/// ```
/// use umiddle_core::{Direction, RuntimeId, Shape, TranslatorId, TranslatorProfile};
///
/// let shape = Shape::builder()
///     .digital("image-out", Direction::Output, "image/jpeg".parse()?)
///     .build()?;
/// let profile = TranslatorProfile::builder(
///     TranslatorId::new(RuntimeId(0), 3),
///     "BIP Camera",
/// )
/// .platform("bluetooth")
/// .shape(shape)
/// .attr("profile", "bip")
/// .build();
/// assert_eq!(profile.platform(), "bluetooth");
/// # Ok::<(), umiddle_core::CoreError>(())
/// ```
#[derive(Clone)]
pub struct TranslatorProfile {
    inner: Arc<ProfileInner>,
}

#[derive(Debug, Clone, PartialEq)]
struct ProfileInner {
    id: TranslatorId,
    name: String,
    platform: String,
    shape: Shape,
    attrs: BTreeMap<String, String>,
}

impl TranslatorProfile {
    /// Starts building a profile. `"umiddle"` is the default platform,
    /// meaning a native uMiddle service.
    pub fn builder(id: TranslatorId, name: impl Into<String>) -> TranslatorProfileBuilder {
        TranslatorProfileBuilder {
            profile: ProfileInner {
                id,
                name: name.into(),
                platform: "umiddle".to_owned(),
                shape: Shape::default(),
                attrs: BTreeMap::new(),
            },
        }
    }

    /// The globally unique translator id.
    pub fn id(&self) -> TranslatorId {
        self.inner.id
    }

    /// Human-readable device name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The platform the device was imported from (`"upnp"`,
    /// `"bluetooth"`, `"rmi"`, `"umiddle"` for native services, …).
    pub fn platform(&self) -> &str {
        &self.inner.platform
    }

    /// The device's shape (its set of typed ports).
    pub fn shape(&self) -> &Shape {
        &self.inner.shape
    }

    /// Looks up a free-form attribute.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.inner.attrs.get(key).map(String::as_str)
    }

    /// All attributes, sorted by key.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.inner
            .attrs
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Re-keys a profile onto a different translator id (used when the
    /// same device description is instantiated repeatedly).
    pub fn with_id(mut self, id: TranslatorId) -> TranslatorProfile {
        Arc::make_mut(&mut self.inner).id = id;
        self
    }

    /// Adds or replaces an attribute (builder style on a built profile).
    pub fn with_attr(
        mut self,
        key: impl Into<String>,
        value: impl Into<String>,
    ) -> TranslatorProfile {
        Arc::make_mut(&mut self.inner)
            .attrs
            .insert(key.into(), value.into());
        self
    }

    /// `true` if both handles point at the same shared description (used
    /// by tests pinning the O(1)-clone behavior).
    pub fn shares_storage(&self, other: &TranslatorProfile) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl PartialEq for TranslatorProfile {
    fn eq(&self, other: &TranslatorProfile) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner == other.inner
    }
}

impl fmt::Debug for TranslatorProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl fmt::Display for TranslatorProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:?} [{}] {}",
            self.inner.id, self.inner.name, self.inner.platform, self.inner.shape
        )
    }
}

/// Builder for [`TranslatorProfile`].
#[derive(Debug, Clone)]
pub struct TranslatorProfileBuilder {
    profile: ProfileInner,
}

impl TranslatorProfileBuilder {
    /// Sets the originating platform.
    pub fn platform(mut self, platform: impl Into<String>) -> TranslatorProfileBuilder {
        self.profile.platform = platform.into();
        self
    }

    /// Sets the shape.
    pub fn shape(mut self, shape: Shape) -> TranslatorProfileBuilder {
        self.profile.shape = shape;
        self
    }

    /// Adds an attribute.
    pub fn attr(
        mut self,
        key: impl Into<String>,
        value: impl Into<String>,
    ) -> TranslatorProfileBuilder {
        self.profile.attrs.insert(key.into(), value.into());
        self
    }

    /// Finishes the profile.
    pub fn build(self) -> TranslatorProfile {
        TranslatorProfile {
            inner: Arc::new(self.profile),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::RuntimeId;
    use crate::shape::Direction;

    #[test]
    fn builder_defaults_and_overrides() {
        let p = TranslatorProfile::builder(TranslatorId::new(RuntimeId(1), 2), "Thing").build();
        assert_eq!(p.platform(), "umiddle");
        assert!(p.shape().ports().is_empty());
        assert_eq!(p.attr("x"), None);

        let p2 = TranslatorProfile::builder(TranslatorId::new(RuntimeId(1), 3), "Other")
            .platform("upnp")
            .attr("a", "1")
            .attr("b", "2")
            .build();
        assert_eq!(p2.platform(), "upnp");
        let attrs: Vec<_> = p2.attrs().collect();
        assert_eq!(attrs, vec![("a", "1"), ("b", "2")]);
    }

    #[test]
    fn with_id_rekeys() {
        let p = TranslatorProfile::builder(TranslatorId::new(RuntimeId(0), 0), "X").build();
        let q = p.clone().with_id(TranslatorId::new(RuntimeId(9), 9));
        assert_eq!(q.id(), TranslatorId::new(RuntimeId(9), 9));
        assert_eq!(q.name(), p.name());
    }

    #[test]
    fn clones_share_storage_and_cow_detaches() {
        let p = TranslatorProfile::builder(TranslatorId::new(RuntimeId(0), 1), "Cam").build();
        let q = p.clone();
        assert!(p.shares_storage(&q), "clone is a refcount bump");
        assert_eq!(p, q);
        // A mutation must not write through to other handles.
        let r = q.clone().with_attr("room", "den");
        assert!(!r.shares_storage(&p));
        assert_eq!(p.attr("room"), None);
        assert_eq!(r.attr("room"), Some("den"));
    }

    #[test]
    fn display_mentions_name_and_platform() {
        let shape = Shape::builder()
            .digital("o", Direction::Output, "a/b".parse().unwrap())
            .build()
            .unwrap();
        let p = TranslatorProfile::builder(TranslatorId::new(RuntimeId(0), 1), "Cam")
            .platform("bluetooth")
            .shape(shape)
            .build();
        let s = p.to_string();
        assert!(s.contains("Cam") && s.contains("bluetooth"));
    }
}
