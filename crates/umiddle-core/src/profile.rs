//! Translator profiles: what the directory stores and queries select.

use std::collections::BTreeMap;
use std::fmt;

use crate::id::TranslatorId;
use crate::shape::Shape;

/// The advertised description of a translator in the intermediary
/// semantic space: identity, human-readable name, originating platform,
/// shape, and free-form attributes.
///
/// Profiles are what [`lookup`](crate::Query) returns and what the
/// directory module gossips between runtimes.
///
/// # Examples
///
/// ```
/// use umiddle_core::{Direction, RuntimeId, Shape, TranslatorId, TranslatorProfile};
///
/// let shape = Shape::builder()
///     .digital("image-out", Direction::Output, "image/jpeg".parse()?)
///     .build()?;
/// let profile = TranslatorProfile::builder(
///     TranslatorId::new(RuntimeId(0), 3),
///     "BIP Camera",
/// )
/// .platform("bluetooth")
/// .shape(shape)
/// .attr("profile", "bip")
/// .build();
/// assert_eq!(profile.platform(), "bluetooth");
/// # Ok::<(), umiddle_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TranslatorProfile {
    id: TranslatorId,
    name: String,
    platform: String,
    shape: Shape,
    attrs: BTreeMap<String, String>,
}

impl TranslatorProfile {
    /// Starts building a profile. `"umiddle"` is the default platform,
    /// meaning a native uMiddle service.
    pub fn builder(id: TranslatorId, name: impl Into<String>) -> TranslatorProfileBuilder {
        TranslatorProfileBuilder {
            profile: TranslatorProfile {
                id,
                name: name.into(),
                platform: "umiddle".to_owned(),
                shape: Shape::default(),
                attrs: BTreeMap::new(),
            },
        }
    }

    /// The globally unique translator id.
    pub fn id(&self) -> TranslatorId {
        self.id
    }

    /// Human-readable device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The platform the device was imported from (`"upnp"`,
    /// `"bluetooth"`, `"rmi"`, `"umiddle"` for native services, …).
    pub fn platform(&self) -> &str {
        &self.platform
    }

    /// The device's shape (its set of typed ports).
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Looks up a free-form attribute.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.get(key).map(String::as_str)
    }

    /// All attributes, sorted by key.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Re-keys a profile onto a different translator id (used when the
    /// same device description is instantiated repeatedly).
    pub fn with_id(mut self, id: TranslatorId) -> TranslatorProfile {
        self.id = id;
        self
    }

    /// Adds or replaces an attribute (builder style on a built profile).
    pub fn with_attr(
        mut self,
        key: impl Into<String>,
        value: impl Into<String>,
    ) -> TranslatorProfile {
        self.attrs.insert(key.into(), value.into());
        self
    }
}

impl fmt::Display for TranslatorProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:?} [{}] {}",
            self.id, self.name, self.platform, self.shape
        )
    }
}

/// Builder for [`TranslatorProfile`].
#[derive(Debug, Clone)]
pub struct TranslatorProfileBuilder {
    profile: TranslatorProfile,
}

impl TranslatorProfileBuilder {
    /// Sets the originating platform.
    pub fn platform(mut self, platform: impl Into<String>) -> TranslatorProfileBuilder {
        self.profile.platform = platform.into();
        self
    }

    /// Sets the shape.
    pub fn shape(mut self, shape: Shape) -> TranslatorProfileBuilder {
        self.profile.shape = shape;
        self
    }

    /// Adds an attribute.
    pub fn attr(
        mut self,
        key: impl Into<String>,
        value: impl Into<String>,
    ) -> TranslatorProfileBuilder {
        self.profile.attrs.insert(key.into(), value.into());
        self
    }

    /// Finishes the profile.
    pub fn build(self) -> TranslatorProfile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::RuntimeId;
    use crate::shape::Direction;

    #[test]
    fn builder_defaults_and_overrides() {
        let p = TranslatorProfile::builder(TranslatorId::new(RuntimeId(1), 2), "Thing").build();
        assert_eq!(p.platform(), "umiddle");
        assert!(p.shape().ports().is_empty());
        assert_eq!(p.attr("x"), None);

        let p2 = TranslatorProfile::builder(TranslatorId::new(RuntimeId(1), 3), "Other")
            .platform("upnp")
            .attr("a", "1")
            .attr("b", "2")
            .build();
        assert_eq!(p2.platform(), "upnp");
        let attrs: Vec<_> = p2.attrs().collect();
        assert_eq!(attrs, vec![("a", "1"), ("b", "2")]);
    }

    #[test]
    fn with_id_rekeys() {
        let p = TranslatorProfile::builder(TranslatorId::new(RuntimeId(0), 0), "X").build();
        let q = p.clone().with_id(TranslatorId::new(RuntimeId(9), 9));
        assert_eq!(q.id(), TranslatorId::new(RuntimeId(9), 9));
        assert_eq!(q.name(), p.name());
    }

    #[test]
    fn display_mentions_name_and_platform() {
        let shape = Shape::builder()
            .digital("o", Direction::Output, "a/b".parse().unwrap())
            .build()
            .unwrap();
        let p = TranslatorProfile::builder(TranslatorId::new(RuntimeId(0), 1), "Cam")
            .platform("bluetooth")
            .shape(shape)
            .build();
        let s = p.to_string();
        assert!(s.contains("Cam") && s.contains("bluetooth"));
    }
}
