//! MIME types with wildcard matching — the data-type tags of digital ports.
//!
//! The paper's Service Shaping technique tags every *digital port* with a
//! MIME type; two devices are compatible when an output port and an input
//! port carry matching types. Applications may use wildcards (`image/*`,
//! `*/*`) in queries, mirroring the paper's `visible/*` example.

use std::fmt;
use std::str::FromStr;

use crate::error::CoreError;

/// A MIME type: a type and subtype, either of which may be the wildcard
/// `*` in patterns used by queries.
///
/// Comparison via [`MimeType::matches`] is asymmetric-safe: wildcards on
/// either side match, and matching is case-insensitive (types are
/// normalized to lowercase on construction).
///
/// # Examples
///
/// ```
/// use umiddle_core::MimeType;
///
/// let jpeg: MimeType = "image/jpeg".parse()?;
/// let any_image: MimeType = "image/*".parse()?;
/// assert!(jpeg.matches(&any_image));
/// assert!(any_image.matches(&jpeg));
/// assert!(!jpeg.matches(&"text/plain".parse()?));
/// # Ok::<(), umiddle_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MimeType {
    ty: String,
    subtype: String,
}

impl MimeType {
    /// Creates a MIME type from its two components, normalizing case.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidMime`] if either component is empty or
    /// contains whitespace or `/`.
    pub fn new(ty: &str, subtype: &str) -> Result<MimeType, CoreError> {
        fn ok(part: &str) -> bool {
            !part.is_empty() && !part.contains('/') && !part.chars().any(|c| c.is_whitespace())
        }
        if !ok(ty) || !ok(subtype) {
            return Err(CoreError::InvalidMime(format!("{ty}/{subtype}")));
        }
        Ok(MimeType {
            ty: ty.to_ascii_lowercase(),
            subtype: subtype.to_ascii_lowercase(),
        })
    }

    /// The full wildcard `*/*`, matching every type.
    pub fn any() -> MimeType {
        MimeType {
            ty: "*".to_owned(),
            subtype: "*".to_owned(),
        }
    }

    /// The primary type component (`image` in `image/jpeg`).
    pub fn ty(&self) -> &str {
        &self.ty
    }

    /// The subtype component (`jpeg` in `image/jpeg`).
    pub fn subtype(&self) -> &str {
        &self.subtype
    }

    /// Returns `true` if either component is a wildcard.
    pub fn is_pattern(&self) -> bool {
        self.ty == "*" || self.subtype == "*"
    }

    /// Returns `true` if `self` and `other` match, treating `*` on either
    /// side as matching anything. This relation is symmetric.
    pub fn matches(&self, other: &MimeType) -> bool {
        fn part(a: &str, b: &str) -> bool {
            a == "*" || b == "*" || a == b
        }
        part(&self.ty, &other.ty) && part(&self.subtype, &other.subtype)
    }

    /// Returns `true` if `self` is at least as specific as `other`
    /// (everything `self` matches, `other` also matches).
    pub fn refines(&self, other: &MimeType) -> bool {
        fn part(narrow: &str, wide: &str) -> bool {
            wide == "*" || narrow == wide
        }
        part(&self.ty, &other.ty) && part(&self.subtype, &other.subtype)
    }
}

impl fmt::Display for MimeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.ty, self.subtype)
    }
}

impl FromStr for MimeType {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<MimeType, CoreError> {
        let (ty, subtype) = s
            .split_once('/')
            .ok_or_else(|| CoreError::InvalidMime(s.to_owned()))?;
        MimeType::new(ty, subtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let m: MimeType = "Image/JPEG".parse().unwrap();
        assert_eq!(m.to_string(), "image/jpeg");
        assert_eq!(m.ty(), "image");
        assert_eq!(m.subtype(), "jpeg");
    }

    #[test]
    fn invalid_forms_rejected() {
        assert!("imagejpeg".parse::<MimeType>().is_err());
        assert!("image/".parse::<MimeType>().is_err());
        assert!("/jpeg".parse::<MimeType>().is_err());
        assert!("ima ge/jpeg".parse::<MimeType>().is_err());
        assert!("image/jp/eg".parse::<MimeType>().is_err());
    }

    #[test]
    fn wildcard_matching() {
        let jpeg: MimeType = "image/jpeg".parse().unwrap();
        let image_any: MimeType = "image/*".parse().unwrap();
        let any: MimeType = MimeType::any();
        assert!(jpeg.matches(&image_any));
        assert!(jpeg.matches(&any));
        assert!(!jpeg.matches(&"image/png".parse().unwrap()));
        assert!(image_any.matches(&"image/png".parse().unwrap()));
        assert!(any.is_pattern());
        assert!(!jpeg.is_pattern());
    }

    #[test]
    fn refinement_is_one_directional() {
        let jpeg: MimeType = "image/jpeg".parse().unwrap();
        let image_any: MimeType = "image/*".parse().unwrap();
        assert!(jpeg.refines(&image_any));
        assert!(!image_any.refines(&jpeg));
        assert!(jpeg.refines(&jpeg));
    }

    fn arb_part(rng: &mut simnet::SimRng) -> String {
        if rng.gen_bool(0.25) {
            "*".to_owned()
        } else {
            let head = rng.gen_string("abcdefghijklmnopqrstuvwxyz", 1);
            let len = rng.gen_range(0usize..=8);
            head + &rng.gen_string("abcdefghijklmnopqrstuvwxyz0123456789-", len)
        }
    }

    fn arb_mime(rng: &mut simnet::SimRng) -> MimeType {
        let t = arb_part(rng);
        let s = arb_part(rng);
        MimeType::new(&t, &s).expect("generated parts are valid")
    }

    /// `matches` is symmetric and reflexive; refinement implies matching;
    /// `*/*` matches everything; parse/display round-trips.
    #[test]
    fn matching_algebra() {
        simnet::check_cases("mime_matching_algebra", 256, |_, rng| {
            let a = arb_mime(rng);
            let b = arb_mime(rng);
            assert_eq!(a.matches(&b), b.matches(&a), "symmetric: {a} vs {b}");
            assert!(a.matches(&a), "reflexive: {a}");
            if a.refines(&b) {
                assert!(a.matches(&b), "refines implies matches: {a} vs {b}");
            }
            assert!(MimeType::any().matches(&a), "*/* matches {a}");
            let back: MimeType = a.to_string().parse().unwrap();
            assert_eq!(a, back, "parse/display round trip");
        });
    }
}
