//! The uMiddle runtime: a simnet process hosting the directory and
//! transport modules of one intermediary translator node.
//!
//! One runtime runs per participating host (the paper's H1, H2, …).
//! Mappers, native services and applications on the same node talk to it
//! through the local API ([`RuntimeRequest`]/[`RuntimeEvent`]); runtimes
//! talk to each other through the directory protocol (multicast + unicast
//! datagrams) and the transport protocol (streams carrying path messages).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use simnet::{
    Addr, Ctx, Datagram, LocalMessage, ProcId, Process, SimDuration, StreamEvent, StreamId,
};

use crate::api::{ConnectTarget, DirectoryEvent, InputDelivery, RuntimeEvent, RuntimeRequest};
use crate::directory::UpsertEffect;
use crate::error::{CoreError, CoreResult};
use crate::id::{ConnectionId, PortRef, RuntimeId, TranslatorId};
use crate::intern::Symbol;
use crate::message::UMessage;
use crate::profile::TranslatorProfile;
use crate::qos::{QosPolicy, TranslationBuffer};
use crate::query::Query;
use crate::replica::{DeltaOutcome, DirectoryReplica, ServeReply};
use crate::shape::{Direction, PortKind};
use crate::wire::{DeltaOp, FrameDecoder, FramedBatch, WireMessage, WireTarget};

/// Timer token for the periodic advertise/expire tick.
const TIMER_TICK: u64 = 0;
/// Timer tokens at or above this value are QoS drain retries; the token
/// minus the base is the path uid.
const TIMER_DRAIN_BASE: u64 = 1;

/// Profile attribute carrying the registration time (virtual ns), used
/// by remote runtimes to compute `umiddle.discovery_latency`.
const REGISTERED_AT_ATTR: &str = "umiddle.registered-ns";
/// Message metadata carrying the emission time (virtual ns), used by the
/// delivering runtime to compute `umiddle.path_latency`.
const SENT_AT_META: &str = "umiddle.sent-ns";
/// Metadata key carrying the id of the open `queue.wait` span while a
/// message sits in a path buffer; stripped when the message is polled.
const QUEUE_SPAN_META: &str = "umiddle.queue-span";
/// Metadata key carrying the id of the open `transport.send` span across
/// the wire; the receiving runtime closes the span (virtual time is
/// federation-global, and both runtimes record into the same world
/// trace), so the span covers serialization, transmission and decode.
const TRANSPORT_SPAN_META: &str = "umiddle.transport-span";

/// Configuration of a uMiddle runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    /// This runtime's federation-unique id.
    pub id: RuntimeId,
    /// Unicast datagram port for directory control traffic.
    pub directory_port: u16,
    /// Multicast group port shared by the federation.
    pub multicast_group: u16,
    /// Stream listener port for path messages.
    pub transport_port: u16,
    /// Interval between advertisement refreshes.
    pub advertise_interval: SimDuration,
    /// Remote entries expire after `advertise_interval * ttl_factor`.
    pub ttl_factor: u32,
    /// Maximum unacknowledged local input deliveries per path.
    pub delivery_credit: u32,
    /// Legacy advertisement mode: re-broadcast the full local profile
    /// table every tick with per-entry TTL expiry, instead of the
    /// delta-gossip protocol. Kept for A/B measurement (E12); the two
    /// modes interoperate in one federation.
    pub full_refresh: bool,
    /// How many of its own delta ops a runtime retains to serve
    /// anti-entropy requests before falling back to snapshots.
    pub delta_log_cap: usize,
}

impl RuntimeConfig {
    /// Default configuration for the given runtime id.
    pub fn new(id: RuntimeId) -> RuntimeConfig {
        RuntimeConfig {
            id,
            directory_port: 47_000,
            multicast_group: 47_010,
            transport_port: 47_001,
            advertise_interval: SimDuration::from_secs(5),
            ttl_factor: 3,
            delivery_credit: 4,
            full_refresh: false,
            delta_log_cap: 256,
        }
    }

    fn ttl(&self) -> SimDuration {
        self.advertise_interval * u64::from(self.ttl_factor)
    }
}

#[derive(Debug)]
struct LocalTranslator {
    profile: TranslatorProfile,
    delegate: ProcId,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Requester {
    /// A process on this node (with its connect token).
    Local(ProcId),
    /// Nobody to notify (connection created via a forwarded request).
    Remote,
}

#[derive(Debug)]
struct PathState {
    uid: u64,
    dst: PortRef,
    /// Transport address of the destination's home runtime, or `None`
    /// when the destination translator is hosted by this runtime.
    home: Option<Addr>,
    buffer: TranslationBuffer,
    inflight: u32,
    timer_pending: bool,
}

#[derive(Debug)]
struct Connection {
    id: ConnectionId,
    src: PortRef,
    src_kind: PortKind,
    target: ConnectTarget,
    qos: QosPolicy,
    requester: Requester,
    paths: Vec<PathState>,
}

#[derive(Debug)]
struct PeerLink {
    stream: StreamId,
    up: bool,
}

/// Statistics a runtime exposes for tests and benchmarks.
///
/// Obtain a shared handle with [`UmiddleRuntime::stats_handle`] *before*
/// moving the runtime into the world, then read it any time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuntimeStats {
    /// Path messages forwarded to local delegates.
    pub local_deliveries: u64,
    /// Path messages sent to remote runtimes.
    pub remote_sends: u64,
    /// Path messages received from remote runtimes.
    pub remote_receives: u64,
    /// Messages dropped by QoS policies on currently live paths.
    pub qos_dropped: u64,
    /// Bytes currently buffered across all live paths.
    pub buffered_bytes: usize,
    /// High-water mark of total buffered bytes across all paths.
    pub max_buffered_bytes: usize,
    /// Entries currently in the directory (local + replicated).
    pub directory_entries: u64,
    /// Virtual time (ns) of the last visible directory change, used by
    /// experiments to measure convergence after churn.
    pub last_directory_change_ns: u64,
}

/// The uMiddle runtime process. Add one to a node with
/// [`simnet::World::add_process`], then hand its [`ProcId`] to mappers,
/// native services and applications on that node.
///
/// # Examples
///
/// ```
/// use simnet::{SegmentConfig, SimTime, World};
/// use umiddle_core::{RuntimeConfig, RuntimeId, UmiddleRuntime};
///
/// let mut world = World::new(1);
/// let hub = world.add_segment(SegmentConfig::ethernet_10mbps_hub());
/// let host = world.add_node("host");
/// world.attach(host, hub)?;
/// let runtime = UmiddleRuntime::new(RuntimeConfig::new(RuntimeId(0)));
/// let stats = runtime.stats_handle(); // keep before moving it in
/// let _rt = world.add_process(host, Box::new(runtime));
/// world.run_until(SimTime::from_secs(10));
/// assert_eq!(stats.borrow().local_deliveries, 0); // nothing wired yet
/// # Ok::<(), simnet::SimError>(())
/// ```
#[derive(Debug)]
pub struct UmiddleRuntime {
    cfg: RuntimeConfig,
    directory: DirectoryReplica,
    next_translator: u32,
    next_connection: u32,
    next_path_uid: u64,
    next_wire_token: u64,
    local_translators: HashMap<TranslatorId, LocalTranslator>,
    connections: HashMap<ConnectionId, Connection>,
    /// Source translator → source port → connections fanning out from
    /// that port. The outer level serves disappearance handling; the
    /// inner level is the per-output dispatch lookup.
    src_index: HashMap<TranslatorId, HashMap<Symbol, Vec<ConnectionId>>>,
    /// Connections whose target is a query template (the late-binding
    /// candidates consulted on every appearance).
    query_conns: Vec<ConnectionId>,
    /// Destination translator → connections with a path to it.
    dst_index: HashMap<TranslatorId, Vec<ConnectionId>>,
    /// Remote home address → connections with a path via that peer
    /// (resumed when the peer stream connects or becomes writable).
    home_index: HashMap<Addr, Vec<ConnectionId>>,
    /// Path uid → owning connection, for QoS drain-retry timers.
    path_by_uid: HashMap<u64, ConnectionId>,
    /// Running sum of `occupancy_bytes` over all live paths, updated by
    /// delta at every buffer offer/poll so the watermark is O(1).
    buffered_total: usize,
    /// Running sum of QoS drops over all live paths (same scheme).
    dropped_total: u64,
    /// Reusable fan-out scratch so steady-state dispatch does not
    /// allocate.
    scratch: Vec<ConnectionId>,
    /// Reusable scratch for grouping same-wakeup input deliveries (the
    /// batch plane); taken and restored around each use so the single-
    /// message path never allocates.
    input_scratch: Vec<InputDelivery>,
    /// Reusable scratch for one-pass wire-frame decoding.
    decode_scratch: Vec<CoreResult<WireMessage>>,
    /// Reusable scratch for directory expiry/eviction sweeps, so the
    /// steady-state tick (nothing expired) allocates nothing.
    expire_scratch: Vec<TranslatorId>,
    /// Reusable scratch for directory events surfaced by delta/snapshot
    /// application.
    event_scratch: Vec<DirectoryEvent>,
    listeners: Vec<(ProcId, Query)>,
    /// Forwarded connect requests awaiting a reply: wire token →
    /// (local requester, its token).
    pending_connects: HashMap<u64, (ProcId, u64)>,
    /// Outgoing links keyed by peer transport address.
    peers: HashMap<Addr, PeerLink>,
    /// Reverse map from stream to peer address (outgoing links).
    peer_by_stream: HashMap<StreamId, Addr>,
    /// Decoders for accepted (incoming) streams.
    incoming: HashMap<StreamId, FrameDecoder>,
    stats: Rc<RefCell<RuntimeStats>>,
    /// Metric scope prefix, `rt{N}` (see [`simnet::Metrics::scoped`]).
    scope: String,
}

impl UmiddleRuntime {
    /// Creates a runtime with the given configuration.
    pub fn new(cfg: RuntimeConfig) -> UmiddleRuntime {
        let scope = format!("rt{}", cfg.id.0);
        let directory = DirectoryReplica::new(cfg.id, cfg.delta_log_cap);
        UmiddleRuntime {
            cfg,
            directory,
            next_translator: 1,
            next_connection: 1,
            next_path_uid: 0,
            next_wire_token: 1,
            local_translators: HashMap::new(),
            connections: HashMap::new(),
            src_index: HashMap::new(),
            query_conns: Vec::new(),
            dst_index: HashMap::new(),
            home_index: HashMap::new(),
            path_by_uid: HashMap::new(),
            buffered_total: 0,
            dropped_total: 0,
            scratch: Vec::new(),
            input_scratch: Vec::new(),
            decode_scratch: Vec::new(),
            expire_scratch: Vec::new(),
            event_scratch: Vec::new(),
            listeners: Vec::new(),
            pending_connects: HashMap::new(),
            peers: HashMap::new(),
            peer_by_stream: HashMap::new(),
            incoming: HashMap::new(),
            stats: Rc::new(RefCell::new(RuntimeStats::default())),
            scope,
        }
    }

    /// The `rt{N}` metric scope this runtime records under.
    pub fn metric_scope(&self) -> &str {
        &self.scope
    }

    fn metric(&self, name: &str) -> String {
        format!("{}.{name}", self.scope)
    }

    /// This runtime's id.
    pub fn id(&self) -> RuntimeId {
        self.cfg.id
    }

    /// A shared handle to this runtime's statistics. Clone it before
    /// moving the runtime into a [`simnet::World`]; it stays readable
    /// while the simulation runs.
    pub fn stats_handle(&self) -> Rc<RefCell<RuntimeStats>> {
        Rc::clone(&self.stats)
    }

    /// A snapshot of the accumulated statistics.
    pub fn stats(&self) -> RuntimeStats {
        *self.stats.borrow()
    }

    fn directory_addr(&self, ctx: &Ctx<'_>) -> Addr {
        Addr::new(ctx.node(), self.cfg.directory_port)
    }

    fn transport_addr(&self, ctx: &Ctx<'_>) -> Addr {
        Addr::new(ctx.node(), self.cfg.transport_port)
    }

    // ------------------------------------------------------------------
    // Directory protocol
    // ------------------------------------------------------------------

    /// Multicasts a directory-plane message, charging its encoded length
    /// to the federation-wide `directory.bytes_gossiped` counter (the
    /// measure E12's full-refresh vs delta A/B compares).
    fn gossip_multicast(&mut self, ctx: &mut Ctx<'_>, msg: &WireMessage) {
        let bytes = msg.encode();
        ctx.bump("directory.bytes_gossiped", bytes.len() as u64);
        let _ = ctx.multicast(self.cfg.directory_port, self.cfg.multicast_group, bytes);
    }

    /// Unicasts a directory-plane message, with the same byte accounting
    /// as [`Self::gossip_multicast`].
    fn gossip_unicast(&mut self, ctx: &mut Ctx<'_>, to: Addr, msg: &WireMessage) {
        let bytes = msg.encode();
        ctx.bump("directory.bytes_gossiped", bytes.len() as u64);
        let _ = ctx.send_to(self.cfg.directory_port, to, bytes);
    }

    /// Unicasts a control message (connect/disconnect plumbing — not
    /// directory gossip, so not charged to `directory.bytes_gossiped`).
    fn unicast_wire(&mut self, ctx: &mut Ctx<'_>, to: Addr, msg: &WireMessage) {
        let _ = ctx.send_to(self.cfg.directory_port, to, msg.encode());
    }

    /// A peer's directory (control) address, derived from its advertised
    /// transport address: by convention every runtime keeps the same
    /// offset between the two ports.
    fn peer_directory(&self, home: Addr) -> Addr {
        Addr::new(
            home.node,
            home.port
                .wrapping_sub(self.cfg.transport_port)
                .wrapping_add(self.cfg.directory_port),
        )
    }

    fn advertise(&mut self, ctx: &mut Ctx<'_>, profile: TranslatorProfile) {
        let home = self.transport_addr(ctx);
        ctx.bump(&self.metric("advertisements_sent"), 1);
        self.gossip_multicast(ctx, &WireMessage::Advertise { profile, home });
    }

    /// This runtime's anti-entropy digest: just its own watermark. Peers
    /// learn about third parties from those parties' own digests, which
    /// keeps the steady-state gossip payload a few dozen bytes no matter
    /// how large the federation or the table grows.
    fn own_digest(&self, ctx: &Ctx<'_>) -> WireMessage {
        WireMessage::Digest {
            origin: self.cfg.id,
            reply_to: self.directory_addr(ctx),
            home: self.transport_addr(ctx),
            vector: vec![(self.cfg.id, self.directory.own_version())],
        }
    }

    fn notify_listeners(&self, ctx: &mut Ctx<'_>, event: &DirectoryEvent) {
        for (proc, query) in &self.listeners {
            let interested = match event {
                DirectoryEvent::Appeared(profile) => query.matches(profile),
                // Disappearance carries no profile; deliver to everyone
                // (listeners track what they saw appear).
                DirectoryEvent::Disappeared(_) => true,
            };
            if interested {
                // Profiles are Arc-backed, so this clone is a refcount
                // bump: N listeners cost O(1) work each, not a deep copy
                // of the profile per listener.
                ctx.send_local(*proc, RuntimeEvent::Directory(event.clone()));
            }
        }
    }

    /// Refreshes the stats-plane view of the directory after a visible
    /// change (entry count + change timestamp drive E12's convergence
    /// measurement).
    fn note_directory_change(&mut self, ctx: &Ctx<'_>) {
        let mut stats = self.stats.borrow_mut();
        stats.directory_entries = self.directory.table().len() as u64;
        stats.last_directory_change_ns = ctx.now().as_nanos();
    }

    /// Records discovery latency for a profile seen for the first time
    /// (registration stamp to first sight; virtual time is
    /// federation-global).
    fn observe_discovery(&self, ctx: &mut Ctx<'_>, profile: &TranslatorProfile) {
        if let Some(reg_ns) = profile
            .attr(REGISTERED_AT_ATTR)
            .and_then(|v| v.parse().ok())
        {
            let d = ctx.now() - simnet::SimTime::from_nanos(reg_ns);
            ctx.observe("umiddle.discovery_latency", d);
        }
    }

    /// Dispatches directory events surfaced by delta/snapshot
    /// application: appearance metrics, listener notification, and
    /// late-binding, exactly as the legacy advertise path.
    fn process_directory_events(&mut self, ctx: &mut Ctx<'_>, events: &mut Vec<DirectoryEvent>) {
        for event in events.drain(..) {
            match event {
                DirectoryEvent::Appeared(profile) => {
                    ctx.bump("umiddle.directory_appearances", 1);
                    self.observe_discovery(ctx, &profile);
                    self.handle_appearance(ctx, &profile);
                }
                DirectoryEvent::Disappeared(id) => self.handle_disappearance(ctx, id),
            }
        }
    }

    fn handle_appearance(&mut self, ctx: &mut Ctx<'_>, profile: &TranslatorProfile) {
        self.note_directory_change(ctx);
        self.notify_listeners(ctx, &DirectoryEvent::Appeared(profile.clone()));
        self.bind_query_connections(ctx, profile);
    }

    fn handle_disappearance(&mut self, ctx: &mut Ctx<'_>, id: TranslatorId) {
        self.note_directory_change(ctx);
        self.notify_listeners(ctx, &DirectoryEvent::Disappeared(id));
        // Remove connections whose source vanished; the source index
        // names them directly, no sweep over unrelated connections.
        if let Some(by_port) = self.src_index.remove(&id) {
            for cid in by_port.into_values().flatten() {
                if let Some(conn) = self.connections.remove(&cid) {
                    // Its src_index entry is already gone with `by_port`.
                    if matches!(conn.target, ConnectTarget::Query(_)) {
                        self.query_conns.retain(|c| *c != cid);
                    }
                    for p in &conn.paths {
                        self.unindex_path(cid, p, &[]);
                    }
                }
            }
        }
        // Unbind paths targeting the vanished translator; the
        // destination index names the affected connections.
        let mut unbound: Vec<(ConnectionId, Requester, PortRef)> = Vec::new();
        for cid in self.dst_index.remove(&id).unwrap_or_default() {
            let Some(conn) = self.connections.get_mut(&cid) else {
                continue;
            };
            let requester = conn.requester;
            let mut removed = Vec::new();
            let mut i = 0;
            while i < conn.paths.len() {
                if conn.paths[i].dst.translator == id {
                    removed.push(conn.paths.remove(i));
                } else {
                    i += 1;
                }
            }
            // Homes still used by surviving paths must stay indexed.
            let live_homes: Vec<Addr> = conn.paths.iter().filter_map(|p| p.home).collect();
            for p in removed {
                self.unindex_path(cid, &p, &live_homes);
                unbound.push((cid, requester, p.dst));
            }
        }
        for (connection, requester, dst) in unbound {
            if let Requester::Local(proc) = requester {
                ctx.send_local(proc, RuntimeEvent::PathUnbound { connection, dst });
            }
        }
    }

    /// Registers a (new, empty-buffer) path in the uid, destination and
    /// home indexes.
    fn index_path(&mut self, cid: ConnectionId, uid: u64, dst: TranslatorId, home: Option<Addr>) {
        self.path_by_uid.insert(uid, cid);
        let by_dst = self.dst_index.entry(dst).or_default();
        if !by_dst.contains(&cid) {
            by_dst.push(cid);
        }
        if let Some(home) = home {
            let by_home = self.home_index.entry(home).or_default();
            if !by_home.contains(&cid) {
                by_home.push(cid);
            }
        }
    }

    /// Drops a removed path's index entries and subtracts its buffered
    /// bytes and drop count from the running totals. `live_homes` lists
    /// home addresses the connection still reaches through other paths
    /// (those keep their home-index entry).
    fn unindex_path(&mut self, cid: ConnectionId, p: &PathState, live_homes: &[Addr]) {
        self.path_by_uid.remove(&p.uid);
        if let Some(v) = self.dst_index.get_mut(&p.dst.translator) {
            v.retain(|c| *c != cid);
            if v.is_empty() {
                self.dst_index.remove(&p.dst.translator);
            }
        }
        if let Some(home) = p.home {
            if !live_homes.contains(&home) {
                if let Some(v) = self.home_index.get_mut(&home) {
                    v.retain(|c| *c != cid);
                    if v.is_empty() {
                        self.home_index.remove(&home);
                    }
                }
            }
        }
        self.buffered_total -= p.buffer.occupancy_bytes();
        self.dropped_total -= p.buffer.stats().dropped();
    }

    /// Drops every index entry for a connection removed from the table.
    fn unindex_connection(&mut self, conn: &Connection) {
        if let Some(by_port) = self.src_index.get_mut(&conn.src.translator) {
            if let Some(v) = by_port.get_mut(&conn.src.port) {
                v.retain(|c| *c != conn.id);
                if v.is_empty() {
                    by_port.remove(&conn.src.port);
                }
            }
            if by_port.is_empty() {
                self.src_index.remove(&conn.src.translator);
            }
        }
        if matches!(conn.target, ConnectTarget::Query(_)) {
            self.query_conns.retain(|c| *c != conn.id);
        }
        for p in &conn.paths {
            self.unindex_path(conn.id, p, &[]);
        }
    }

    fn on_wire_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        let msg = match WireMessage::decode(&dgram.data) {
            Ok(m) => m,
            Err(e) => {
                ctx.bump("umiddle.wire_decode_errors", 1);
                ctx.trace(format!("bad wire datagram from {}: {e}", dgram.src));
                return;
            }
        };
        match msg {
            WireMessage::Advertise { profile, home } => {
                // Legacy full-refresh gossip from a peer running in that
                // mode: TTL-governed upsert, exactly as before.
                if profile.id().runtime == self.cfg.id {
                    return; // our own advertisement echoed back
                }
                let expires = ctx.now() + self.cfg.ttl();
                let effect =
                    self.directory
                        .table_mut()
                        .upsert(profile.clone(), home, expires, false);
                if effect == UpsertEffect::Appeared {
                    ctx.bump("umiddle.directory_appearances", 1);
                    self.observe_discovery(ctx, &profile);
                    self.handle_appearance(ctx, &profile);
                }
            }
            WireMessage::Bye { translator } => {
                if self.directory.table_mut().remove(translator).is_some() {
                    self.handle_disappearance(ctx, translator);
                }
            }
            WireMessage::Probe { reply_to } => {
                if self.cfg.full_refresh {
                    let home = self.transport_addr(ctx);
                    let locals: Vec<TranslatorProfile> = self
                        .directory
                        .table()
                        .local_entries()
                        .map(|e| e.profile.clone())
                        .collect();
                    for profile in locals {
                        self.gossip_unicast(
                            ctx,
                            reply_to,
                            &WireMessage::Advertise { profile, home },
                        );
                    }
                } else {
                    // Boot sync: the digest tells the prober our
                    // watermark; it requests the range it is missing
                    // (all of it) and we serve ops or a snapshot.
                    let digest = self.own_digest(ctx);
                    self.gossip_unicast(ctx, reply_to, &digest);
                }
            }
            WireMessage::Delta {
                origin,
                home,
                first,
                ops,
            } => {
                if origin == self.cfg.id {
                    return; // our own delta echoed back
                }
                let mut events = std::mem::take(&mut self.event_scratch);
                events.clear();
                let outcome =
                    self.directory
                        .apply_delta(origin, home, first, &ops, ctx.now(), &mut events);
                match outcome {
                    DeltaOutcome::Applied(n) => {
                        if n > 0 {
                            ctx.bump("directory.deltas_applied", n);
                        }
                    }
                    DeltaOutcome::Gap { from } => {
                        // Missed earlier deltas: drop this one and pull
                        // exactly the missing range from the origin.
                        let backoff = self.cfg.advertise_interval;
                        if self.directory.note_request(origin, ctx.now(), backoff) {
                            ctx.bump("directory.antientropy_repairs", 1);
                            let reply_to = self.directory_addr(ctx);
                            let to = self.peer_directory(home);
                            self.gossip_unicast(
                                ctx,
                                to,
                                &WireMessage::DeltaRequest {
                                    origin,
                                    from,
                                    reply_to,
                                },
                            );
                        }
                    }
                    DeltaOutcome::Ignored => {}
                }
                self.process_directory_events(ctx, &mut events);
                self.event_scratch = events;
            }
            WireMessage::Digest {
                origin,
                reply_to,
                home: _,
                vector,
            } => {
                if origin == self.cfg.id {
                    return; // our own digest echoed back
                }
                let backoff = self.cfg.advertise_interval;
                if let Some(from) =
                    self.directory
                        .observe_digest(origin, &vector, ctx.now(), backoff)
                {
                    ctx.bump("directory.antientropy_repairs", 1);
                    let my_reply = self.directory_addr(ctx);
                    self.gossip_unicast(
                        ctx,
                        reply_to,
                        &WireMessage::DeltaRequest {
                            origin,
                            from,
                            reply_to: my_reply,
                        },
                    );
                }
            }
            WireMessage::DeltaRequest {
                origin,
                from,
                reply_to,
            } => {
                if origin != self.cfg.id {
                    return; // only the origin serves its own history
                }
                let home = self.transport_addr(ctx);
                match self.directory.serve_request(from) {
                    ServeReply::Ops { first, ops } => {
                        self.gossip_unicast(
                            ctx,
                            reply_to,
                            &WireMessage::Delta {
                                origin,
                                home,
                                first,
                                ops,
                            },
                        );
                    }
                    ServeReply::Snapshot { version, profiles } => {
                        self.gossip_unicast(
                            ctx,
                            reply_to,
                            &WireMessage::Snapshot {
                                origin,
                                home,
                                version,
                                profiles,
                            },
                        );
                    }
                }
            }
            WireMessage::Snapshot {
                origin,
                home,
                version,
                profiles,
            } => {
                if origin == self.cfg.id {
                    return;
                }
                let mut events = std::mem::take(&mut self.event_scratch);
                events.clear();
                let changes = self.directory.apply_snapshot(
                    origin,
                    home,
                    version,
                    &profiles,
                    ctx.now(),
                    &mut events,
                );
                if changes > 0 {
                    ctx.bump("directory.deltas_applied", changes);
                }
                self.process_directory_events(ctx, &mut events);
                self.event_scratch = events;
            }
            WireMessage::ConnectReply { token, result } => {
                if let Some((proc, local_token)) = self.pending_connects.remove(&token) {
                    let event = match result {
                        Ok(connection) => RuntimeEvent::Connected {
                            token: local_token,
                            connection,
                        },
                        Err(reason) => RuntimeEvent::ConnectFailed {
                            token: local_token,
                            reason,
                        },
                    };
                    ctx.send_local(proc, event);
                }
            }
            // Control requests normally arrive over streams, but accept
            // them by datagram too (they fit easily).
            WireMessage::ConnectRequest {
                token,
                reply_to,
                src,
                target,
                qos,
            } => self.handle_connect_request(ctx, token, reply_to, src, target, qos),
            WireMessage::DisconnectRequest { connection } => {
                self.remove_connection(ctx, connection);
            }
            WireMessage::PathMessage { .. } => {
                ctx.bump("umiddle.path_on_datagram", 1);
            }
        }
    }

    // ------------------------------------------------------------------
    // Registration & lookup
    // ------------------------------------------------------------------

    fn handle_register(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: ProcId,
        token: u64,
        profile: TranslatorProfile,
        delegate: ProcId,
    ) {
        let id = TranslatorId::new(self.cfg.id, self.next_translator);
        self.next_translator += 1;
        // Stamp the registration time so remote runtimes can measure
        // discovery latency when the profile first reaches them.
        let profile = profile
            .with_id(id)
            .with_attr(REGISTERED_AT_ATTR, ctx.now().as_nanos().to_string());
        let home = self.transport_addr(ctx);
        self.local_translators.insert(
            id,
            LocalTranslator {
                profile: profile.clone(),
                delegate,
            },
        );
        ctx.send_local(
            from,
            RuntimeEvent::Registered {
                token,
                translator: id,
            },
        );
        ctx.bump("umiddle.registrations", 1);
        ctx.bump(&self.metric("registrations"), 1);
        if self.cfg.full_refresh {
            self.directory
                .table_mut()
                .upsert(profile.clone(), home, simnet::SimTime::MAX, true);
            self.advertise(ctx, profile.clone());
        } else {
            // Event-driven delta: the registration is gossiped once, as
            // the next versioned op in our stream.
            let first = self.directory.record_local_add(profile.clone(), home);
            ctx.bump(&self.metric("advertisements_sent"), 1);
            self.gossip_multicast(
                ctx,
                &WireMessage::Delta {
                    origin: self.cfg.id,
                    home,
                    first,
                    ops: vec![DeltaOp::Add(profile.clone())],
                },
            );
        }
        self.handle_appearance(ctx, &profile);
    }

    fn handle_unregister(&mut self, ctx: &mut Ctx<'_>, translator: TranslatorId) {
        if self.local_translators.remove(&translator).is_none() {
            return;
        }
        if self.cfg.full_refresh {
            self.directory.table_mut().remove(translator);
            self.gossip_multicast(ctx, &WireMessage::Bye { translator });
        } else if let Some(first) = self.directory.record_local_remove(translator) {
            let home = self.transport_addr(ctx);
            self.gossip_multicast(
                ctx,
                &WireMessage::Delta {
                    origin: self.cfg.id,
                    home,
                    first,
                    ops: vec![DeltaOp::Remove(translator)],
                },
            );
        }
        self.handle_disappearance(ctx, translator);
    }

    // ------------------------------------------------------------------
    // Connections
    // ------------------------------------------------------------------

    /// Validates that `src` names a digital output port; returns its kind.
    fn validate_src(&self, src: &PortRef) -> CoreResult<PortKind> {
        let entry = self
            .directory
            .table()
            .get(src.translator)
            .ok_or(CoreError::UnknownTranslator(src.translator))?;
        let port = entry
            .profile
            .shape()
            .port(&src.port)
            .ok_or(CoreError::UnknownPort(*src))?;
        if port.direction != Direction::Output {
            return Err(CoreError::Incompatible(format!(
                "source port {src} is not an output"
            )));
        }
        if !port.kind.is_digital() {
            return Err(CoreError::Incompatible(format!(
                "source port {src} is not digital"
            )));
        }
        Ok(port.kind.clone())
    }

    /// Validates a static destination against the source kind; returns
    /// the destination's home address (`None` when local).
    fn validate_dst(&self, src_kind: &PortKind, dst: &PortRef) -> CoreResult<Option<Addr>> {
        let entry = self
            .directory
            .table()
            .get(dst.translator)
            .ok_or(CoreError::UnknownTranslator(dst.translator))?;
        let port = entry
            .profile
            .shape()
            .port(&dst.port)
            .ok_or(CoreError::UnknownPort(*dst))?;
        if port.direction != Direction::Input {
            return Err(CoreError::Incompatible(format!(
                "destination port {dst} is not an input"
            )));
        }
        if !port.kind.matches(src_kind) {
            return Err(CoreError::Incompatible(format!(
                "data types differ: {} vs {}",
                src_kind, port.kind
            )));
        }
        Ok(if entry.local { None } else { Some(entry.home) })
    }

    fn new_path(&mut self, dst: PortRef, home: Option<Addr>, qos: &QosPolicy) -> PathState {
        let uid = self.next_path_uid;
        self.next_path_uid += 1;
        PathState {
            uid,
            dst,
            home,
            buffer: TranslationBuffer::new(qos.clone()),
            inflight: 0,
            timer_pending: false,
        }
    }

    /// Creates a connection whose source translator is hosted locally.
    fn connect_local_src(
        &mut self,
        ctx: &mut Ctx<'_>,
        src: PortRef,
        target: ConnectTarget,
        qos: QosPolicy,
        requester: Requester,
    ) -> CoreResult<ConnectionId> {
        let src_kind = self.validate_src(&src)?;
        let id = ConnectionId::new(self.cfg.id, self.next_connection);
        let corr = id.corr();
        ctx.span(corr, "connect", format!("src={src}"));
        let mut paths = Vec::new();
        match &target {
            ConnectTarget::Port(dst) => {
                let home = self.validate_dst(&src_kind, dst)?;
                paths.push(self.new_path(*dst, home, &qos));
            }
            ConnectTarget::Query(query) => {
                let matches = self.query_bindings(query, &src, &src_kind);
                ctx.span(
                    corr,
                    "directory.lookup",
                    format!("query={query} matches={}", matches.len()),
                );
                for (dst, home) in matches {
                    paths.push(self.new_path(dst, home, &qos));
                }
            }
        }
        self.next_connection += 1;
        let bound: Vec<PortRef> = paths.iter().map(|p| p.dst).collect();
        self.src_index
            .entry(src.translator)
            .or_default()
            .entry(src.port)
            .or_default()
            .push(id);
        if matches!(target, ConnectTarget::Query(_)) {
            self.query_conns.push(id);
        }
        for p in &paths {
            self.index_path(id, p.uid, p.dst.translator, p.home);
        }
        self.connections.insert(
            id,
            Connection {
                id,
                src,
                src_kind,
                target,
                qos,
                requester,
                paths,
            },
        );
        ctx.bump("umiddle.connections", 1);
        ctx.bump(&self.metric("connections_opened"), 1);
        for dst in &bound {
            ctx.span(corr, "path.bound", format!("dst={dst}"));
        }
        if let Requester::Local(proc) = requester {
            for dst in bound {
                ctx.send_local(
                    proc,
                    RuntimeEvent::PathBound {
                        connection: id,
                        dst,
                    },
                );
            }
        }
        Ok(id)
    }

    /// Finds `(dst port, home)` bindings for a query template: every
    /// directory profile matching the query contributes its first input
    /// port whose type matches the source.
    fn query_bindings(
        &self,
        query: &Query,
        src: &PortRef,
        src_kind: &PortKind,
    ) -> Vec<(PortRef, Option<Addr>)> {
        let mut out = Vec::new();
        for entry in self.directory.table().iter() {
            let profile = &entry.profile;
            if profile.id() == src.translator || !query.matches(profile) {
                continue;
            }
            let port = profile
                .shape()
                .ports_in(Direction::Input)
                .find(|p| p.kind.is_digital() && p.kind.matches(src_kind));
            if let Some(port) = port {
                out.push((
                    PortRef::new(profile.id(), port.name.clone()),
                    if entry.local { None } else { Some(entry.home) },
                ));
            }
        }
        out
    }

    /// Adds paths to query connections when a new profile appears.
    fn bind_query_connections(&mut self, ctx: &mut Ctx<'_>, profile: &TranslatorProfile) {
        let entry_home =
            self.directory
                .table()
                .get(profile.id())
                .map(|e| if e.local { None } else { Some(e.home) });
        let Some(home) = entry_home else { return };
        // Only query-target connections can bind late; appearance events
        // are rare, so a clone of the candidate list is fine here.
        let candidates: Vec<ConnectionId> = self.query_conns.clone();
        for cid in candidates {
            let Some(conn) = self.connections.get(&cid) else {
                continue;
            };
            let ConnectTarget::Query(query) = &conn.target else {
                continue;
            };
            if profile.id() == conn.src.translator
                || !query.matches(profile)
                || conn.paths.iter().any(|p| p.dst.translator == profile.id())
            {
                continue;
            }
            let port = profile
                .shape()
                .ports_in(Direction::Input)
                .find(|p| p.kind.is_digital() && p.kind.matches(&conn.src_kind))
                .map(|p| p.name.clone());
            let Some(port) = port else { continue };
            let dst = PortRef::new(profile.id(), port);
            ctx.span(cid.corr(), "path.bound", format!("dst={dst} (late)"));
            let qos = conn.qos.clone();
            let requester = conn.requester;
            let path = self.new_path(dst, home, &qos);
            self.index_path(cid, path.uid, path.dst.translator, path.home);
            if let Some(conn) = self.connections.get_mut(&cid) {
                conn.paths.push(path);
            }
            if let Requester::Local(proc) = requester {
                ctx.send_local(
                    proc,
                    RuntimeEvent::PathBound {
                        connection: cid,
                        dst,
                    },
                );
            }
        }
    }

    fn handle_connect(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: ProcId,
        token: u64,
        src: PortRef,
        target: ConnectTarget,
        qos: QosPolicy,
    ) {
        // Source hosted here: create the connection directly.
        if src.translator.runtime == self.cfg.id {
            let result = self.connect_local_src(ctx, src, target, qos, Requester::Local(from));
            let event = match result {
                Ok(connection) => RuntimeEvent::Connected { token, connection },
                Err(e) => RuntimeEvent::ConnectFailed {
                    token,
                    reason: e.to_string(),
                },
            };
            ctx.send_local(from, event);
            return;
        }
        // Source is remote: forward to its home runtime.
        let Some(entry) = self.directory.table().get(src.translator) else {
            ctx.send_local(
                from,
                RuntimeEvent::ConnectFailed {
                    token,
                    reason: CoreError::UnknownTranslator(src.translator).to_string(),
                },
            );
            return;
        };
        let home = entry.home;
        let wire_token = self.next_wire_token;
        self.next_wire_token += 1;
        self.pending_connects.insert(wire_token, (from, token));
        let reply_to = self.directory_addr(ctx);
        let wire_target = match target {
            ConnectTarget::Port(p) => WireTarget::Port(p),
            ConnectTarget::Query(q) => WireTarget::Query(q),
        };
        // Control traffic goes to the peer's directory port; we only know
        // its transport address from advertisements, so derive it.
        let peer_directory = self.peer_directory(home);
        self.unicast_wire(
            ctx,
            peer_directory,
            &WireMessage::ConnectRequest {
                token: wire_token,
                reply_to,
                src,
                target: wire_target,
                qos,
            },
        );
    }

    fn handle_connect_request(
        &mut self,
        ctx: &mut Ctx<'_>,
        token: u64,
        reply_to: Addr,
        src: PortRef,
        target: WireTarget,
        qos: QosPolicy,
    ) {
        let target = match target {
            WireTarget::Port(p) => ConnectTarget::Port(p),
            WireTarget::Query(q) => ConnectTarget::Query(q),
        };
        let result = if src.translator.runtime == self.cfg.id {
            self.connect_local_src(ctx, src, target, qos, Requester::Remote)
                .map_err(|e| e.to_string())
        } else {
            Err("source translator is not hosted here".to_owned())
        };
        self.unicast_wire(ctx, reply_to, &WireMessage::ConnectReply { token, result });
    }

    fn remove_connection(&mut self, ctx: &mut Ctx<'_>, connection: ConnectionId) {
        if connection.runtime == self.cfg.id {
            if let Some(conn) = self.connections.remove(&connection) {
                self.unindex_connection(&conn);
            }
            return;
        }
        // Owned by a remote runtime: forward the disconnect there (any
        // directory entry from that runtime gives us its address).
        let home = self
            .directory
            .table()
            .iter()
            .find(|e| e.profile.id().runtime == connection.runtime && !e.local)
            .map(|e| e.home);
        if let Some(home) = home {
            let peer_directory = self.peer_directory(home);
            self.unicast_wire(
                ctx,
                peer_directory,
                &WireMessage::DisconnectRequest { connection },
            );
        }
    }

    // ------------------------------------------------------------------
    // Message forwarding
    // ------------------------------------------------------------------

    fn handle_output(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: ProcId,
        translator: TranslatorId,
        port: Symbol,
        msg: UMessage,
    ) {
        let Some(local) = self.local_translators.get(&translator) else {
            ctx.bump("umiddle.output_unknown_translator", 1);
            return;
        };
        if local.delegate != from {
            ctx.bump("umiddle.output_wrong_delegate", 1);
            return;
        }
        // Stamp the emission time so the delivering runtime can measure
        // end-to-end path latency (virtual time is federation-global).
        let msg = msg.with_meta(SENT_AT_META, ctx.now().as_nanos().to_string());
        ctx.bump(&self.metric("outputs"), 1);
        // Fan-out targets come straight from the per-port index; the
        // scratch buffer is reused so steady-state dispatch does not
        // allocate for the target list.
        let mut targets = std::mem::take(&mut self.scratch);
        targets.clear();
        if let Some(conns) = self.src_index.get(&translator).and_then(|m| m.get(&port)) {
            targets.extend_from_slice(conns);
        }
        for &cid in &targets {
            ctx.span(cid.corr(), "output.enqueue", format!("port={port} {msg}"));
            if let Some(conn) = self.connections.get_mut(&cid) {
                let mut dropped = 0;
                for p in &mut conn.paths {
                    let occ_before = p.buffer.occupancy_bytes();
                    let drop_before = p.buffer.stats().dropped();
                    // Each path copy carries its own queue.wait span,
                    // closed when the copy is polled out of the buffer.
                    // A copy the QoS policy evicts leaves its span
                    // unclosed — visible in the span tree as a message
                    // that entered a buffer and never left.
                    let q = ctx.span_begin(
                        cid.corr(),
                        "queue.wait",
                        format!("port={port} path={}", p.uid),
                    );
                    let copy = msg.clone().with_meta(QUEUE_SPAN_META, q.0.to_string());
                    if !p.buffer.offer(copy) {
                        ctx.span_end(q);
                        dropped += 1;
                    }
                    self.buffered_total =
                        self.buffered_total - occ_before + p.buffer.occupancy_bytes();
                    self.dropped_total =
                        self.dropped_total - drop_before + p.buffer.stats().dropped();
                }
                if dropped > 0 {
                    ctx.bump("umiddle.qos_dropped", dropped);
                    ctx.bump(&self.metric("qos_dropped"), dropped);
                }
            }
            self.drain_connection(ctx, cid);
        }
        self.scratch = targets;
        self.update_buffer_watermark(ctx);
    }

    fn update_buffer_watermark(&mut self, ctx: &mut Ctx<'_>) {
        // The totals are maintained incrementally around every buffer
        // offer/poll and at path removal; the debug builds cross-check
        // them against a full scan.
        debug_assert_eq!(
            self.buffered_total,
            self.connections
                .values()
                .flat_map(|c| c.paths.iter())
                .map(|p| p.buffer.occupancy_bytes())
                .sum::<usize>(),
            "buffered-bytes accounting drifted"
        );
        debug_assert_eq!(
            self.dropped_total,
            self.connections
                .values()
                .flat_map(|c| c.paths.iter())
                .map(|p| p.buffer.stats().dropped())
                .sum::<u64>(),
            "qos-drop accounting drifted"
        );
        ctx.gauge_set(
            &self.metric("buffer_depth_bytes"),
            self.buffered_total as i64,
        );
        let mut stats = self.stats.borrow_mut();
        stats.buffered_bytes = self.buffered_total;
        stats.qos_dropped = self.dropped_total;
        stats.max_buffered_bytes = stats.max_buffered_bytes.max(self.buffered_total);
    }

    /// Total bytes currently buffered across all paths (for E5).
    pub fn buffered_bytes(&self) -> usize {
        self.buffered_total
    }

    fn drain_connection(&mut self, ctx: &mut Ctx<'_>, cid: ConnectionId) {
        let Some(conn) = self.connections.get(&cid) else {
            return;
        };
        let n_paths = conn.paths.len();
        for idx in 0..n_paths {
            self.drain_path(ctx, cid, idx);
        }
    }

    /// Pushes buffered messages down one path, respecting delivery credit
    /// (local destinations), stream capacity (remote destinations) and the
    /// QoS rate limiter.
    ///
    /// Messages that are deliverable at the same instant group up to the
    /// world's live [`simnet::BatchPolicy`] bound: a local run becomes one
    /// [`RuntimeEvent::InputBatch`] wakeup for the mapper, a remote run is
    /// framed in one vectored [`FramedBatch`] pass and sent as a single
    /// wire payload. With the bound at 1 (batching off or fully shrunk)
    /// every step below reduces to the pre-batching per-message path.
    fn drain_path(&mut self, ctx: &mut Ctx<'_>, cid: ConnectionId, idx: usize) {
        loop {
            let now = ctx.now();
            // Inspect state immutably first.
            let Some(conn) = self.connections.get(&cid) else {
                return;
            };
            let Some(path) = conn.paths.get(idx) else {
                return;
            };
            if path.buffer.is_empty() {
                return;
            }
            let credit = self.cfg.delivery_credit;
            match path.home {
                None => {
                    if path.inflight >= credit {
                        return; // wait for InputDone
                    }
                    let dst = path.dst;
                    let Some(delegate) = self
                        .local_translators
                        .get(&dst.translator)
                        .map(|t| t.delegate)
                    else {
                        // Destination vanished; drop the backlog.
                        if let Some(conn) = self.connections.get_mut(&cid) {
                            if let Some(path) = conn.paths.get_mut(idx) {
                                let occ_before = path.buffer.occupancy_bytes();
                                let drop_before = path.buffer.stats().dropped();
                                while path.buffer.poll(now).unwrap_or(None).is_some() {}
                                self.buffered_total = self.buffered_total - occ_before
                                    + path.buffer.occupancy_bytes();
                                self.dropped_total = self.dropped_total - drop_before
                                    + path.buffer.stats().dropped();
                            }
                        }
                        return;
                    };
                    let uid = path.uid;
                    let limit = ctx
                        .dispatch_batch_limit()
                        .min((credit - path.inflight) as usize)
                        .max(1);
                    let mut batch = std::mem::take(&mut self.input_scratch);
                    debug_assert!(batch.is_empty());
                    let mut blocked = false;
                    while batch.len() < limit {
                        let polled = {
                            let conn = self.connections.get_mut(&cid).expect("checked");
                            let path = conn.paths.get_mut(idx).expect("checked");
                            let occ_before = path.buffer.occupancy_bytes();
                            let drop_before = path.buffer.stats().dropped();
                            let polled = path.buffer.poll(now);
                            self.buffered_total =
                                self.buffered_total - occ_before + path.buffer.occupancy_bytes();
                            self.dropped_total =
                                self.dropped_total - drop_before + path.buffer.stats().dropped();
                            if let Ok(Some(_)) = &polled {
                                path.inflight += 1;
                            }
                            polled
                        };
                        match polled {
                            Ok(Some(mut msg)) => {
                                self.finish_queue_span(ctx, cid, &mut msg);
                                self.stats.borrow_mut().local_deliveries += 1;
                                self.observe_delivery(ctx, cid, &dst, &msg);
                                batch.push(InputDelivery {
                                    translator: dst.translator,
                                    port: dst.port,
                                    msg,
                                    connection: cid,
                                });
                            }
                            Ok(None) => {
                                blocked = true;
                                break;
                            }
                            Err(wait) => {
                                blocked = true;
                                let conn = self.connections.get_mut(&cid).expect("checked");
                                let path = conn.paths.get_mut(idx).expect("checked");
                                if !path.timer_pending {
                                    path.timer_pending = true;
                                    ctx.span(cid.corr(), "qos.drain-wait", format!("{wait}"));
                                    ctx.set_timer(wait, TIMER_DRAIN_BASE + uid);
                                }
                                break;
                            }
                        }
                    }
                    self.deliver_inputs(ctx, delegate, &mut batch);
                    self.input_scratch = batch;
                    if blocked {
                        return;
                    }
                }
                Some(home) => {
                    let uid = path.uid;
                    let dst = path.dst;
                    // Ensure a link exists.
                    let stream = match self.peers.get(&home) {
                        Some(link) if link.up => link.stream,
                        Some(_) => return, // connecting; flushed on Connected
                        None => {
                            let Ok(stream) = ctx.connect(home) else {
                                return;
                            };
                            self.peers.insert(home, PeerLink { stream, up: false });
                            self.peer_by_stream.insert(stream, home);
                            return;
                        }
                    };
                    let limit = ctx.dispatch_batch_limit().max(1);
                    let mut batch = FramedBatch::new();
                    let mut spans: Vec<simnet::SpanId> = Vec::new();
                    let mut blocked = false;
                    while batch.count() < limit {
                        let front = self
                            .connections
                            .get(&cid)
                            .and_then(|c| c.paths.get(idx))
                            .and_then(|p| p.buffer.front_size());
                        let Some(front) = front else {
                            blocked = true;
                            break; // buffer drained
                        };
                        // Leave room for framing overhead, on top of
                        // what this flush has already accumulated.
                        if ctx.stream_sendable(stream) < batch.wire_len() + front + 512 {
                            blocked = true;
                            break; // resumed by Writable
                        }
                        let polled = {
                            let conn = self.connections.get_mut(&cid).expect("checked");
                            let path = conn.paths.get_mut(idx).expect("checked");
                            let occ_before = path.buffer.occupancy_bytes();
                            let drop_before = path.buffer.stats().dropped();
                            let polled = path.buffer.poll(now);
                            self.buffered_total =
                                self.buffered_total - occ_before + path.buffer.occupancy_bytes();
                            self.dropped_total =
                                self.dropped_total - drop_before + path.buffer.stats().dropped();
                            polled
                        };
                        match polled {
                            Ok(Some(mut msg)) => {
                                self.finish_queue_span(ctx, cid, &mut msg);
                                // The transport.send span stays open
                                // across the wire; the receiving runtime
                                // closes it, so its duration is the full
                                // serialize→transmit→decode leg of the
                                // hop.
                                let sent = ctx.span_begin(
                                    cid.corr(),
                                    "transport.send",
                                    format!("dst={dst}"),
                                );
                                let msg = msg.with_meta(TRANSPORT_SPAN_META, sent.0.to_string());
                                batch.push(&WireMessage::PathMessage {
                                    connection: cid,
                                    dst,
                                    msg,
                                });
                                spans.push(sent);
                                self.stats.borrow_mut().remote_sends += 1;
                            }
                            Ok(None) => {
                                blocked = true;
                                break;
                            }
                            Err(wait) => {
                                blocked = true;
                                let conn = self.connections.get_mut(&cid).expect("checked");
                                let path = conn.paths.get_mut(idx).expect("checked");
                                if !path.timer_pending {
                                    path.timer_pending = true;
                                    ctx.span(cid.corr(), "qos.drain-wait", format!("{wait}"));
                                    ctx.set_timer(wait, TIMER_DRAIN_BASE + uid);
                                }
                                break;
                            }
                        }
                    }
                    if !batch.is_empty() {
                        let n = batch.count() as u64;
                        if n > 1 {
                            ctx.bump(&self.metric("wire_batches"), 1);
                            ctx.bump("dispatch.batched_wire_frames", n);
                        }
                        let wire = batch.finish();
                        if ctx.stream_send(stream, wire).is_err() {
                            // Stream filled up or died between checks;
                            // the flush is lost (counted, not silently)
                            // and its transport spans close at the
                            // failure.
                            for sent in spans.drain(..) {
                                ctx.span_end(sent);
                            }
                            ctx.bump("umiddle.remote_send_failed", n);
                            return;
                        }
                    }
                    if blocked {
                        return;
                    }
                }
            }
        }
    }

    /// Hands a run of polled messages to one delegate: a single message
    /// as a plain [`RuntimeEvent::Input`] (byte-for-byte the unbatched
    /// local path), a longer run as one [`RuntimeEvent::InputBatch`]
    /// wakeup so the mapper translates the whole run per invocation.
    fn deliver_inputs(&self, ctx: &mut Ctx<'_>, delegate: ProcId, batch: &mut Vec<InputDelivery>) {
        match batch.len() {
            0 => {}
            1 => {
                let d = batch.pop().expect("checked len");
                ctx.send_local(
                    delegate,
                    RuntimeEvent::Input {
                        translator: d.translator,
                        port: d.port,
                        msg: d.msg,
                        connection: d.connection,
                    },
                );
            }
            n => {
                ctx.bump(&self.metric("input_batches"), 1);
                ctx.bump("dispatch.batched_inputs", n as u64);
                ctx.send_local(
                    delegate,
                    RuntimeEvent::InputBatch {
                        inputs: std::mem::take(batch),
                    },
                );
            }
        }
    }

    fn handle_input_done(
        &mut self,
        ctx: &mut Ctx<'_>,
        connection: ConnectionId,
        translator: TranslatorId,
    ) {
        let Some(conn) = self.connections.get_mut(&connection) else {
            return;
        };
        let Some(idx) = conn
            .paths
            .iter()
            .position(|p| p.home.is_none() && p.dst.translator == translator && p.inflight > 0)
        else {
            return;
        };
        conn.paths[idx].inflight -= 1;
        self.drain_path(ctx, connection, idx);
        self.update_buffer_watermark(ctx);
    }

    fn handle_drain_timer(&mut self, ctx: &mut Ctx<'_>, uid: u64) {
        let Some(&cid) = self.path_by_uid.get(&uid) else {
            return; // path or connection gone before the retry fired
        };
        let Some(conn) = self.connections.get_mut(&cid) else {
            return;
        };
        let Some(idx) = conn.paths.iter().position(|p| p.uid == uid) else {
            return;
        };
        conn.paths[idx].timer_pending = false;
        ctx.bump(&self.metric("drain_retries"), 1);
        ctx.span(cid.corr(), "qos.drain-retry", format!("path={idx}"));
        self.drain_path(ctx, cid, idx);
    }

    /// Runs the receive-side bookkeeping for one path message off the
    /// wire — closing its `transport.send` span, validating the
    /// destination, recording the delivery — and returns the delegate
    /// plus the input ready to hand over, or `None` if the message was
    /// dropped (unknown destination; counted, not silent).
    fn admit_path_message(
        &mut self,
        ctx: &mut Ctx<'_>,
        connection: ConnectionId,
        dst: PortRef,
        mut msg: UMessage,
    ) -> Option<(ProcId, InputDelivery)> {
        self.stats.borrow_mut().remote_receives += 1;
        if let Some(id) = msg
            .take_meta(TRANSPORT_SPAN_META)
            .and_then(|v| v.parse().ok())
        {
            if let Some(d) = ctx.span_end(simnet::SpanId(id)) {
                ctx.observe_corr(&self.metric("transport_latency"), d, connection.corr());
            }
        }
        ctx.span(connection.corr(), "transport.receive", format!("dst={dst}"));
        let Some(local) = self.local_translators.get(&dst.translator) else {
            ctx.bump("umiddle.path_unknown_dst", 1);
            return None;
        };
        if local.profile.shape().port(&dst.port).is_none() {
            ctx.bump("umiddle.path_unknown_port", 1);
            return None;
        }
        let delegate = local.delegate;
        self.observe_delivery(ctx, connection, &dst, &msg);
        Some((
            delegate,
            InputDelivery {
                translator: dst.translator,
                port: dst.port,
                msg,
                connection,
            },
        ))
    }

    /// Closes the `queue.wait` span begun when this message copy entered
    /// its path buffer, stripping the id from the metadata, and records
    /// the wait in the runtime's `queue_wait` histogram with the
    /// connection's correlation id as the exemplar.
    fn finish_queue_span(&self, ctx: &mut Ctx<'_>, cid: ConnectionId, msg: &mut UMessage) {
        if let Some(id) = msg.take_meta(QUEUE_SPAN_META).and_then(|v| v.parse().ok()) {
            if let Some(d) = ctx.span_end(simnet::SpanId(id)) {
                ctx.observe_corr(&self.metric("queue_wait"), d, cid.corr());
            }
        }
    }

    /// Records the delivery span and the end-to-end path latency (from
    /// the emission stamp added by the source runtime).
    fn observe_delivery(
        &self,
        ctx: &mut Ctx<'_>,
        cid: ConnectionId,
        dst: &PortRef,
        msg: &UMessage,
    ) {
        ctx.span(cid.corr(), "deliver.local", format!("dst={dst}"));
        if let Some(sent_ns) = msg.meta(SENT_AT_META).and_then(|v| v.parse().ok()) {
            let d = ctx.now() - simnet::SimTime::from_nanos(sent_ns);
            ctx.observe_corr("umiddle.path_latency", d, cid.corr());
        }
    }

    fn on_stream_wire(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, data: simnet::Payload) {
        let Some(decoder) = self.incoming.get_mut(&stream) else {
            return;
        };
        decoder.push_payload(data);
        // One decoder pass surfaces every frame the payload completed,
        // so a vectored send on the far side costs one poll here, not
        // one per frame.
        let mut frames = std::mem::take(&mut self.decode_scratch);
        debug_assert!(frames.is_empty());
        decoder.drain_frames(&mut frames);
        let decoded = frames.iter().filter(|f| f.is_ok()).count() as u64;
        if decoded > 0 {
            ctx.bump(&self.metric("frames_decoded"), decoded);
        }
        // Consecutive path messages bound for the same mapper group into
        // one InputBatch wakeup; control frames and delegate changes
        // flush the run so arrival order is preserved exactly.
        let mut run = std::mem::take(&mut self.input_scratch);
        debug_assert!(run.is_empty());
        let mut run_delegate: Option<ProcId> = None;
        for frame in frames.drain(..) {
            match frame {
                Ok(WireMessage::PathMessage {
                    connection,
                    dst,
                    msg,
                }) => {
                    if let Some((delegate, delivery)) =
                        self.admit_path_message(ctx, connection, dst, msg)
                    {
                        if run_delegate != Some(delegate) {
                            if let Some(prev) = run_delegate {
                                self.deliver_inputs(ctx, prev, &mut run);
                            }
                            run_delegate = Some(delegate);
                        }
                        run.push(delivery);
                    }
                }
                Ok(msg) => {
                    if let Some(prev) = run_delegate.take() {
                        self.deliver_inputs(ctx, prev, &mut run);
                    }
                    match msg {
                        WireMessage::ConnectRequest {
                            token,
                            reply_to,
                            src,
                            target,
                            qos,
                        } => self.handle_connect_request(ctx, token, reply_to, src, target, qos),
                        WireMessage::DisconnectRequest { connection } => {
                            self.remove_connection(ctx, connection)
                        }
                        _ => ctx.bump("umiddle.unexpected_stream_msg", 1),
                    }
                }
                Err(e) => {
                    ctx.bump("umiddle.wire_decode_errors", 1);
                    ctx.trace(format!("bad stream frame: {e}"));
                }
            }
        }
        if let Some(prev) = run_delegate {
            self.deliver_inputs(ctx, prev, &mut run);
        }
        self.input_scratch = run;
        self.decode_scratch = frames;
    }

    fn drain_paths_via(&mut self, ctx: &mut Ctx<'_>, home: Addr) {
        let mut conns = std::mem::take(&mut self.scratch);
        conns.clear();
        if let Some(v) = self.home_index.get(&home) {
            conns.extend_from_slice(v);
        }
        for &cid in &conns {
            let n_paths = match self.connections.get(&cid) {
                Some(conn) => conn.paths.len(),
                None => continue,
            };
            for idx in 0..n_paths {
                let via = self
                    .connections
                    .get(&cid)
                    .and_then(|c| c.paths.get(idx))
                    .is_some_and(|p| p.home == Some(home));
                if via {
                    self.drain_path(ctx, cid, idx);
                }
            }
        }
        self.scratch = conns;
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        if self.cfg.full_refresh {
            // Legacy mode: re-broadcast every local profile each tick.
            let locals: Vec<TranslatorProfile> = self
                .directory
                .table()
                .local_entries()
                .map(|e| e.profile.clone())
                .collect();
            for profile in locals {
                self.advertise(ctx, profile);
            }
        } else {
            // Delta mode: the periodic payload is just our watermark.
            let digest = self.own_digest(ctx);
            self.gossip_multicast(ctx, &digest);
        }
        // Origin-level liveness for delta-replicated entries: an origin
        // that stopped gossiping (crash, partition) takes its whole
        // slice of the directory with it.
        let mut dead = std::mem::take(&mut self.expire_scratch);
        let mut events = std::mem::take(&mut self.event_scratch);
        events.clear();
        self.directory
            .evict_stale_origins(ctx.now(), self.cfg.ttl(), &mut events, &mut dead);
        events.clear(); // handle_disappearance re-derives the notifications
        self.event_scratch = events;
        for &id in &dead {
            ctx.bump("umiddle.directory_expiries", 1);
            ctx.bump(&self.metric("advertisements_expired"), 1);
            self.handle_disappearance(ctx, id);
        }
        // Per-entry TTL expiry for full-refresh-advertised entries. Both
        // sweeps reuse the same scratch buffer, so a steady-state tick
        // allocates nothing.
        self.directory.table_mut().expire_into(ctx.now(), &mut dead);
        for &id in &dead {
            ctx.bump("umiddle.directory_expiries", 1);
            ctx.bump(&self.metric("advertisements_expired"), 1);
            self.handle_disappearance(ctx, id);
        }
        self.expire_scratch = dead;
        let interval = self.cfg.advertise_interval;
        ctx.set_timer(interval, TIMER_TICK);
    }
}

impl Process for UmiddleRuntime {
    fn name(&self) -> &str {
        "umiddle-runtime"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.bind(self.cfg.directory_port)
            .expect("directory port available");
        ctx.listen(self.cfg.transport_port)
            .expect("transport port available");
        let _ = ctx.join_group(self.cfg.multicast_group);
        let reply_to = self.directory_addr(ctx);
        self.gossip_multicast(ctx, &WireMessage::Probe { reply_to });
        let interval = self.cfg.advertise_interval;
        ctx.set_timer(interval, TIMER_TICK);
    }

    fn on_datagram(&mut self, ctx: &mut Ctx<'_>, dgram: Datagram) {
        self.on_wire_datagram(ctx, dgram);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TIMER_TICK {
            self.tick(ctx);
        } else {
            self.handle_drain_timer(ctx, token - TIMER_DRAIN_BASE);
        }
    }

    fn on_stream(&mut self, ctx: &mut Ctx<'_>, stream: StreamId, event: StreamEvent) {
        match event {
            StreamEvent::Accepted { .. } => {
                self.incoming.insert(stream, FrameDecoder::new());
            }
            StreamEvent::Data(data) => {
                if self.incoming.contains_key(&stream) {
                    self.on_stream_wire(ctx, stream, data);
                }
                // Outgoing links carry no return traffic today.
            }
            StreamEvent::Connected => {
                if let Some(home) = self.peer_by_stream.get(&stream).copied() {
                    if let Some(link) = self.peers.get_mut(&home) {
                        link.up = true;
                    }
                    self.drain_paths_via(ctx, home);
                }
            }
            StreamEvent::Writable => {
                if let Some(home) = self.peer_by_stream.get(&stream).copied() {
                    self.drain_paths_via(ctx, home);
                }
            }
            StreamEvent::Closed | StreamEvent::ConnectFailed => {
                if let Some(home) = self.peer_by_stream.remove(&stream) {
                    self.peers.remove(&home);
                }
                self.incoming.remove(&stream);
            }
        }
    }

    fn on_local(&mut self, ctx: &mut Ctx<'_>, from: ProcId, msg: LocalMessage) {
        let Ok(request) = msg.downcast::<RuntimeRequest>() else {
            ctx.bump("umiddle.unknown_local_msg", 1);
            return;
        };
        match *request {
            RuntimeRequest::Register {
                token,
                profile,
                delegate,
            } => self.handle_register(ctx, from, token, profile, delegate),
            RuntimeRequest::Unregister { translator } => self.handle_unregister(ctx, translator),
            RuntimeRequest::Lookup { token, query } => {
                let profiles: Vec<TranslatorProfile> = self
                    .directory
                    .table()
                    .lookup(&query)
                    .into_iter()
                    .cloned()
                    .collect();
                ctx.send_local(from, RuntimeEvent::LookupResult { token, profiles });
            }
            RuntimeRequest::AddListener { query } => {
                // Report existing matches immediately.
                let matches: Vec<TranslatorProfile> = self
                    .directory
                    .table()
                    .lookup(&query)
                    .into_iter()
                    .cloned()
                    .collect();
                for profile in matches {
                    ctx.send_local(
                        from,
                        RuntimeEvent::Directory(DirectoryEvent::Appeared(profile)),
                    );
                }
                self.listeners.push((from, query));
            }
            RuntimeRequest::RemoveListener => {
                self.listeners.retain(|(p, _)| *p != from);
            }
            RuntimeRequest::Connect {
                token,
                src,
                target,
                qos,
            } => self.handle_connect(ctx, from, token, src, target, qos),
            RuntimeRequest::Disconnect { connection } => self.remove_connection(ctx, connection),
            RuntimeRequest::Output {
                translator,
                port,
                msg,
            } => self.handle_output(ctx, from, translator, port, msg),
            RuntimeRequest::InputDone {
                connection,
                translator,
            } => self.handle_input_done(ctx, connection, translator),
            RuntimeRequest::MetricsSnapshot { token } => {
                let snapshot = ctx.metrics().scoped(&self.scope).snapshot();
                ctx.send_local(from, RuntimeEvent::Metrics { token, snapshot });
            }
            RuntimeRequest::TelemetryWindow { token } => {
                let window = ctx.telemetry_window(Some(&self.scope));
                ctx.send_local(from, RuntimeEvent::Telemetry { token, window });
            }
        }
    }

    fn on_stop(&mut self, ctx: &mut Ctx<'_>) {
        // Orderly shutdown: tell peers our translators are gone (sorted
        // so the wire order is deterministic).
        let mut ids: Vec<TranslatorId> = self.local_translators.keys().copied().collect();
        ids.sort_unstable();
        if self.cfg.full_refresh {
            for translator in ids {
                self.gossip_multicast(ctx, &WireMessage::Bye { translator });
            }
            return;
        }
        // One batched delta retracts everything.
        let mut first = 0;
        let mut ops = Vec::with_capacity(ids.len());
        for id in ids {
            if let Some(v) = self.directory.record_local_remove(id) {
                if ops.is_empty() {
                    first = v;
                }
                ops.push(DeltaOp::Remove(id));
            }
        }
        if !ops.is_empty() {
            let home = self.transport_addr(ctx);
            self.gossip_multicast(
                ctx,
                &WireMessage::Delta {
                    origin: self.cfg.id,
                    home,
                    first,
                    ops,
                },
            );
        }
    }
}
