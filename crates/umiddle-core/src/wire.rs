//! Wire codec for inter-runtime protocol messages.
//!
//! uMiddle runtimes exchange two kinds of traffic: *directory* messages
//! (advertisements, byes, probes — multicast or unicast datagrams) and
//! *transport* messages (path payloads — over streams). Both use this
//! compact little-endian binary encoding. The codec is total: any byte
//! sequence either decodes to a message or yields a
//! [`CoreError::Decode`](crate::CoreError::Decode); it never panics.

use std::collections::VecDeque;

use simnet::{Addr, NodeId, Payload, PayloadBuilder};

use crate::error::{CoreError, CoreResult};
use crate::id::{ConnectionId, PortRef, RuntimeId, TranslatorId};
use crate::message::UMessage;
use crate::mime::MimeType;
use crate::profile::TranslatorProfile;
use crate::qos::{OverflowPolicy, QosPolicy, RateLimit};
use crate::query::Query;
use crate::shape::{Direction, PerceptionType, PortKind, PortSpec, Shape};

/// Messages exchanged between uMiddle runtimes.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// A translator exists (sent on registration, on probe response, and
    /// periodically as a refresh). `home` is the advertising runtime's
    /// transport listener address.
    Advertise {
        /// The advertised profile.
        profile: TranslatorProfile,
        /// Transport address of the hosting runtime.
        home: Addr,
    },
    /// A translator is gone.
    Bye {
        /// The departed translator.
        translator: TranslatorId,
    },
    /// A runtime booted and asks peers to re-advertise; responses are
    /// unicast to `reply_to`.
    Probe {
        /// Directory address of the probing runtime.
        reply_to: Addr,
    },
    /// A path payload destined for an input port of a translator hosted by
    /// the receiving runtime.
    PathMessage {
        /// The connection this message travels on.
        connection: ConnectionId,
        /// Destination input port.
        dst: PortRef,
        /// The payload.
        msg: UMessage,
    },
    /// A connect request forwarded to the runtime hosting the source port
    /// (connections always live at the source's home runtime).
    ConnectRequest {
        /// Correlation token chosen by the requesting runtime.
        token: u64,
        /// Directory address to send the [`WireMessage::ConnectReply`] to.
        reply_to: Addr,
        /// Source output port.
        src: PortRef,
        /// Static port target or dynamic query template.
        target: WireTarget,
        /// QoS policy for the new connection.
        qos: QosPolicy,
    },
    /// Reply to a forwarded connect request.
    ConnectReply {
        /// Correlation token from the request.
        token: u64,
        /// The created connection on success.
        result: Result<ConnectionId, String>,
    },
    /// Tears down a connection owned by the receiving runtime.
    DisconnectRequest {
        /// The connection to remove.
        connection: ConnectionId,
    },
    /// A run of versioned directory mutations from one origin runtime
    /// (the delta-gossip plane). Op `i` carries version `first + i`; a
    /// receiver already at version `v` applies only ops with version
    /// `> v`, and a receiver below `first - 1` has a gap and must
    /// request the missing range instead.
    Delta {
        /// The runtime whose advertised set changed.
        origin: RuntimeId,
        /// Transport address of the origin (where its translators live).
        home: Addr,
        /// Version of the first op in `ops`.
        first: u64,
        /// The mutations, in version order.
        ops: Vec<DeltaOp>,
    },
    /// Low-frequency anti-entropy summary: per-origin version watermarks.
    /// In the steady state a runtime digests only its own entry, so the
    /// periodic cost is a few dozen bytes regardless of table size;
    /// receivers that detect a gap unicast a [`WireMessage::DeltaRequest`]
    /// to `reply_to`.
    Digest {
        /// The summarizing runtime.
        origin: RuntimeId,
        /// Directory address delta requests should be sent to.
        reply_to: Addr,
        /// Transport address of the origin.
        home: Addr,
        /// `(origin, highest version)` watermarks the sender vouches for.
        vector: Vec<(RuntimeId, u64)>,
    },
    /// Asks an origin to re-send its deltas starting at version `from`
    /// (anti-entropy repair after a detected gap, or a late-join sync).
    DeltaRequest {
        /// The origin whose deltas are missing.
        origin: RuntimeId,
        /// First missing version.
        from: u64,
        /// Directory address of the requester.
        reply_to: Addr,
    },
    /// Full state of one origin at `version`, sent when the requested
    /// delta range has been compacted out of the origin's log. The
    /// receiver replaces its view of that origin wholesale.
    Snapshot {
        /// The runtime whose state this is.
        origin: RuntimeId,
        /// Transport address of the origin.
        home: Addr,
        /// The origin's version as of this snapshot.
        version: u64,
        /// Every profile the origin currently advertises.
        profiles: Vec<TranslatorProfile>,
    },
}

/// One versioned mutation of an origin's advertised translator set
/// (payload of [`WireMessage::Delta`]).
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// A profile appeared or was updated.
    Add(TranslatorProfile),
    /// A translator was removed.
    Remove(TranslatorId),
}

/// Serializable connect target (mirrors the runtime API's target type).
#[derive(Debug, Clone, PartialEq)]
pub enum WireTarget {
    /// A specific input port.
    Port(PortRef),
    /// A query template, evaluated adaptively against the directory.
    Query(Query),
}

const TAG_ADVERTISE: u8 = 1;
const TAG_BYE: u8 = 2;
const TAG_PROBE: u8 = 3;
const TAG_PATH: u8 = 4;
const TAG_CONNECT_REQ: u8 = 5;
const TAG_CONNECT_REPLY: u8 = 6;
const TAG_DISCONNECT: u8 = 7;
const TAG_DELTA: u8 = 8;
const TAG_DIGEST: u8 = 9;
const TAG_DELTA_REQ: u8 = 10;
const TAG_SNAPSHOT: u8 = 11;

const OP_ADD: u8 = 0;
const OP_REMOVE: u8 = 1;

const KIND_DIGITAL: u8 = 0;
const KIND_PHYSICAL: u8 = 1;

impl WireMessage {
    /// Encodes the message to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.out.into_vec()
    }

    /// Encodes the message into a shared [`Payload`] (one allocation, no
    /// trailing copy).
    pub fn encode_payload(&self) -> Payload {
        let mut w = Writer::new();
        self.encode_into(&mut w);
        w.out.freeze()
    }

    fn encode_into(&self, w: &mut Writer) {
        match self {
            WireMessage::Advertise { profile, home } => {
                w.u8(TAG_ADVERTISE);
                encode_profile(w, profile);
                encode_addr(w, *home);
            }
            WireMessage::Bye { translator } => {
                w.u8(TAG_BYE);
                encode_translator_id(w, *translator);
            }
            WireMessage::Probe { reply_to } => {
                w.u8(TAG_PROBE);
                encode_addr(w, *reply_to);
            }
            WireMessage::PathMessage {
                connection,
                dst,
                msg,
            } => {
                w.u8(TAG_PATH);
                w.u32(connection.runtime.0);
                w.u32(connection.local);
                encode_translator_id(w, dst.translator);
                w.str(&dst.port);
                encode_umessage(w, msg);
            }
            WireMessage::ConnectRequest {
                token,
                reply_to,
                src,
                target,
                qos,
            } => {
                w.u8(TAG_CONNECT_REQ);
                w.u64(*token);
                encode_addr(w, *reply_to);
                encode_translator_id(w, src.translator);
                w.str(&src.port);
                match target {
                    WireTarget::Port(p) => {
                        w.u8(0);
                        encode_translator_id(w, p.translator);
                        w.str(&p.port);
                    }
                    WireTarget::Query(q) => {
                        w.u8(1);
                        encode_query(w, q);
                    }
                }
                encode_qos(w, qos);
            }
            WireMessage::ConnectReply { token, result } => {
                w.u8(TAG_CONNECT_REPLY);
                w.u64(*token);
                match result {
                    Ok(conn) => {
                        w.u8(0);
                        w.u32(conn.runtime.0);
                        w.u32(conn.local);
                    }
                    Err(e) => {
                        w.u8(1);
                        w.str(e);
                    }
                }
            }
            WireMessage::DisconnectRequest { connection } => {
                w.u8(TAG_DISCONNECT);
                w.u32(connection.runtime.0);
                w.u32(connection.local);
            }
            WireMessage::Delta {
                origin,
                home,
                first,
                ops,
            } => {
                w.u8(TAG_DELTA);
                w.u32(origin.0);
                encode_addr(w, *home);
                w.u64(*first);
                w.u16(ops.len() as u16);
                for op in ops {
                    match op {
                        DeltaOp::Add(profile) => {
                            w.u8(OP_ADD);
                            encode_profile(w, profile);
                        }
                        DeltaOp::Remove(id) => {
                            w.u8(OP_REMOVE);
                            encode_translator_id(w, *id);
                        }
                    }
                }
            }
            WireMessage::Digest {
                origin,
                reply_to,
                home,
                vector,
            } => {
                w.u8(TAG_DIGEST);
                w.u32(origin.0);
                encode_addr(w, *reply_to);
                encode_addr(w, *home);
                w.u16(vector.len() as u16);
                for (rt, version) in vector {
                    w.u32(rt.0);
                    w.u64(*version);
                }
            }
            WireMessage::DeltaRequest {
                origin,
                from,
                reply_to,
            } => {
                w.u8(TAG_DELTA_REQ);
                w.u32(origin.0);
                w.u64(*from);
                encode_addr(w, *reply_to);
            }
            WireMessage::Snapshot {
                origin,
                home,
                version,
                profiles,
            } => {
                w.u8(TAG_SNAPSHOT);
                w.u32(origin.0);
                encode_addr(w, *home);
                w.u64(*version);
                w.u32(profiles.len() as u32);
                for p in profiles {
                    encode_profile(w, p);
                }
            }
        }
    }

    /// Decodes a message from bytes. Byte-slice bodies are copied into
    /// fresh payloads; use [`WireMessage::decode_payload`] when the input
    /// is already a [`Payload`] to keep message bodies zero-copy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Decode`] on truncated or malformed input.
    pub fn decode(bytes: &[u8]) -> CoreResult<WireMessage> {
        Self::decode_reader(Reader::new(bytes))
    }

    /// Decodes a message from a shared [`Payload`]; any embedded
    /// [`UMessage`] body becomes a zero-copy sub-slice of `payload`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Decode`] on truncated or malformed input.
    pub fn decode_payload(payload: &Payload) -> CoreResult<WireMessage> {
        Self::decode_reader(Reader::with_backing(payload))
    }

    fn decode_reader(mut r: Reader<'_>) -> CoreResult<WireMessage> {
        let tag = r.u8()?;
        let msg = match tag {
            TAG_ADVERTISE => WireMessage::Advertise {
                profile: decode_profile(&mut r)?,
                home: decode_addr(&mut r)?,
            },
            TAG_BYE => WireMessage::Bye {
                translator: decode_translator_id(&mut r)?,
            },
            TAG_PROBE => WireMessage::Probe {
                reply_to: decode_addr(&mut r)?,
            },
            TAG_PATH => WireMessage::PathMessage {
                connection: ConnectionId::new(RuntimeId(r.u32()?), r.u32()?),
                dst: {
                    let t = decode_translator_id(&mut r)?;
                    let port = r.str()?;
                    PortRef::new(t, port)
                },
                msg: decode_umessage(&mut r)?,
            },
            TAG_CONNECT_REQ => WireMessage::ConnectRequest {
                token: r.u64()?,
                reply_to: decode_addr(&mut r)?,
                src: {
                    let t = decode_translator_id(&mut r)?;
                    let port = r.str()?;
                    PortRef::new(t, port)
                },
                target: match r.u8()? {
                    0 => {
                        let t = decode_translator_id(&mut r)?;
                        let port = r.str()?;
                        WireTarget::Port(PortRef::new(t, port))
                    }
                    1 => WireTarget::Query(decode_query(&mut r, 0)?),
                    other => return Err(CoreError::Decode(format!("unknown target tag {other}"))),
                },
                qos: decode_qos(&mut r)?,
            },
            TAG_CONNECT_REPLY => WireMessage::ConnectReply {
                token: r.u64()?,
                result: match r.u8()? {
                    0 => Ok(ConnectionId::new(RuntimeId(r.u32()?), r.u32()?)),
                    1 => Err(r.str()?),
                    other => return Err(CoreError::Decode(format!("unknown result tag {other}"))),
                },
            },
            TAG_DISCONNECT => WireMessage::DisconnectRequest {
                connection: ConnectionId::new(RuntimeId(r.u32()?), r.u32()?),
            },
            TAG_DELTA => {
                let origin = RuntimeId(r.u32()?);
                let home = decode_addr(&mut r)?;
                let first = r.u64()?;
                let n = r.u16()? as usize;
                let mut ops = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    ops.push(match r.u8()? {
                        OP_ADD => DeltaOp::Add(decode_profile(&mut r)?),
                        OP_REMOVE => DeltaOp::Remove(decode_translator_id(&mut r)?),
                        other => return Err(CoreError::Decode(format!("unknown op tag {other}"))),
                    });
                }
                WireMessage::Delta {
                    origin,
                    home,
                    first,
                    ops,
                }
            }
            TAG_DIGEST => {
                let origin = RuntimeId(r.u32()?);
                let reply_to = decode_addr(&mut r)?;
                let home = decode_addr(&mut r)?;
                let n = r.u16()? as usize;
                let mut vector = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    vector.push((RuntimeId(r.u32()?), r.u64()?));
                }
                WireMessage::Digest {
                    origin,
                    reply_to,
                    home,
                    vector,
                }
            }
            TAG_DELTA_REQ => WireMessage::DeltaRequest {
                origin: RuntimeId(r.u32()?),
                from: r.u64()?,
                reply_to: decode_addr(&mut r)?,
            },
            TAG_SNAPSHOT => {
                let origin = RuntimeId(r.u32()?);
                let home = decode_addr(&mut r)?;
                let version = r.u64()?;
                let n = r.u32()? as usize;
                let mut profiles = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    profiles.push(decode_profile(&mut r)?);
                }
                WireMessage::Snapshot {
                    origin,
                    home,
                    version,
                    profiles,
                }
            }
            other => return Err(CoreError::Decode(format!("unknown tag {other}"))),
        };
        r.finish()?;
        Ok(msg)
    }

    /// Encodes with a `u32` length prefix, for framing on a byte stream.
    /// The prefix slot is reserved up front and patched afterwards, so the
    /// whole frame is one allocation with no body copy.
    pub fn encode_framed(&self) -> Payload {
        let mut w = Writer::new();
        let slot = w.out.reserve_u32_le();
        self.encode_into(&mut w);
        let body_len = (w.out.len() - 4) as u32;
        w.out.patch_u32_le(slot, body_len);
        w.out.freeze()
    }
}

/// Incremental decoder of length-prefixed [`WireMessage`]s from a byte
/// stream, tolerant of arbitrary chunking.
///
/// Internally a cursor over a queue of shared [`Payload`] chunks: popping
/// a frame consumes O(frame) work regardless of how many frames are still
/// buffered (the old implementation shifted the whole buffer per frame,
/// making bulk decode O(n²)). A frame contained in a single chunk is
/// extracted as a zero-copy sub-slice; frames spanning chunk boundaries
/// are assembled with one copy.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    chunks: VecDeque<Payload>,
    total: usize,
    /// Decode polls made against this decoder ([`next`](FrameDecoder::next)
    /// or [`drain_frames`](FrameDecoder::drain_frames) calls) — the
    /// regression meter for per-frame re-polling on buffers that already
    /// hold several complete frames.
    polls: u64,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Feeds received bytes (copied into a fresh chunk; prefer
    /// [`FrameDecoder::push_payload`] for data already in a `Payload`).
    pub fn push(&mut self, bytes: &[u8]) {
        self.push_payload(Payload::copy_from_slice(bytes));
    }

    /// Feeds a received [`Payload`] chunk without copying.
    pub fn push_payload(&mut self, chunk: Payload) {
        if chunk.is_empty() {
            return;
        }
        self.total += chunk.len();
        self.chunks.push_back(chunk);
    }

    /// Bytes currently buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.total
    }

    /// Reads the 4-byte length prefix across chunk boundaries.
    fn peek_len(&self) -> usize {
        let mut hdr = [0u8; 4];
        let mut filled = 0;
        for c in &self.chunks {
            let take = (4 - filled).min(c.len());
            hdr[filled..filled + take].copy_from_slice(&c[..take]);
            filled += take;
            if filled == 4 {
                break;
            }
        }
        debug_assert_eq!(filled, 4, "peek_len needs 4 buffered bytes");
        u32::from_le_bytes(hdr) as usize
    }

    /// Removes the next `n` bytes and returns them as one `Payload` —
    /// zero-copy when they sit in a single chunk.
    fn take(&mut self, n: usize) -> Payload {
        debug_assert!(n <= self.total, "take within buffered bytes");
        self.total -= n;
        if n == 0 {
            return Payload::new();
        }
        let front = self.chunks.front_mut().expect("buffered bytes exist");
        if front.len() > n {
            return front.split_to(n);
        }
        if front.len() == n {
            return self.chunks.pop_front().expect("checked non-empty");
        }
        // Frame spans chunks: assemble once, O(frame).
        let mut out = Vec::with_capacity(n);
        let mut remaining = n;
        while remaining > 0 {
            let front = self.chunks.front_mut().expect("take within total");
            if front.len() <= remaining {
                remaining -= front.len();
                out.extend_from_slice(front);
                self.chunks.pop_front();
            } else {
                out.extend_from_slice(&front[..remaining]);
                front.advance(remaining);
                remaining = 0;
            }
        }
        Payload::from_vec(out)
    }

    /// Pops the next complete message, if any.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Decode`] if a complete frame fails to decode
    /// (the frame is consumed, so decoding can continue).
    #[allow(clippy::should_implement_trait)] // framer convention, not an Iterator
    pub fn next(&mut self) -> CoreResult<Option<WireMessage>> {
        self.polls += 1;
        self.next_inner()
    }

    fn next_inner(&mut self) -> CoreResult<Option<WireMessage>> {
        if self.total < 4 {
            return Ok(None);
        }
        let len = self.peek_len();
        if self.total < 4 + len {
            return Ok(None);
        }
        let _prefix = self.take(4);
        let frame = self.take(len);
        WireMessage::decode_payload(&frame).map(Some)
    }

    /// Decodes *every* complete frame currently buffered in one poll,
    /// appending the per-frame results to `out` in arrival order, and
    /// returns how many were appended. A malformed frame is consumed and
    /// reported as an `Err` entry; decoding continues with the next
    /// frame, matching a caller looping [`next`](FrameDecoder::next).
    ///
    /// This is the fix for the one-frame-per-poll pattern: a wire buffer
    /// that already holds N complete frames costs one poll, not N.
    pub fn drain_frames(&mut self, out: &mut Vec<CoreResult<WireMessage>>) -> usize {
        self.polls += 1;
        let before = out.len();
        loop {
            match self.next_inner() {
                Ok(Some(msg)) => out.push(Ok(msg)),
                Ok(None) => break,
                Err(e) => out.push(Err(e)),
            }
        }
        out.len() - before
    }

    /// Cumulative decode polls (see the field doc).
    pub fn polls(&self) -> u64 {
        self.polls
    }
}

/// Vectored framing for a batch of [`WireMessage`]s: every message is
/// encoded into one [`PayloadBuilder`] pass with its length slot
/// reserved up front, and [`finish`](FramedBatch::finish) back-patches
/// all slots in a single sweep. The produced bytes are identical to
/// concatenating each message's [`WireMessage::encode_framed`] output,
/// so the receiving [`FrameDecoder`] cannot tell the difference — the
/// batch saves one allocation and one patch pass per message, not wire
/// format.
#[derive(Debug, Default)]
pub struct FramedBatch {
    w: Writer,
    marks: Vec<usize>,
}

impl FramedBatch {
    /// Creates an empty batch.
    pub fn new() -> FramedBatch {
        FramedBatch::default()
    }

    /// Appends one message to the batch.
    pub fn push(&mut self, msg: &WireMessage) {
        self.marks.push(self.w.out.reserve_u32_le());
        msg.encode_into(&mut self.w);
    }

    /// Messages appended so far.
    pub fn count(&self) -> usize {
        self.marks.len()
    }

    /// Wire bytes accumulated so far (including length prefixes).
    pub fn wire_len(&self) -> usize {
        self.w.out.len()
    }

    /// Returns `true` if no messages were appended.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }

    /// Back-patches every length prefix in one sweep and freezes the
    /// batch into a single wire payload.
    pub fn finish(mut self) -> Payload {
        self.w.out.patch_frame_lens(&self.marks);
        self.w.out.freeze()
    }
}

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct Writer {
    out: PayloadBuilder,
}

impl Writer {
    fn new() -> Writer {
        Writer {
            out: PayloadBuilder::new(),
        }
    }
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.out.u16_le(v);
    }
    fn u32(&mut self, v: u32) {
        self.out.u32_le(v);
    }
    fn u64(&mut self, v: u64) {
        self.out.u64_le(v);
    }
    fn str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        let n = bytes.len().min(u16::MAX as usize);
        self.u16(n as u16);
        self.out.extend_from_slice(&bytes[..n]);
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.out.extend_from_slice(b);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// When decoding from a shared buffer, byte-array fields are returned
    /// as zero-copy sub-slices of this payload instead of fresh copies.
    backing: Option<&'a Payload>,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader {
            buf,
            pos: 0,
            backing: None,
        }
    }
    fn with_backing(payload: &'a Payload) -> Reader<'a> {
        Reader {
            buf: payload.as_slice(),
            pos: 0,
            backing: Some(payload),
        }
    }
    fn take(&mut self, n: usize) -> CoreResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(CoreError::Decode("truncated".to_owned()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> CoreResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> CoreResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> CoreResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> CoreResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    fn str(&mut self) -> CoreResult<String> {
        let len = self.u16()? as usize;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| CoreError::Decode("invalid utf-8".to_owned()))
    }
    fn bytes(&mut self) -> CoreResult<Payload> {
        let len = self.u32()? as usize;
        let start = self.pos;
        let s = self.take(len)?;
        Ok(match self.backing {
            Some(p) => p.slice(start..start + len),
            None => Payload::copy_from_slice(s),
        })
    }
    fn finish(&self) -> CoreResult<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CoreError::Decode(format!(
                "{} trailing bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------
// Composite encoders
// ---------------------------------------------------------------------

fn encode_addr(w: &mut Writer, addr: Addr) {
    w.u32(addr.node.index() as u32);
    w.u16(addr.port);
}

fn decode_addr(r: &mut Reader<'_>) -> CoreResult<Addr> {
    let node = NodeId::from_index(r.u32()? as usize);
    let port = r.u16()?;
    Ok(Addr::new(node, port))
}

fn encode_translator_id(w: &mut Writer, id: TranslatorId) {
    w.u32(id.runtime.0);
    w.u32(id.local);
}

fn decode_translator_id(r: &mut Reader<'_>) -> CoreResult<TranslatorId> {
    Ok(TranslatorId::new(RuntimeId(r.u32()?), r.u32()?))
}

fn encode_port_kind(w: &mut Writer, kind: &PortKind) {
    match kind {
        PortKind::Digital(m) => {
            w.u8(KIND_DIGITAL);
            w.str(&m.to_string());
        }
        PortKind::Physical { perception, media } => {
            w.u8(KIND_PHYSICAL);
            w.str(&perception.to_string());
            w.str(media);
        }
    }
}

fn decode_port_kind(r: &mut Reader<'_>) -> CoreResult<PortKind> {
    match r.u8()? {
        KIND_DIGITAL => {
            let m: MimeType = r.str()?.parse()?;
            Ok(PortKind::Digital(m))
        }
        KIND_PHYSICAL => {
            let perception: PerceptionType = r.str()?.parse()?;
            let media = r.str()?;
            Ok(PortKind::physical(perception, &media))
        }
        other => Err(CoreError::Decode(format!("unknown port kind {other}"))),
    }
}

fn encode_shape(w: &mut Writer, shape: &Shape) {
    w.u16(shape.ports().len() as u16);
    for p in shape.ports() {
        w.str(&p.name);
        w.u8(match p.direction {
            Direction::Input => 0,
            Direction::Output => 1,
        });
        encode_port_kind(w, &p.kind);
    }
}

fn decode_shape(r: &mut Reader<'_>) -> CoreResult<Shape> {
    let n = r.u16()? as usize;
    let mut ports = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = r.str()?;
        let direction = match r.u8()? {
            0 => Direction::Input,
            1 => Direction::Output,
            other => return Err(CoreError::Decode(format!("unknown direction {other}"))),
        };
        let kind = decode_port_kind(r)?;
        ports.push(PortSpec {
            name,
            direction,
            kind,
        });
    }
    Shape::from_ports(ports).map_err(|e| CoreError::Decode(e.to_string()))
}

fn encode_profile(w: &mut Writer, p: &TranslatorProfile) {
    encode_translator_id(w, p.id());
    w.str(p.name());
    w.str(p.platform());
    encode_shape(w, p.shape());
    let attrs: Vec<_> = p.attrs().collect();
    w.u16(attrs.len() as u16);
    for (k, v) in attrs {
        w.str(k);
        w.str(v);
    }
}

fn decode_profile(r: &mut Reader<'_>) -> CoreResult<TranslatorProfile> {
    let id = decode_translator_id(r)?;
    let name = r.str()?;
    let platform = r.str()?;
    let shape = decode_shape(r)?;
    let mut builder = TranslatorProfile::builder(id, name)
        .platform(platform)
        .shape(shape);
    let n = r.u16()? as usize;
    for _ in 0..n {
        let k = r.str()?;
        let v = r.str()?;
        builder = builder.attr(k, v);
    }
    Ok(builder.build())
}

/// Maximum query nesting depth accepted by the decoder (defense against
/// stack exhaustion from hostile input).
const MAX_QUERY_DEPTH: u32 = 32;

fn encode_query(w: &mut Writer, q: &Query) {
    match q {
        Query::All => w.u8(0),
        Query::None => w.u8(1),
        Query::HasPort { direction, kind } => {
            w.u8(2);
            w.u8(match direction {
                Direction::Input => 0,
                Direction::Output => 1,
            });
            encode_port_kind(w, kind);
        }
        Query::NameIs(s) => {
            w.u8(3);
            w.str(s);
        }
        Query::NameContains(s) => {
            w.u8(4);
            w.str(s);
        }
        Query::Platform(s) => {
            w.u8(5);
            w.str(s);
        }
        Query::Attr { key, value } => {
            w.u8(6);
            w.str(key);
            w.str(value);
        }
        Query::HasAttr(key) => {
            w.u8(7);
            w.str(key);
        }
        Query::And(a, b) => {
            w.u8(8);
            encode_query(w, a);
            encode_query(w, b);
        }
        Query::Or(a, b) => {
            w.u8(9);
            encode_query(w, a);
            encode_query(w, b);
        }
        Query::Not(a) => {
            w.u8(10);
            encode_query(w, a);
        }
    }
}

fn decode_query(r: &mut Reader<'_>, depth: u32) -> CoreResult<Query> {
    if depth > MAX_QUERY_DEPTH {
        return Err(CoreError::Decode("query too deep".to_owned()));
    }
    Ok(match r.u8()? {
        0 => Query::All,
        1 => Query::None,
        2 => Query::HasPort {
            direction: match r.u8()? {
                0 => Direction::Input,
                1 => Direction::Output,
                other => return Err(CoreError::Decode(format!("unknown direction {other}"))),
            },
            kind: decode_port_kind(r)?,
        },
        3 => Query::NameIs(r.str()?),
        4 => Query::NameContains(r.str()?),
        5 => Query::Platform(r.str()?),
        6 => Query::Attr {
            key: r.str()?,
            value: r.str()?,
        },
        7 => Query::HasAttr(r.str()?),
        8 => Query::And(
            Box::new(decode_query(r, depth + 1)?),
            Box::new(decode_query(r, depth + 1)?),
        ),
        9 => Query::Or(
            Box::new(decode_query(r, depth + 1)?),
            Box::new(decode_query(r, depth + 1)?),
        ),
        10 => Query::Not(Box::new(decode_query(r, depth + 1)?)),
        other => return Err(CoreError::Decode(format!("unknown query tag {other}"))),
    })
}

fn encode_qos(w: &mut Writer, q: &QosPolicy) {
    match q.capacity_bytes {
        Some(cap) => {
            w.u8(1);
            w.u64(cap as u64);
        }
        None => w.u8(0),
    }
    w.u8(match q.overflow {
        OverflowPolicy::Unbounded => 0,
        OverflowPolicy::DropNewest => 1,
        OverflowPolicy::DropOldest => 2,
    });
    match q.rate {
        Some(rate) => {
            w.u8(1);
            w.u64(rate.bytes_per_second);
            w.u64(rate.burst_bytes);
        }
        None => w.u8(0),
    }
}

fn decode_qos(r: &mut Reader<'_>) -> CoreResult<QosPolicy> {
    let capacity_bytes = match r.u8()? {
        0 => None,
        1 => Some(r.u64()? as usize),
        other => return Err(CoreError::Decode(format!("unknown capacity tag {other}"))),
    };
    let overflow = match r.u8()? {
        0 => OverflowPolicy::Unbounded,
        1 => OverflowPolicy::DropNewest,
        2 => OverflowPolicy::DropOldest,
        other => return Err(CoreError::Decode(format!("unknown overflow tag {other}"))),
    };
    let rate = match r.u8()? {
        0 => None,
        1 => Some(RateLimit {
            bytes_per_second: r.u64()?,
            burst_bytes: r.u64()?,
        }),
        other => return Err(CoreError::Decode(format!("unknown rate tag {other}"))),
    };
    Ok(QosPolicy {
        capacity_bytes,
        overflow,
        rate,
    })
}

fn encode_umessage(w: &mut Writer, m: &UMessage) {
    w.str(&m.mime().to_string());
    w.bytes(m.body());
    let metas: Vec<_> = m.metas().collect();
    w.u16(metas.len() as u16);
    for (k, v) in metas {
        w.str(k);
        w.str(v);
    }
}

fn decode_umessage(r: &mut Reader<'_>) -> CoreResult<UMessage> {
    let mime: MimeType = r.str()?.parse()?;
    let body = r.bytes()?;
    let mut m = UMessage::new(mime, body);
    let n = r.u16()? as usize;
    for _ in 0..n {
        let k = r.str()?;
        let v = r.str()?;
        m = m.with_meta(k, v);
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> TranslatorProfile {
        let shape = Shape::builder()
            .digital("in", Direction::Input, "image/jpeg".parse().unwrap())
            .physical(
                "screen",
                Direction::Output,
                PerceptionType::Visible,
                "screen",
            )
            .build()
            .unwrap();
        TranslatorProfile::builder(TranslatorId::new(RuntimeId(3), 14), "TV")
            .platform("upnp")
            .shape(shape)
            .attr("room", "living")
            .build()
    }

    #[test]
    fn advertise_round_trip() {
        let msg = WireMessage::Advertise {
            profile: sample_profile(),
            home: Addr::new(NodeId::from_index(2), 47_001),
        };
        let back = WireMessage::decode(&msg.encode()).unwrap();
        assert_eq!(msg, back);
    }

    #[test]
    fn bye_probe_round_trip() {
        for msg in [
            WireMessage::Bye {
                translator: TranslatorId::new(RuntimeId(1), 9),
            },
            WireMessage::Probe {
                reply_to: Addr::new(NodeId::from_index(0), 47_000),
            },
        ] {
            assert_eq!(WireMessage::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn path_message_round_trip() {
        let msg = WireMessage::PathMessage {
            connection: ConnectionId::new(RuntimeId(2), 5),
            dst: PortRef::new(TranslatorId::new(RuntimeId(0), 7), "media-in"),
            msg: UMessage::new("image/jpeg".parse().unwrap(), vec![1, 2, 3]).with_meta("seq", "42"),
        };
        assert_eq!(WireMessage::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn path_message_wire_bytes_are_stable() {
        // Golden bytes: interning the port name (PortRef.port: String →
        // Symbol) must not change the wire encoding. This is the exact
        // byte sequence the String-based codec produced.
        let msg = WireMessage::PathMessage {
            connection: ConnectionId::new(RuntimeId(2), 5),
            dst: PortRef::new(TranslatorId::new(RuntimeId(0), 7), "in"),
            msg: UMessage::new("text/plain".parse().unwrap(), vec![0xAB, 0xCD]),
        };
        #[rustfmt::skip]
        let expected: Vec<u8> = vec![
            4,                      // TAG_PATH
            2, 0, 0, 0,             // connection.runtime (u32 LE)
            5, 0, 0, 0,             // connection.local
            0, 0, 0, 0,             // dst.translator.runtime
            7, 0, 0, 0,             // dst.translator.local
            2, 0, b'i', b'n',       // dst.port: u16 LE length + UTF-8
            10, 0,                  // mime length
            b't', b'e', b'x', b't', b'/', b'p', b'l', b'a', b'i', b'n',
            2, 0, 0, 0, 0xAB, 0xCD, // body: u32 LE length + bytes
            0, 0,                   // metadata count
        ];
        assert_eq!(msg.encode(), expected);
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = WireMessage::Bye {
            translator: TranslatorId::new(RuntimeId(1), 1),
        }
        .encode();
        for cut in 0..bytes.len() {
            assert!(WireMessage::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = WireMessage::Probe {
            reply_to: Addr::new(NodeId::from_index(0), 1),
        }
        .encode();
        bytes.push(0);
        assert!(WireMessage::decode(&bytes).is_err());
    }

    #[test]
    fn frame_decoder_handles_arbitrary_chunking() {
        let msgs = vec![
            WireMessage::Bye {
                translator: TranslatorId::new(RuntimeId(0), 1),
            },
            WireMessage::Advertise {
                profile: sample_profile(),
                home: Addr::new(NodeId::from_index(1), 47_001),
            },
            WireMessage::Probe {
                reply_to: Addr::new(NodeId::from_index(2), 47_000),
            },
        ];
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend(m.encode_framed());
        }
        // Feed one byte at a time.
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for b in stream {
            dec.push(&[b]);
            while let Some(m) = dec.next().unwrap() {
                out.push(m);
            }
        }
        assert_eq!(out, msgs);
    }

    #[test]
    fn framed_batch_bytes_match_concatenated_frames() {
        let msgs = vec![
            WireMessage::PathMessage {
                connection: ConnectionId::new(RuntimeId(2), 5),
                dst: PortRef::new(TranslatorId::new(RuntimeId(0), 7), "in"),
                msg: UMessage::new("text/plain".parse().unwrap(), vec![1, 2, 3]),
            },
            WireMessage::Bye {
                translator: TranslatorId::new(RuntimeId(0), 1),
            },
            WireMessage::PathMessage {
                connection: ConnectionId::new(RuntimeId(2), 5),
                dst: PortRef::new(TranslatorId::new(RuntimeId(0), 7), "in"),
                msg: UMessage::new("image/jpeg".parse().unwrap(), vec![9u8; 300])
                    .with_meta("seq", "2"),
            },
        ];
        let mut batch = FramedBatch::new();
        let mut expected: Vec<u8> = Vec::new();
        for m in &msgs {
            batch.push(m);
            expected.extend(m.encode_framed());
        }
        assert_eq!(batch.count(), msgs.len());
        assert_eq!(batch.wire_len(), expected.len());
        let wire = batch.finish();
        assert_eq!(
            &wire[..],
            &expected[..],
            "one vectored pass must produce exactly the per-frame bytes"
        );
        // And the decoder agrees: the batch is N ordinary frames.
        let mut dec = FrameDecoder::new();
        dec.push_payload(wire);
        let mut out = Vec::new();
        dec.drain_frames(&mut out);
        let decoded: Vec<WireMessage> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(decoded, msgs);
    }

    #[test]
    fn drain_frames_decodes_all_buffered_frames_in_one_poll() {
        // Regression: `next()` surfaced one frame per poll, so a payload
        // carrying N frames cost N+1 decoder invocations. `drain_frames`
        // must consume everything available in a single pass.
        let msgs: Vec<WireMessage> = (0..5)
            .map(|i| WireMessage::Bye {
                translator: TranslatorId::new(RuntimeId(0), i),
            })
            .collect();
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend(m.encode_framed());
        }

        // The old pattern: one poll per frame, plus the final empty poll.
        let mut dec = FrameDecoder::new();
        dec.push(&stream);
        let mut out = Vec::new();
        while let Some(m) = dec.next().unwrap() {
            out.push(m);
        }
        assert_eq!(out, msgs);
        assert_eq!(dec.polls(), msgs.len() as u64 + 1);

        // The batched pattern: every frame in one invocation.
        let mut dec = FrameDecoder::new();
        dec.push(&stream);
        let mut drained = Vec::new();
        let n = dec.drain_frames(&mut drained);
        assert_eq!(n, msgs.len());
        assert_eq!(dec.polls(), 1);
        let decoded: Vec<WireMessage> = drained.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(decoded, msgs);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn framed_decode_is_zero_copy_within_a_chunk() {
        let msg = WireMessage::PathMessage {
            connection: ConnectionId::new(RuntimeId(2), 5),
            dst: PortRef::new(TranslatorId::new(RuntimeId(0), 7), "media-in"),
            msg: UMessage::new("image/jpeg".parse().unwrap(), vec![9u8; 4096]),
        };
        let framed = msg.encode_framed();
        let mut dec = FrameDecoder::new();
        dec.push_payload(framed.clone());
        let Some(WireMessage::PathMessage { msg: decoded, .. }) = dec.next().unwrap() else {
            panic!("expected path message");
        };
        assert!(
            decoded.body_payload().shares_buffer(&framed),
            "body must be a view of the framed buffer, not a copy"
        );
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn connect_control_round_trip() {
        use crate::shape::PortKind;
        let q = Query::has_port(
            Direction::Input,
            PortKind::Digital("image/*".parse().unwrap()),
        )
        .and(Query::Platform("upnp".to_owned()).not());
        for msg in [
            WireMessage::ConnectRequest {
                token: 99,
                reply_to: Addr::new(NodeId::from_index(4), 47_000),
                src: PortRef::new(TranslatorId::new(RuntimeId(1), 2), "image-out"),
                target: WireTarget::Query(q),
                qos: QosPolicy::bounded_drop_oldest(4096).with_rate(1000, 2000),
            },
            WireMessage::ConnectRequest {
                token: 100,
                reply_to: Addr::new(NodeId::from_index(4), 47_000),
                src: PortRef::new(TranslatorId::new(RuntimeId(1), 2), "image-out"),
                target: WireTarget::Port(PortRef::new(
                    TranslatorId::new(RuntimeId(0), 7),
                    "media-in",
                )),
                qos: QosPolicy::unbounded(),
            },
            WireMessage::ConnectReply {
                token: 99,
                result: Ok(ConnectionId::new(RuntimeId(1), 3)),
            },
            WireMessage::ConnectReply {
                token: 100,
                result: Err("incompatible ports".to_owned()),
            },
            WireMessage::DisconnectRequest {
                connection: ConnectionId::new(RuntimeId(1), 3),
            },
        ] {
            assert_eq!(WireMessage::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn delta_gossip_round_trip() {
        for msg in [
            WireMessage::Delta {
                origin: RuntimeId(3),
                home: Addr::new(NodeId::from_index(2), 47_001),
                first: 17,
                ops: vec![
                    DeltaOp::Add(sample_profile()),
                    DeltaOp::Remove(TranslatorId::new(RuntimeId(3), 9)),
                    DeltaOp::Add(sample_profile()),
                ],
            },
            WireMessage::Delta {
                origin: RuntimeId(0),
                home: Addr::new(NodeId::from_index(0), 47_001),
                first: 1,
                ops: vec![],
            },
            WireMessage::Digest {
                origin: RuntimeId(7),
                reply_to: Addr::new(NodeId::from_index(5), 47_000),
                home: Addr::new(NodeId::from_index(5), 47_001),
                vector: vec![(RuntimeId(7), 42), (RuntimeId(1), 3)],
            },
            WireMessage::DeltaRequest {
                origin: RuntimeId(7),
                from: 12,
                reply_to: Addr::new(NodeId::from_index(9), 47_000),
            },
            WireMessage::Snapshot {
                origin: RuntimeId(7),
                home: Addr::new(NodeId::from_index(5), 47_001),
                version: 42,
                profiles: vec![sample_profile(), sample_profile()],
            },
            WireMessage::Snapshot {
                origin: RuntimeId(1),
                home: Addr::new(NodeId::from_index(1), 47_001),
                version: 6,
                profiles: vec![],
            },
        ] {
            assert_eq!(WireMessage::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn delta_wire_bytes_are_stable() {
        // Golden bytes: deltas are replayed deterministically across
        // replicas, so the encoding is pinned.
        let msg = WireMessage::Delta {
            origin: RuntimeId(2),
            home: Addr::new(NodeId::from_index(3), 47_001),
            first: 5,
            ops: vec![DeltaOp::Remove(TranslatorId::new(RuntimeId(2), 7))],
        };
        #[rustfmt::skip]
        let expected: Vec<u8> = vec![
            8,                       // TAG_DELTA
            2, 0, 0, 0,              // origin (u32 LE)
            3, 0, 0, 0, 0x99, 0xB7,  // home: node u32 LE + port 47001 u16 LE
            5, 0, 0, 0, 0, 0, 0, 0,  // first (u64 LE)
            1, 0,                    // op count (u16 LE)
            1,                       // OP_REMOVE
            2, 0, 0, 0,              // id.runtime
            7, 0, 0, 0,              // id.local
        ];
        assert_eq!(msg.encode(), expected);
    }

    #[test]
    fn steady_state_digest_is_small() {
        // The whole point of delta gossip: the periodic per-runtime cost
        // is one self-watermark digest, not a table re-broadcast. Budget
        // it so a regression (e.g. digesting the full vector every tick)
        // shows up here before it shows up in the E12 byte ratio.
        let msg = WireMessage::Digest {
            origin: RuntimeId(42),
            reply_to: Addr::new(NodeId::from_index(99), 47_000),
            home: Addr::new(NodeId::from_index(99), 47_001),
            vector: vec![(RuntimeId(42), u64::MAX)],
        };
        assert!(
            msg.encode().len() <= 32,
            "steady-state digest must stay a few dozen bytes, got {}",
            msg.encode().len()
        );
    }

    #[test]
    fn deep_query_rejected() {
        let mut q = Query::All;
        for _ in 0..64 {
            q = q.not();
        }
        let msg = WireMessage::ConnectRequest {
            token: 0,
            reply_to: Addr::new(NodeId::from_index(0), 1),
            src: PortRef::new(TranslatorId::new(RuntimeId(0), 0), "p"),
            target: WireTarget::Query(q),
            qos: QosPolicy::unbounded(),
        };
        assert!(WireMessage::decode(&msg.encode()).is_err());
    }

    /// Random bytes never panic the decoder.
    #[test]
    fn decode_never_panics() {
        simnet::check_cases("wire_decode_never_panics", 256, |_, rng| {
            let len = rng.gen_range(0usize..256);
            let bytes = rng.gen_bytes(len);
            let _ = WireMessage::decode(&bytes);
        });
    }

    /// UMessage round trip with arbitrary body and metadata.
    #[test]
    fn path_round_trip() {
        simnet::check_cases("wire_path_round_trip", 256, |_, rng| {
            let len = rng.gen_range(0usize..512);
            let body = rng.gen_bytes(len);
            let mut m = UMessage::new("application/octet-stream".parse().unwrap(), body);
            let n_meta = rng.gen_range(0usize..4);
            for _ in 0..n_meta {
                let klen = rng.gen_range(1usize..=8);
                let k = rng.gen_string("abcdefghijklmnopqrstuvwxyz", klen);
                let vlen = rng.gen_range(0usize..=16);
                let v = rng.gen_string("abcdefghijklmnopqrstuvwxyz0123456789", vlen);
                m = m.with_meta(k, v);
            }
            let local = rng.gen_range(0u32..=u32::MAX);
            let msg = WireMessage::PathMessage {
                connection: ConnectionId::new(RuntimeId(1), local),
                dst: PortRef::new(TranslatorId::new(RuntimeId(0), 0), "p"),
                msg: m,
            };
            assert_eq!(WireMessage::decode(&msg.encode()).unwrap(), msg);
        });
    }
}
