//! The local API between processes (applications, mappers, native
//! services) and the uMiddle runtime on their node.
//!
//! Requests and events travel as simnet local messages (zero network cost,
//! same-node only). [`RuntimeClient`] wraps the request side with token
//! allocation; events arrive in the caller's
//! [`Process::on_local`](simnet::Process::on_local) as [`RuntimeEvent`]s.
//!
//! The API mirrors the paper's Figures 6 and 7:
//!
//! * `lookup(Query)` / directory listeners → [`RuntimeRequest::Lookup`],
//!   [`RuntimeRequest::AddListener`], [`DirectoryEvent`].
//! * `connect(OutputPort, InputPort)` and `connect(Port, Query)` →
//!   [`RuntimeRequest::Connect`] with [`ConnectTarget`].

use simnet::{Ctx, LocalMessage, ProcId};

use crate::id::{ConnectionId, PortRef, TranslatorId};
use crate::intern::Symbol;
use crate::message::UMessage;
use crate::profile::TranslatorProfile;
use crate::qos::QosPolicy;
use crate::query::Query;

/// Target of a connect request (paper Figure 7).
#[derive(Debug, Clone, PartialEq)]
pub enum ConnectTarget {
    /// A specific input port (Figure 7-(1)).
    Port(PortRef),
    /// A template query, evaluated adaptively as translators appear and
    /// disappear (Figure 7-(2), dynamic device binding).
    Query(Query),
}

/// Requests a process sends to its local runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeRequest {
    /// Registers a translator. The profile's id is a placeholder; the
    /// runtime assigns the real id and replies with
    /// [`RuntimeEvent::Registered`] carrying `token`.
    Register {
        /// Correlation token echoed in the reply.
        token: u64,
        /// The profile to register (id ignored).
        profile: TranslatorProfile,
        /// The process that will receive [`RuntimeEvent::Input`] for this
        /// translator and emit [`RuntimeRequest::Output`].
        delegate: ProcId,
    },
    /// Removes a translator and its connections; peers are notified.
    Unregister {
        /// The translator to remove.
        translator: TranslatorId,
    },
    /// Queries the directory replica; replies with
    /// [`RuntimeEvent::LookupResult`].
    Lookup {
        /// Correlation token echoed in the reply.
        token: u64,
        /// The query.
        query: Query,
    },
    /// Subscribes the sender to [`DirectoryEvent`]s for profiles matching
    /// `query` (the paper's `addDirectoryListener`). Matching profiles
    /// already present are reported immediately as appearances.
    AddListener {
        /// Filter for events delivered to this listener.
        query: Query,
    },
    /// Removes all of the sender's directory subscriptions.
    RemoveListener,
    /// Establishes a message path from `src` to `target`. Replies with
    /// [`RuntimeEvent::Connected`] or [`RuntimeEvent::ConnectFailed`].
    /// If `src` is hosted by a remote runtime the request is forwarded
    /// there transparently.
    Connect {
        /// Correlation token echoed in the reply.
        token: u64,
        /// Source output port.
        src: PortRef,
        /// Destination: a port or a query template.
        target: ConnectTarget,
        /// QoS policy of the path's translation buffer.
        qos: QosPolicy,
    },
    /// Tears down a connection.
    Disconnect {
        /// The connection to remove.
        connection: ConnectionId,
    },
    /// A delegate emits a message on one of its translator's output
    /// ports; the runtime fans it out along established paths.
    Output {
        /// The emitting translator.
        translator: TranslatorId,
        /// The output port name.
        port: Symbol,
        /// The message.
        msg: UMessage,
    },
    /// A delegate acknowledges that it finished processing one
    /// [`RuntimeEvent::Input`] on `connection`, releasing one unit of the
    /// path's delivery credit. See [`ack_input_done`].
    InputDone {
        /// The connection whose credit to release.
        connection: ConnectionId,
        /// The destination translator the input was delivered to (selects
        /// the path when a query connection fans out to several locals).
        translator: TranslatorId,
    },
    /// Requests a snapshot of this runtime's metric scope (`rt{N}.*`,
    /// prefix stripped). Replies with [`RuntimeEvent::Metrics`].
    MetricsSnapshot {
        /// Correlation token echoed in the reply.
        token: u64,
    },
    /// Requests a live windowed-telemetry pull of this runtime's metric
    /// scope (`rt{N}.*`, prefix stripped): per-interval deltas, rates
    /// and watermarks from the world's sampler. Replies with
    /// [`RuntimeEvent::Telemetry`]; the window is `None` when the world
    /// has not enabled telemetry.
    TelemetryWindow {
        /// Correlation token echoed in the reply.
        token: u64,
    },
}

/// Directory change notifications (the paper's `DirectoryListener`).
#[derive(Debug, Clone, PartialEq)]
pub enum DirectoryEvent {
    /// A translator matching the subscription appeared (or was already
    /// present when the listener was added).
    Appeared(TranslatorProfile),
    /// A translator disappeared (bye or TTL expiry).
    Disappeared(TranslatorId),
}

/// Events the runtime delivers to processes.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeEvent {
    /// Registration completed.
    Registered {
        /// Token from the [`RuntimeRequest::Register`].
        token: u64,
        /// The assigned translator id.
        translator: TranslatorId,
    },
    /// Lookup result.
    LookupResult {
        /// Token from the [`RuntimeRequest::Lookup`].
        token: u64,
        /// Matching profiles, ordered by translator id.
        profiles: Vec<TranslatorProfile>,
    },
    /// A directory change matching one of the receiver's subscriptions.
    Directory(DirectoryEvent),
    /// A connection was established.
    Connected {
        /// Token from the [`RuntimeRequest::Connect`].
        token: u64,
        /// The new connection's id.
        connection: ConnectionId,
    },
    /// A connection could not be established.
    ConnectFailed {
        /// Token from the [`RuntimeRequest::Connect`].
        token: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// A message arrived on an input port of a translator delegated to
    /// the receiver. The receiver should call [`ack_input_done`] (or send
    /// [`RuntimeRequest::InputDone`]) when processing completes.
    Input {
        /// The destination translator.
        translator: TranslatorId,
        /// The input port name.
        port: Symbol,
        /// The message.
        msg: UMessage,
        /// The connection it arrived on.
        connection: ConnectionId,
    },
    /// A run of messages that became deliverable at the same instant for
    /// translators delegated to the receiver, handed over in one wakeup
    /// (the batch plane; see [`simnet::BatchPolicy`]). Handle each item
    /// exactly as an [`RuntimeEvent::Input`] — including one
    /// [`ack_input_done`] per item; delivery credit is accounted per
    /// message, not per batch.
    InputBatch {
        /// The deliveries, in the order they were polled.
        inputs: Vec<InputDelivery>,
    },
    /// A dynamic (query) connection bound to a concrete destination port.
    PathBound {
        /// The dynamic connection.
        connection: ConnectionId,
        /// The destination it bound to.
        dst: PortRef,
    },
    /// A dynamic connection lost one of its destinations.
    PathUnbound {
        /// The dynamic connection.
        connection: ConnectionId,
        /// The departed destination.
        dst: PortRef,
    },
    /// A snapshot of the runtime's metric scope, in reply to
    /// [`RuntimeRequest::MetricsSnapshot`].
    Metrics {
        /// Token from the request.
        token: u64,
        /// The runtime's `rt{N}.*` metrics, prefix stripped.
        snapshot: simnet::MetricsSnapshot,
    },
    /// A live windowed-telemetry pull, in reply to
    /// [`RuntimeRequest::TelemetryWindow`].
    Telemetry {
        /// Token from the request.
        token: u64,
        /// The runtime's scoped window, or `None` when the world has
        /// not enabled telemetry.
        window: Option<simnet::TelemetryWindow>,
    },
}

/// One element of an [`RuntimeEvent::InputBatch`]: the same payload an
/// individual [`RuntimeEvent::Input`] carries.
#[derive(Debug, Clone, PartialEq)]
pub struct InputDelivery {
    /// The destination translator.
    pub translator: TranslatorId,
    /// The input port name.
    pub port: Symbol,
    /// The message.
    pub msg: UMessage,
    /// The connection it arrived on.
    pub connection: ConnectionId,
}

/// Internal self-echo used by [`ack_input_done`] to defer the
/// acknowledgment until the process's modeled CPU time has elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputDoneEcho {
    /// The local runtime to forward the ack to.
    pub runtime: ProcId,
    /// The connection whose credit to release.
    pub connection: ConnectionId,
    /// The destination translator the input was delivered to.
    pub translator: TranslatorId,
}

/// Acknowledges an [`RuntimeEvent::Input`] *after* the caller's modeled
/// CPU time ([`Ctx::busy`]) has elapsed.
///
/// The ack is sent to the process itself first; because deliveries to a
/// busy process are deferred, the echo arrives once processing "finishes",
/// and [`handle_input_done_echo`] then forwards the real
/// [`RuntimeRequest::InputDone`] to the runtime. Call this at the end of
/// the `Input` handler, after any `ctx.busy(...)`.
pub fn ack_input_done(
    ctx: &mut Ctx<'_>,
    runtime: ProcId,
    connection: ConnectionId,
    translator: TranslatorId,
) {
    let me = ctx.me();
    ctx.send_local(
        me,
        InputDoneEcho {
            runtime,
            connection,
            translator,
        },
    );
}

/// Processes an [`InputDoneEcho`] in `on_local`. Returns `true` if the
/// message was an echo (and was handled), `false` otherwise.
pub fn handle_input_done_echo(ctx: &mut Ctx<'_>, msg: &LocalMessage) -> bool {
    if let Some(echo) = msg.downcast_ref::<InputDoneEcho>() {
        ctx.send_local(
            echo.runtime,
            RuntimeRequest::InputDone {
                connection: echo.connection,
                translator: echo.translator,
            },
        );
        true
    } else {
        false
    }
}

/// Convenience wrapper for talking to the local runtime: allocates
/// correlation tokens and sends [`RuntimeRequest`]s.
///
/// One client per process; events still arrive via `on_local` as
/// [`RuntimeEvent`]s. Typical delegate skeleton:
///
/// ```
/// use simnet::{Ctx, LocalMessage, ProcId, Process};
/// use umiddle_core::{
///     ack_input_done, handle_input_done_echo, RuntimeClient, RuntimeEvent,
///     RuntimeId, TranslatorId, TranslatorProfile,
/// };
///
/// struct MyService { runtime: ProcId, client: Option<RuntimeClient> }
///
/// impl Process for MyService {
///     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
///         let mut client = RuntimeClient::new(self.runtime);
///         let profile = TranslatorProfile::builder(
///             TranslatorId::new(RuntimeId(u32::MAX), 0), // placeholder id
///             "My Service",
///         ).build();
///         let me = ctx.me();
///         client.register(ctx, profile, me);
///         self.client = Some(client);
///     }
///     fn on_local(&mut self, ctx: &mut Ctx<'_>, _from: ProcId, msg: LocalMessage) {
///         if handle_input_done_echo(ctx, &msg) { return; }
///         if let Ok(event) = msg.downcast::<RuntimeEvent>() {
///             if let RuntimeEvent::Input { translator, connection, .. } = *event {
///                 // ... handle the message, model CPU with ctx.busy ...
///                 ack_input_done(ctx, self.runtime, connection, translator);
///             }
///         }
///     }
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RuntimeClient {
    runtime: ProcId,
    next_token: u64,
}

impl RuntimeClient {
    /// Creates a client bound to the runtime process on this node.
    pub fn new(runtime: ProcId) -> RuntimeClient {
        RuntimeClient {
            runtime,
            next_token: 1,
        }
    }

    /// The runtime process this client talks to.
    pub fn runtime(&self) -> ProcId {
        self.runtime
    }

    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    /// Registers a translator; returns the correlation token.
    pub fn register(
        &mut self,
        ctx: &mut Ctx<'_>,
        profile: TranslatorProfile,
        delegate: ProcId,
    ) -> u64 {
        let token = self.token();
        ctx.send_local(
            self.runtime,
            RuntimeRequest::Register {
                token,
                profile,
                delegate,
            },
        );
        token
    }

    /// Unregisters a translator.
    pub fn unregister(&self, ctx: &mut Ctx<'_>, translator: TranslatorId) {
        ctx.send_local(self.runtime, RuntimeRequest::Unregister { translator });
    }

    /// Issues a lookup; returns the correlation token.
    pub fn lookup(&mut self, ctx: &mut Ctx<'_>, query: Query) -> u64 {
        let token = self.token();
        ctx.send_local(self.runtime, RuntimeRequest::Lookup { token, query });
        token
    }

    /// Subscribes to directory events matching `query`.
    pub fn add_listener(&self, ctx: &mut Ctx<'_>, query: Query) {
        ctx.send_local(self.runtime, RuntimeRequest::AddListener { query });
    }

    /// Connects an output port to a specific input port (Figure 7-(1));
    /// returns the correlation token.
    pub fn connect_ports(
        &mut self,
        ctx: &mut Ctx<'_>,
        src: PortRef,
        dst: PortRef,
        qos: QosPolicy,
    ) -> u64 {
        let token = self.token();
        ctx.send_local(
            self.runtime,
            RuntimeRequest::Connect {
                token,
                src,
                target: ConnectTarget::Port(dst),
                qos,
            },
        );
        token
    }

    /// Connects an output port to every translator matching a query
    /// template, adaptively (Figure 7-(2)); returns the correlation token.
    pub fn connect_query(
        &mut self,
        ctx: &mut Ctx<'_>,
        src: PortRef,
        query: Query,
        qos: QosPolicy,
    ) -> u64 {
        let token = self.token();
        ctx.send_local(
            self.runtime,
            RuntimeRequest::Connect {
                token,
                src,
                target: ConnectTarget::Query(query),
                qos,
            },
        );
        token
    }

    /// Tears down a connection.
    pub fn disconnect(&self, ctx: &mut Ctx<'_>, connection: ConnectionId) {
        ctx.send_local(self.runtime, RuntimeRequest::Disconnect { connection });
    }

    /// Requests the runtime's metric scope; returns the correlation
    /// token echoed in [`RuntimeEvent::Metrics`].
    pub fn metrics_snapshot(&mut self, ctx: &mut Ctx<'_>) -> u64 {
        let token = self.token();
        ctx.send_local(self.runtime, RuntimeRequest::MetricsSnapshot { token });
        token
    }

    /// Requests a live windowed-telemetry pull of the runtime's metric
    /// scope; returns the correlation token echoed in
    /// [`RuntimeEvent::Telemetry`].
    pub fn telemetry_window(&mut self, ctx: &mut Ctx<'_>) -> u64 {
        let token = self.token();
        ctx.send_local(self.runtime, RuntimeRequest::TelemetryWindow { token });
        token
    }

    /// Emits a message on a translator's output port.
    pub fn output(
        &self,
        ctx: &mut Ctx<'_>,
        translator: TranslatorId,
        port: impl Into<Symbol>,
        msg: UMessage,
    ) {
        ctx.send_local(
            self.runtime,
            RuntimeRequest::Output {
                translator,
                port: port.into(),
                msg,
            },
        );
    }
}
