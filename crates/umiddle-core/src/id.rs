//! Identifiers for entities in the intermediary semantic space.

use std::fmt;

use crate::intern::Symbol;

/// Identifies a uMiddle runtime instance.
///
/// Runtime ids are assigned by the deployer and must be unique within a
/// federation of runtimes (the paper's "intermediary translator nodes"
/// H1, H2, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RuntimeId(pub u32);

impl fmt::Display for RuntimeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rt{}", self.0)
    }
}

/// Globally unique identifier of a translator.
///
/// A translator id combines the id of the runtime that hosts it with a
/// locally unique sequence number, so ids can be allocated without
/// coordination.
///
/// # Examples
///
/// ```
/// use umiddle_core::{RuntimeId, TranslatorId};
///
/// let id = TranslatorId::new(RuntimeId(2), 7);
/// assert_eq!(id.to_string(), "rt2/t7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TranslatorId {
    /// The runtime hosting the translator.
    pub runtime: RuntimeId,
    /// Sequence number local to that runtime.
    pub local: u32,
}

impl TranslatorId {
    /// Creates a translator id.
    pub const fn new(runtime: RuntimeId, local: u32) -> TranslatorId {
        TranslatorId { runtime, local }
    }
}

impl fmt::Display for TranslatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/t{}", self.runtime, self.local)
    }
}

/// A reference to one port of one translator.
///
/// # Examples
///
/// ```
/// use umiddle_core::{PortRef, RuntimeId, TranslatorId};
///
/// let r = PortRef::new(TranslatorId::new(RuntimeId(0), 1), "image-out");
/// assert_eq!(r.to_string(), "rt0/t1.image-out");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortRef {
    /// The owning translator.
    pub translator: TranslatorId,
    /// The port's name (interned), unique within the translator.
    pub port: Symbol,
}

impl PortRef {
    /// Creates a port reference, interning the port name.
    pub fn new(translator: TranslatorId, port: impl Into<Symbol>) -> PortRef {
        PortRef {
            translator,
            port: port.into(),
        }
    }
}

impl fmt::Display for PortRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.translator, self.port)
    }
}

/// Identifies one established message path (connection) between ports.
///
/// Connection ids are allocated by the runtime that owns the source port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnectionId {
    /// The runtime that created the connection.
    pub runtime: RuntimeId,
    /// Sequence number local to that runtime.
    pub local: u32,
}

impl ConnectionId {
    /// Creates a connection id.
    pub const fn new(runtime: RuntimeId, local: u32) -> ConnectionId {
        ConnectionId { runtime, local }
    }

    /// The correlation id used for span tracing: connection ids are
    /// federation-unique, so `(runtime << 32) | local` correlates every
    /// hop of a path across runtimes and platform bridges.
    pub const fn corr(self) -> u64 {
        ((self.runtime.0 as u64) << 32) | self.local as u64
    }
}

impl fmt::Display for ConnectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/c{}", self.runtime, self.local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_hashable_and_distinct() {
        let mut set = HashSet::new();
        set.insert(TranslatorId::new(RuntimeId(0), 0));
        set.insert(TranslatorId::new(RuntimeId(0), 1));
        set.insert(TranslatorId::new(RuntimeId(1), 0));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(RuntimeId(3).to_string(), "rt3");
        assert_eq!(ConnectionId::new(RuntimeId(1), 4).to_string(), "rt1/c4");
    }

    #[test]
    fn port_refs_order_by_translator_then_port() {
        let a = PortRef::new(TranslatorId::new(RuntimeId(0), 1), "a");
        let b = PortRef::new(TranslatorId::new(RuntimeId(0), 1), "b");
        let c = PortRef::new(TranslatorId::new(RuntimeId(0), 2), "a");
        assert!(a < b && b < c);
    }
}
