//! Service Shaping: representing device semantics as typed ports.
//!
//! Following the paper's §3.3, a native device is projected into the
//! intermediary semantic space as a *shape*: a set of communication
//! endpoints called ports.
//!
//! * A **digital port** transmits digital information to and from the
//!   network, tagged with a MIME type.
//! * A **physical port** is a conceptual entity that causes or senses a
//!   perceptible change in the physical world, tagged with a *perception
//!   type* (visible, audible, tangible) and a *media type* (paper, screen,
//!   air, …).
//!
//! The paper's PostScript printer example is a shape with a `text/ps`
//! digital input port and a `visible/paper` physical output port.

use std::fmt;
use std::str::FromStr;

use crate::error::CoreError;
use crate::mime::MimeType;

/// How a user perceives the effect of a physical port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PerceptionType {
    /// Perceived by sight (screens, lamps, paper).
    Visible,
    /// Perceived by hearing (speakers).
    Audible,
    /// Perceived by touch (actuators, haptics, temperature).
    Tangible,
    /// Wildcard used in queries: matches any perception type.
    Any,
}

impl PerceptionType {
    /// Returns `true` if the two perception types match, treating
    /// [`PerceptionType::Any`] on either side as matching anything.
    pub fn matches(self, other: PerceptionType) -> bool {
        self == PerceptionType::Any || other == PerceptionType::Any || self == other
    }
}

impl fmt::Display for PerceptionType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PerceptionType::Visible => "visible",
            PerceptionType::Audible => "audible",
            PerceptionType::Tangible => "tangible",
            PerceptionType::Any => "*",
        };
        f.write_str(s)
    }
}

impl FromStr for PerceptionType {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<PerceptionType, CoreError> {
        match s {
            "visible" => Ok(PerceptionType::Visible),
            "audible" => Ok(PerceptionType::Audible),
            "tangible" => Ok(PerceptionType::Tangible),
            "*" => Ok(PerceptionType::Any),
            other => Err(CoreError::Invalid(format!(
                "unknown perception type {other:?}"
            ))),
        }
    }
}

/// Direction of a port, from the owning device's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// The device consumes data/effects through this port.
    Input,
    /// The device produces data/effects through this port.
    Output,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Input => Direction::Output,
            Direction::Output => Direction::Input,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Direction::Input => "input",
            Direction::Output => "output",
        })
    }
}

impl FromStr for Direction {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<Direction, CoreError> {
        match s {
            "input" => Ok(Direction::Input),
            "output" => Ok(Direction::Output),
            other => Err(CoreError::Invalid(format!("unknown direction {other:?}"))),
        }
    }
}

/// The typed payload of a port: digital (MIME-typed) or physical
/// (perception + media typed).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PortKind {
    /// A digital communication endpoint carrying `MimeType`-typed data.
    Digital(MimeType),
    /// A physical affordance: how it is perceived and through what medium.
    Physical {
        /// How users perceive the effect.
        perception: PerceptionType,
        /// The physical medium carrying the effect (`paper`, `screen`,
        /// `air`, or `*` as a query wildcard).
        media: String,
    },
}

impl PortKind {
    /// Creates a physical port kind, normalizing the media type to
    /// lowercase.
    pub fn physical(perception: PerceptionType, media: &str) -> PortKind {
        PortKind::Physical {
            perception,
            media: media.to_ascii_lowercase(),
        }
    }

    /// Returns `true` if two port kinds carry matching types (wildcards on
    /// either side match). Digital never matches physical.
    pub fn matches(&self, other: &PortKind) -> bool {
        match (self, other) {
            (PortKind::Digital(a), PortKind::Digital(b)) => a.matches(b),
            (
                PortKind::Physical {
                    perception: pa,
                    media: ma,
                },
                PortKind::Physical {
                    perception: pb,
                    media: mb,
                },
            ) => pa.matches(*pb) && (ma == "*" || mb == "*" || ma == mb),
            _ => false,
        }
    }

    /// Returns the MIME type for digital ports.
    pub fn mime(&self) -> Option<&MimeType> {
        match self {
            PortKind::Digital(m) => Some(m),
            PortKind::Physical { .. } => None,
        }
    }

    /// Returns `true` for digital port kinds.
    pub fn is_digital(&self) -> bool {
        matches!(self, PortKind::Digital(_))
    }
}

impl fmt::Display for PortKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortKind::Digital(m) => write!(f, "digital:{m}"),
            PortKind::Physical { perception, media } => {
                write!(f, "physical:{perception}/{media}")
            }
        }
    }
}

/// One port in a shape: a named, directed, typed endpoint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PortSpec {
    /// Name, unique within the owning shape.
    pub name: String,
    /// Input or output, from the device's point of view.
    pub direction: Direction,
    /// The carried data/effect type.
    pub kind: PortKind,
}

impl PortSpec {
    /// Creates a digital port spec.
    pub fn digital(name: impl Into<String>, direction: Direction, mime: MimeType) -> PortSpec {
        PortSpec {
            name: name.into(),
            direction,
            kind: PortKind::Digital(mime),
        }
    }

    /// Creates a physical port spec.
    pub fn physical(
        name: impl Into<String>,
        direction: Direction,
        perception: PerceptionType,
        media: &str,
    ) -> PortSpec {
        PortSpec {
            name: name.into(),
            direction,
            kind: PortKind::physical(perception, media),
        }
    }
}

impl fmt::Display for PortSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.name, self.direction, self.kind)
    }
}

/// A device's shape: the full set of its ports.
///
/// The shape "represents the affordances of the device with which the
/// translator is attached" (paper §3.3). Two devices are interoperable
/// when one's output port matches the other's input port.
///
/// # Examples
///
/// The paper's PostScript printer:
///
/// ```
/// use umiddle_core::{Direction, PerceptionType, PortSpec, Shape};
///
/// let printer = Shape::builder()
///     .port(PortSpec::digital("doc-in", Direction::Input, "text/ps".parse()?))
///     .port(PortSpec::physical(
///         "printed-page",
///         Direction::Output,
///         PerceptionType::Visible,
///         "paper",
///     ))
///     .build()?;
/// assert_eq!(printer.ports().len(), 2);
/// # Ok::<(), umiddle_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    ports: Vec<PortSpec>,
}

impl Shape {
    /// Starts building a shape.
    pub fn builder() -> ShapeBuilder {
        ShapeBuilder { ports: Vec::new() }
    }

    /// Creates a shape from ports.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicatePort`] if two ports share a name.
    pub fn from_ports(ports: Vec<PortSpec>) -> Result<Shape, CoreError> {
        for (i, p) in ports.iter().enumerate() {
            if ports[..i].iter().any(|q| q.name == p.name) {
                return Err(CoreError::DuplicatePort(p.name.clone()));
            }
        }
        Ok(Shape { ports })
    }

    /// All ports, in declaration order.
    pub fn ports(&self) -> &[PortSpec] {
        &self.ports
    }

    /// Looks up a port by name.
    pub fn port(&self, name: &str) -> Option<&PortSpec> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Iterates over ports with the given direction.
    pub fn ports_in(&self, direction: Direction) -> impl Iterator<Item = &PortSpec> {
        self.ports.iter().filter(move |p| p.direction == direction)
    }

    /// Returns `true` if this shape has a port matching `direction` and
    /// `kind` (with wildcard semantics).
    pub fn has_matching_port(&self, direction: Direction, kind: &PortKind) -> bool {
        self.ports
            .iter()
            .any(|p| p.direction == direction && p.kind.matches(kind))
    }

    /// Finds ports on `self` and `other` that can be wired together:
    /// returns pairs `(our output port, their input port)` with matching
    /// data types. This is the compatibility relation of Service Shaping.
    pub fn connectable_to<'a>(&'a self, other: &'a Shape) -> Vec<(&'a PortSpec, &'a PortSpec)> {
        let mut pairs = Vec::new();
        for out in self.ports_in(Direction::Output) {
            if !out.kind.is_digital() {
                continue;
            }
            for inp in other.ports_in(Direction::Input) {
                if inp.kind.is_digital() && out.kind.matches(&inp.kind) {
                    pairs.push((out, inp));
                }
            }
        }
        pairs
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.ports.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

/// Incrementally builds a [`Shape`].
#[derive(Debug, Clone)]
pub struct ShapeBuilder {
    ports: Vec<PortSpec>,
}

impl ShapeBuilder {
    /// Adds a port.
    pub fn port(mut self, port: PortSpec) -> ShapeBuilder {
        self.ports.push(port);
        self
    }

    /// Adds a digital port.
    pub fn digital(self, name: &str, direction: Direction, mime: MimeType) -> ShapeBuilder {
        self.port(PortSpec::digital(name, direction, mime))
    }

    /// Adds a physical port.
    pub fn physical(
        self,
        name: &str,
        direction: Direction,
        perception: PerceptionType,
        media: &str,
    ) -> ShapeBuilder {
        self.port(PortSpec::physical(name, direction, perception, media))
    }

    /// Finishes the shape.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicatePort`] if two ports share a name.
    pub fn build(self) -> Result<Shape, CoreError> {
        Shape::from_ports(self.ports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mime(s: &str) -> MimeType {
        s.parse().unwrap()
    }

    #[test]
    fn duplicate_port_names_rejected() {
        let err = Shape::builder()
            .digital("x", Direction::Input, mime("a/b"))
            .digital("x", Direction::Output, mime("a/b"))
            .build()
            .unwrap_err();
        assert_eq!(err, CoreError::DuplicatePort("x".to_owned()));
    }

    #[test]
    fn digital_never_matches_physical() {
        let d = PortKind::Digital(mime("image/jpeg"));
        let p = PortKind::physical(PerceptionType::Visible, "screen");
        assert!(!d.matches(&p));
        assert!(!p.matches(&d));
    }

    #[test]
    fn physical_wildcards() {
        let paper = PortKind::physical(PerceptionType::Visible, "paper");
        let any_visible = PortKind::physical(PerceptionType::Visible, "*");
        let anything = PortKind::physical(PerceptionType::Any, "*");
        assert!(paper.matches(&any_visible));
        assert!(paper.matches(&anything));
        assert!(!paper.matches(&PortKind::physical(PerceptionType::Audible, "*")));
    }

    #[test]
    fn printer_example_from_paper() {
        let printer = Shape::builder()
            .digital("doc-in", Direction::Input, mime("text/ps"))
            .physical(
                "printed-page",
                Direction::Output,
                PerceptionType::Visible,
                "paper",
            )
            .build()
            .unwrap();
        // "view a document": visible/*.
        assert!(printer.has_matching_port(
            Direction::Output,
            &PortKind::physical(PerceptionType::Visible, "*")
        ));
        // "print it": visible/paper.
        assert!(printer.has_matching_port(
            Direction::Output,
            &PortKind::physical(PerceptionType::Visible, "paper")
        ));
        // But it does not render to a screen.
        assert!(!printer.has_matching_port(
            Direction::Output,
            &PortKind::physical(PerceptionType::Visible, "screen")
        ));
    }

    #[test]
    fn camera_tv_connectable() {
        let camera = Shape::builder()
            .digital("image-out", Direction::Output, mime("image/jpeg"))
            .build()
            .unwrap();
        let tv = Shape::builder()
            .digital("media-in", Direction::Input, mime("image/*"))
            .physical(
                "display",
                Direction::Output,
                PerceptionType::Visible,
                "screen",
            )
            .build()
            .unwrap();
        let pairs = camera.connectable_to(&tv);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0.name, "image-out");
        assert_eq!(pairs[0].1.name, "media-in");
        // The reverse direction has no output->input pair.
        assert!(tv.connectable_to(&camera).is_empty());
    }

    #[test]
    fn ports_in_filters_by_direction() {
        let s = Shape::builder()
            .digital("a", Direction::Input, mime("x/y"))
            .digital("b", Direction::Output, mime("x/y"))
            .digital("c", Direction::Input, mime("x/z"))
            .build()
            .unwrap();
        let inputs: Vec<&str> = s
            .ports_in(Direction::Input)
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(inputs, vec!["a", "c"]);
    }

    #[test]
    fn direction_reverse() {
        assert_eq!(Direction::Input.reverse(), Direction::Output);
        assert_eq!(Direction::Output.reverse(), Direction::Input);
    }

    #[test]
    fn perception_parse_round_trip() {
        for p in [
            PerceptionType::Visible,
            PerceptionType::Audible,
            PerceptionType::Tangible,
            PerceptionType::Any,
        ] {
            assert_eq!(p.to_string().parse::<PerceptionType>().unwrap(), p);
        }
        assert!("smellable".parse::<PerceptionType>().is_err());
    }
}
