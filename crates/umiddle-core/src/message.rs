//! Messages that flow along message paths in the common semantic space.

use std::collections::BTreeMap;
use std::fmt;

use simnet::Payload;

use crate::mime::MimeType;

/// A typed message traveling through the intermediary semantic space.
///
/// A `UMessage` is what translators emit on output ports and receive on
/// input ports: a MIME-typed byte payload plus optional string metadata
/// (source device, timestamps, sequence numbers).
///
/// # Examples
///
/// ```
/// use umiddle_core::UMessage;
///
/// let msg = UMessage::new("text/plain".parse()?, b"21.5".to_vec())
///     .with_meta("unit", "celsius");
/// assert_eq!(msg.meta("unit"), Some("celsius"));
/// assert_eq!(msg.body(), b"21.5");
/// # Ok::<(), umiddle_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UMessage {
    mime: MimeType,
    body: Payload,
    meta: BTreeMap<String, String>,
}

impl UMessage {
    /// Creates a message. `body` accepts anything convertible to a
    /// [`Payload`] (`Vec<u8>`, `&[u8]`, an existing `Payload`, …); passing
    /// a `Payload` shares the buffer without copying, so a message can
    /// travel native → common → native referencing one allocation.
    pub fn new(mime: MimeType, body: impl Into<Payload>) -> UMessage {
        UMessage {
            mime,
            body: body.into(),
            meta: BTreeMap::new(),
        }
    }

    /// Creates a `text/plain` message from a string — the common case for
    /// control signals ("1"/"0" in the paper's UPnP light example).
    pub fn text(body: impl Into<String>) -> UMessage {
        UMessage {
            mime: MimeType::new("text", "plain").expect("static mime is valid"),
            body: Payload::from(body.into()),
            meta: BTreeMap::new(),
        }
    }

    /// The message's MIME type.
    pub fn mime(&self) -> &MimeType {
        &self.mime
    }

    /// The payload bytes.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// The payload as a shared [`Payload`] view (O(1), no copy).
    pub fn body_payload(&self) -> Payload {
        self.body.clone()
    }

    /// The payload as UTF-8 text, if valid.
    pub fn body_text(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// Total in-memory size used for buffer accounting: body plus
    /// metadata bytes.
    pub fn size(&self) -> usize {
        self.body.len()
            + self
                .meta
                .iter()
                .map(|(k, v)| k.len() + v.len())
                .sum::<usize>()
    }

    /// Adds a metadata entry (builder style).
    pub fn with_meta(mut self, key: impl Into<String>, value: impl Into<String>) -> UMessage {
        self.meta.insert(key.into(), value.into());
        self
    }

    /// Looks up a metadata entry.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.meta.get(key).map(String::as_str)
    }

    /// Removes and returns a metadata entry. Used by the runtime to
    /// strip transport-internal keys (queue/transport span ids) before
    /// a message reaches application code.
    pub fn take_meta(&mut self, key: &str) -> Option<String> {
        self.meta.remove(key)
    }

    /// All metadata entries, sorted by key.
    pub fn metas(&self) -> impl Iterator<Item = (&str, &str)> {
        self.meta.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Consumes the message and returns its payload (no copy).
    pub fn into_body(self) -> Payload {
        self.body
    }
}

impl fmt::Display for UMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}B]", self.mime, self.body.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_constructor_sets_plain() {
        let m = UMessage::text("on");
        assert_eq!(m.mime().to_string(), "text/plain");
        assert_eq!(m.body_text(), Some("on"));
    }

    #[test]
    fn size_counts_meta() {
        let m = UMessage::text("ab").with_meta("k", "vv");
        assert_eq!(m.size(), 2 + 1 + 2);
    }

    #[test]
    fn non_utf8_body_text_is_none() {
        let m = UMessage::new(
            "application/octet-stream".parse().unwrap(),
            vec![0xff, 0xfe],
        );
        assert_eq!(m.body_text(), None);
        assert_eq!(m.into_body(), vec![0xff, 0xfe]);
    }
}
