//! The query algebra used for directory lookup and dynamic device binding.
//!
//! The paper's Directory API takes a `Query` and returns "profiles of
//! translators that match" (§3.3 Figure 6), and the Transport API accepts a
//! query as a *template shape* for dynamic message paths (§3.5 Figure 7).
//! This module provides a small, composable predicate algebra over
//! [`TranslatorProfile`](crate::TranslatorProfile)s: port-template
//! predicates (the core of Service Shaping), name/platform/attribute
//! predicates, and boolean combinators.

use std::fmt;

use crate::profile::TranslatorProfile;
use crate::shape::{Direction, PortKind};

/// A predicate over translator profiles.
///
/// # Examples
///
/// Find anything that accepts JPEG images and shows something visibly —
/// the paper's "view this image one way or another":
///
/// ```
/// use umiddle_core::{Direction, PerceptionType, PortKind, Query};
///
/// let q = Query::has_port(Direction::Input, PortKind::Digital("image/jpeg".parse()?))
///     .and(Query::has_port(
///         Direction::Output,
///         PortKind::physical(PerceptionType::Visible, "*"),
///     ));
/// println!("{q}");
/// # Ok::<(), umiddle_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Matches every profile.
    All,
    /// Matches no profile.
    None,
    /// Matches profiles whose shape has a port with this direction and a
    /// matching kind (wildcards allowed).
    HasPort {
        /// Required port direction.
        direction: Direction,
        /// Port kind pattern (wildcards allowed).
        kind: PortKind,
    },
    /// Matches profiles whose human-readable name equals the string
    /// (case-insensitive).
    NameIs(String),
    /// Matches profiles whose name contains the substring
    /// (case-insensitive).
    NameContains(String),
    /// Matches profiles imported from the given platform (`"upnp"`,
    /// `"bluetooth"`, `"umiddle"`, …).
    Platform(String),
    /// Matches profiles whose attribute `key` equals `value`.
    Attr {
        /// Attribute key.
        key: String,
        /// Required value.
        value: String,
    },
    /// Matches profiles that carry the attribute key at all.
    HasAttr(String),
    /// Both sub-queries match.
    And(Box<Query>, Box<Query>),
    /// Either sub-query matches.
    Or(Box<Query>, Box<Query>),
    /// The sub-query does not match.
    Not(Box<Query>),
}

impl Query {
    /// Convenience constructor for [`Query::HasPort`].
    pub fn has_port(direction: Direction, kind: PortKind) -> Query {
        Query::HasPort { direction, kind }
    }

    /// Convenience constructor for [`Query::Attr`].
    pub fn attr(key: impl Into<String>, value: impl Into<String>) -> Query {
        Query::Attr {
            key: key.into(),
            value: value.into(),
        }
    }

    /// Conjunction.
    pub fn and(self, other: Query) -> Query {
        Query::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Query) -> Query {
        Query::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Query {
        Query::Not(Box::new(self))
    }

    /// Evaluates the query against a profile.
    pub fn matches(&self, profile: &TranslatorProfile) -> bool {
        match self {
            Query::All => true,
            Query::None => false,
            Query::HasPort { direction, kind } => {
                profile.shape().has_matching_port(*direction, kind)
            }
            Query::NameIs(name) => profile.name().eq_ignore_ascii_case(name),
            Query::NameContains(part) => profile
                .name()
                .to_ascii_lowercase()
                .contains(&part.to_ascii_lowercase()),
            Query::Platform(p) => profile.platform().eq_ignore_ascii_case(p),
            Query::Attr { key, value } => profile.attr(key) == Some(value.as_str()),
            Query::HasAttr(key) => profile.attr(key).is_some(),
            Query::And(a, b) => a.matches(profile) && b.matches(profile),
            Query::Or(a, b) => a.matches(profile) || b.matches(profile),
            Query::Not(q) => !q.matches(profile),
        }
    }

    /// Filters an iterator of profiles down to the matches.
    pub fn filter<'a, I>(&'a self, profiles: I) -> impl Iterator<Item = &'a TranslatorProfile>
    where
        I: IntoIterator<Item = &'a TranslatorProfile>,
        I::IntoIter: 'a,
    {
        profiles.into_iter().filter(move |p| self.matches(p))
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::All => write!(f, "all"),
            Query::None => write!(f, "none"),
            Query::HasPort { direction, kind } => write!(f, "port({direction} {kind})"),
            Query::NameIs(n) => write!(f, "name={n:?}"),
            Query::NameContains(n) => write!(f, "name~{n:?}"),
            Query::Platform(p) => write!(f, "platform={p:?}"),
            Query::Attr { key, value } => write!(f, "attr[{key:?}]={value:?}"),
            Query::HasAttr(key) => write!(f, "attr[{key:?}]"),
            Query::And(a, b) => write!(f, "({a} & {b})"),
            Query::Or(a, b) => write!(f, "({a} | {b})"),
            Query::Not(q) => write!(f, "!{q}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{RuntimeId, TranslatorId};
    use crate::mime::MimeType;
    use crate::profile::TranslatorProfile;
    use crate::shape::{PerceptionType, Shape};

    fn mime(s: &str) -> MimeType {
        s.parse().unwrap()
    }

    fn tv_profile() -> TranslatorProfile {
        let shape = Shape::builder()
            .digital("media-in", Direction::Input, mime("image/*"))
            .physical(
                "display",
                Direction::Output,
                PerceptionType::Visible,
                "screen",
            )
            .build()
            .unwrap();
        TranslatorProfile::builder(TranslatorId::new(RuntimeId(0), 1), "Living Room TV")
            .platform("upnp")
            .shape(shape)
            .attr("location", "living-room")
            .build()
    }

    fn printer_profile() -> TranslatorProfile {
        let shape = Shape::builder()
            .digital("doc-in", Direction::Input, mime("text/ps"))
            .physical("page", Direction::Output, PerceptionType::Visible, "paper")
            .build()
            .unwrap();
        TranslatorProfile::builder(TranslatorId::new(RuntimeId(0), 2), "Laser Printer")
            .platform("umiddle")
            .shape(shape)
            .build()
    }

    #[test]
    fn port_queries_select_by_affordance() {
        let tv = tv_profile();
        let printer = printer_profile();
        // "View it one way or another": visible/* output.
        let view = Query::has_port(
            Direction::Output,
            PortKind::physical(PerceptionType::Visible, "*"),
        );
        assert!(view.matches(&tv));
        assert!(view.matches(&printer));
        // "Print it": visible/paper output.
        let print = Query::has_port(
            Direction::Output,
            PortKind::physical(PerceptionType::Visible, "paper"),
        );
        assert!(!print.matches(&tv));
        assert!(print.matches(&printer));
        // Accepts JPEG input: only the TV (printer wants PostScript).
        let jpeg_in = Query::has_port(Direction::Input, PortKind::Digital(mime("image/jpeg")));
        assert!(jpeg_in.matches(&tv));
        assert!(!jpeg_in.matches(&printer));
    }

    #[test]
    fn name_platform_attr_queries() {
        let tv = tv_profile();
        assert!(Query::NameIs("living room tv".to_owned()).matches(&tv));
        assert!(Query::NameContains("TV".to_owned()).matches(&tv));
        assert!(Query::Platform("UPnP".to_owned()).matches(&tv));
        assert!(Query::attr("location", "living-room").matches(&tv));
        assert!(!Query::attr("location", "kitchen").matches(&tv));
        assert!(Query::HasAttr("location".to_owned()).matches(&tv));
        assert!(!Query::HasAttr("owner".to_owned()).matches(&tv));
    }

    #[test]
    fn combinators() {
        let tv = tv_profile();
        let q = Query::Platform("upnp".to_owned())
            .and(Query::NameContains("tv".to_owned()))
            .or(Query::None);
        assert!(q.matches(&tv));
        assert!(!q.not().matches(&tv));
    }

    #[test]
    fn filter_selects_matching_profiles() {
        let profiles = vec![tv_profile(), printer_profile()];
        let q = Query::Platform("upnp".to_owned());
        let names: Vec<&str> = q.filter(&profiles).map(|p| p.name()).collect();
        assert_eq!(names, vec!["Living Room TV"]);
    }

    fn arb_query(rng: &mut simnet::SimRng, depth: u32) -> Query {
        let leaf = depth == 0 || rng.gen_bool(0.4);
        if leaf {
            match rng.gen_range(0u8..5) {
                0 => Query::All,
                1 => Query::None,
                2 => {
                    let len = rng.gen_range(1usize..=6);
                    Query::NameContains(rng.gen_string("abcdefghijklmnopqrstuvwxyz", len))
                }
                3 => {
                    let len = rng.gen_range(1usize..=6);
                    Query::Platform(rng.gen_string("abcdefghijklmnopqrstuvwxyz", len))
                }
                _ => {
                    let klen = rng.gen_range(1usize..=4);
                    let vlen = rng.gen_range(1usize..=4);
                    Query::attr(
                        rng.gen_string("abcdefghijklmnopqrstuvwxyz", klen),
                        rng.gen_string("abcdefghijklmnopqrstuvwxyz", vlen),
                    )
                }
            }
        } else {
            match rng.gen_range(0u8..3) {
                0 => arb_query(rng, depth - 1).and(arb_query(rng, depth - 1)),
                1 => arb_query(rng, depth - 1).or(arb_query(rng, depth - 1)),
                _ => arb_query(rng, depth - 1).not(),
            }
        }
    }

    /// Boolean algebra of query evaluation: double negation, De Morgan,
    /// `All`/`None` identities, commutativity of `and`/`or`.
    #[test]
    fn query_algebra() {
        simnet::check_cases("query_algebra", 256, |_, rng| {
            let p = tv_profile();
            let a = arb_query(rng, 3);
            let b = arb_query(rng, 3);
            // Double negation is the identity on evaluation.
            assert_eq!(a.matches(&p), a.clone().not().not().matches(&p));
            // De Morgan: !(a & b) == !a | !b on evaluation.
            let lhs = a.clone().and(b.clone()).not();
            let rhs = a.clone().not().or(b.clone().not());
            assert_eq!(lhs.matches(&p), rhs.matches(&p));
            // `All` is the identity of `and`; `None` the identity of `or`.
            assert_eq!(a.matches(&p), a.clone().and(Query::All).matches(&p));
            assert_eq!(a.matches(&p), a.clone().or(Query::None).matches(&p));
            // `and`/`or` evaluate commutatively.
            assert_eq!(
                a.clone().and(b.clone()).matches(&p),
                b.clone().and(a.clone()).matches(&p)
            );
            assert_eq!(a.clone().or(b.clone()).matches(&p), b.or(a).matches(&p));
        });
    }
}
