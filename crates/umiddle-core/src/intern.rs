//! Port-name interning: copyable [`Symbol`]s for the dispatch hot path.
//!
//! Every message delivery used to clone the destination port name
//! (`PortRef.port: String`) at least once — into the runtime request,
//! into the path message, into the delegate event. Port names are drawn
//! from a tiny, stable vocabulary (`"in"`, `"image-out"`, …), so the
//! interner stores each distinct name once and hands out a [`Symbol`]:
//! a `Copy` reference that compares, orders and hashes by *content*,
//! making it a drop-in replacement for the `String` it displaced —
//! including its wire encoding, which is still the UTF-8 bytes
//! (`Symbol` derefs to `str`).
//!
//! The intern table is thread-local (simulations are single-threaded
//! worlds; distinct test threads get independent tables) and entries
//! are leaked: the vocabulary is bounded by the set of distinct port
//! names in the federation, a few dozen short strings.

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::ops::Deref;

thread_local! {
    static INTERNER: RefCell<HashSet<&'static str>> = RefCell::new(HashSet::new());
}

/// An interned string: a `Copy` handle to a canonical, leaked `&str`.
///
/// Equality, ordering and hashing all delegate to the string content,
/// so two symbols created on different threads (different intern
/// tables) still compare equal when they spell the same name.
///
/// # Examples
///
/// ```
/// use umiddle_core::Symbol;
///
/// let a = Symbol::new("image-out");
/// let b: Symbol = "image-out".into();
/// assert_eq!(a, b);
/// assert_eq!(&*a, "image-out");     // derefs to str
/// assert_eq!(a.to_string(), "image-out");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(&'static str);

impl Symbol {
    /// Interns `name` (a no-op when it is already in this thread's
    /// table) and returns its symbol.
    pub fn new(name: &str) -> Symbol {
        INTERNER.with(|table| {
            let mut table = table.borrow_mut();
            if let Some(&interned) = table.get(name) {
                return Symbol(interned);
            }
            let interned: &'static str = Box::leak(name.to_owned().into_boxed_str());
            table.insert(interned);
            Symbol(interned)
        })
    }

    /// The interned string slice.
    pub fn as_str(&self) -> &str {
        self.0
    }
}

impl Deref for Symbol {
    type Target = str;

    fn deref(&self) -> &str {
        self.0
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.0
    }
}

impl std::borrow::Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Matches the Debug output of the String this type replaced, so
        // debug-formatted artifacts are byte-identical.
        fmt::Debug::fmt(self.0, f)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::new(&s)
    }
}

impl From<Symbol> for String {
    fn from(s: Symbol) -> String {
        s.0.to_owned()
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.0 == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

impl PartialEq<String> for Symbol {
    fn eq(&self, other: &String) -> bool {
        self.0 == other.as_str()
    }
}

impl PartialEq<Symbol> for str {
    fn eq(&self, other: &Symbol) -> bool {
        self == other.0
    }
}

impl PartialEq<Symbol> for String {
    fn eq(&self, other: &Symbol) -> bool {
        self.as_str() == other.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_string() {
        let s = Symbol::new("media-in");
        assert_eq!(s.as_str(), "media-in");
        assert_eq!(String::from(s), "media-in");
        assert_eq!(Symbol::from(String::from(s)), s);
    }

    #[test]
    fn interning_is_idempotent_and_pointer_stable() {
        let a = Symbol::new("in");
        let b = Symbol::new("in");
        assert_eq!(a, b);
        // Same thread → same canonical allocation.
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
        let c = Symbol::new("out");
        assert_ne!(a, c);
    }

    #[test]
    fn comparison_is_by_content() {
        let a = Symbol::new("a");
        let b = Symbol::new("b");
        assert!(a < b);
        assert_eq!(a, "a");
        assert_eq!(a, "a".to_owned());
        assert_eq!("a", &*a);
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        set.insert(Symbol::new("a"));
        assert_eq!(set.len(), 1);
        // Borrow<str> lets Symbol-keyed maps answer &str lookups.
        assert!(set.contains("a"));
    }

    #[test]
    fn symbols_agree_across_thread_local_tables() {
        // Two runtimes in different worlds/threads intern independently;
        // symbols must still compare by content, never by table identity.
        let local = Symbol::new("cross-runtime");
        let remote = std::thread::spawn(|| Symbol::new("cross-runtime"))
            .join()
            .expect("intern thread panicked");
        assert_eq!(local, remote);
        assert_eq!(remote.as_str(), "cross-runtime");
        let other = std::thread::spawn(|| Symbol::new("something-else"))
            .join()
            .expect("intern thread panicked");
        assert_ne!(local, other);
    }

    #[test]
    fn debug_matches_string_debug() {
        let s = Symbol::new("image\"out");
        assert_eq!(format!("{s:?}"), format!("{:?}", "image\"out"));
    }
}
